//! The deterministic virtual-time backend.
//!
//! Runs the pilot on the `impress-sim` engine. Submissions enqueue into the
//! scheduler; placements, exec-setup delays, and completions are engine
//! events; work closures execute at their task's completion instant. The
//! whole 27-hour CONT-V run replays in milliseconds, bit-identically for a
//! given seed.
//!
//! Fault injection (via [`crate::RuntimeConfig::faults`]) weaves a
//! [`FaultPlan`] into the same event stream: injected transient failures
//! and walltime expiries end an attempt's occupancy early (or late, for
//! hangs) without running its work, node crash/recover windows become
//! engine events that drain/re-admit scheduler nodes and requeue resident
//! tasks, and a [`RetryPolicy`] resubmits faulted attempts after a
//! (virtual-time) backoff. A [`FaultPlan::none`] plan schedules no extra
//! events and draws no randomness — the zero-fault backend is
//! event-for-event identical to one built with [`SimulatedBackend::new`].
//!
//! Telemetry (via [`crate::RuntimeConfig::telemetry`]) records task /
//! queue / attempt spans, placement-round spans and fault instants with
//! virtual-time stamps, entirely outside the engine: no events are
//! scheduled and no randomness is drawn, so an instrumented run is
//! event-for-event identical to an uninstrumented one.

use crate::backend::{Completion, ExecutionBackend, TaskError};
use crate::control::{ControlPlane, ControlStats};
use crate::fault::{
    dilate_span, AttemptFault, FaultPlan, HedgePolicy, QuarantinePolicy, RetryPolicy, SlowWindow,
};
use crate::pilot::{PhaseBreakdown, PilotConfig};
use crate::profiler::{Profiler, UtilizationReport};
use crate::resources::{Allocation, ResourceRequest};
use crate::runtime::RuntimeConfig;
use crate::scheduler::Scheduler;
use crate::states::{StateCell, TaskState};
use crate::task::{TaskDescription, TaskId, TaskWork};
use impress_sim::{Engine, ProcessHandle, SimDuration, SimRng, SimTime};
use impress_telemetry::{track, SpanCat, SpanId, Stamp, Telemetry};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

/// Span bookkeeping for one in-flight task.
#[derive(Clone, Copy)]
struct TaskSpans {
    /// Whole-lifetime span (submit → terminal).
    task: SpanId,
    /// Current queue-wait span (submit/requeue → placement).
    queue: SpanId,
    /// Current attempt span (placement → completion/failure).
    attempt: SpanId,
    /// When the current queue wait began.
    queued_at: SimTime,
}

struct PendingTask {
    name: String,
    tag: String,
    request: ResourceRequest,
    priority: i32,
    duration: SimDuration,
    gpu_busy_fraction: f64,
    kind: crate::task::TaskKind,
    walltime: Option<SimDuration>,
    attempts: u32,
    work: Option<TaskWork>,
    state: StateCell,
    /// Whether a hedged duplicate was ever placed for this task.
    hedged: bool,
}

/// A placed attempt: enough to evict it when its node crashes.
struct RunningAttempt {
    handle: ProcessHandle,
    alloc: Allocation,
    started: SimTime,
    /// Lease epoch: the task's attempt number when this placement was
    /// granted. Under the control plane a completion report only settles
    /// if its epoch still matches — late reports from evicted (suspected)
    /// lease-holders are fenced out.
    attempt: u32,
}

use super::{msg_key, MSG_CANCEL, MSG_DONE, MSG_HEDGE, MSG_RETRY, MSG_SUBMIT};

struct Shared {
    scheduler: Scheduler,
    profiler: Profiler,
    breakdown: PhaseBreakdown,
    pending: HashMap<u64, PendingTask>,
    running: HashMap<u64, RunningAttempt>,
    completions: VecDeque<Completion>,
    in_flight: usize,
    exec_setup: SimDuration,
    bootstrapped: bool,
    faults: FaultPlan,
    retry: RetryPolicy,
    backoff_rng: SimRng,
    /// Allocation walltime: placements whose modeled span would overrun it
    /// are held instead of launched (graceful drain).
    deadline: Option<SimTime>,
    /// Tasks held by the deadline, in hold order. They stay `pending` and
    /// in flight but will never launch.
    held: Vec<u64>,
    /// A submit-triggered placement scan is already scheduled at the current
    /// instant; further submissions coalesce into it instead of scheduling
    /// their own. All submissions between engine steps are enqueued before
    /// the one scan fires, so placement order is unchanged.
    place_event_pending: bool,
    telemetry: Telemetry,
    spans: HashMap<u64, TaskSpans>,
    /// Hedged speculative execution policy (`None` = off, a strict no-op).
    hedge: Option<HedgePolicy>,
    /// Poison-task quarantine policy (`None` = off, a strict no-op).
    quarantine: Option<QuarantinePolicy>,
    /// Per-node slowdown windows; empty when no slowdowns are configured.
    slow: Vec<Vec<SlowWindow>>,
    /// Shape-class runtime estimates from useful completions:
    /// `(cores, gpus) → (completions, total span micros)`. Only maintained
    /// while hedging is on.
    estimates: HashMap<(u32, u32), (u64, u128)>,
    /// Live hedge duplicates, keyed by task id (at most one per task).
    hedge_running: HashMap<u64, RunningAttempt>,
    /// Distinct nodes each task has failed on (quarantine only).
    failed_nodes: HashMap<u64, Vec<u32>>,
    /// Poisoned lineage count per shape class (quarantine breaker).
    shape_poison: HashMap<(u32, u32), u32>,
    /// The seeded control plane (`None` = link faults off, a strict
    /// no-op: no extra events, no randomness, no routing).
    control: Option<ControlPlane>,
    /// Control-plane resilience counters (all zero while `control` is
    /// `None`).
    cstats: ControlStats,
    /// Failure detector: last heartbeat arrival per node.
    last_heard: Vec<SimTime>,
    /// Nodes currently declared suspect by the detector.
    suspected: Vec<bool>,
    /// Ground-truth node health (set by crash/recover events); a crashed
    /// node emits no heartbeats and cannot be resynced by one.
    crashed: Vec<bool>,
    /// Per-node heartbeat sequence numbers (message identity).
    hb_seq: Vec<u64>,
    /// Whether heartbeat chains are currently ticking. Chains retire
    /// themselves when the coordinator goes idle and restart on submit,
    /// so a drained run still exhausts its event queue.
    hb_live: bool,
    /// Idempotent-dedup set: message identities whose effects have been
    /// applied. A second arrival of the same identity is absorbed.
    seen: HashSet<(u64, u32, u8)>,
}

impl Shared {
    /// The hedging threshold base for a shape class: the running mean of
    /// useful completion spans once `min_samples` have been observed, the
    /// attempt's own modeled span until then. Integer-microsecond mean, so
    /// both deterministic engines agree bit-for-bit.
    fn hedge_estimate(&self, shape: (u32, u32), fallback: SimDuration, min_samples: u32) -> SimDuration {
        match self.estimates.get(&shape) {
            Some(&(n, total)) if n >= min_samples as u64 => {
                SimDuration::from_micros((total / n as u128) as u64)
            }
            _ => fallback,
        }
    }

    fn finish_task(
        &mut self,
        id: TaskId,
        alloc: Allocation,
        started: SimTime,
        now: SimTime,
        setup: SimDuration,
    ) -> Option<(u32, u32)> {
        let mut task = self.pending.remove(&id.0).expect("task record exists");
        task.state.advance(TaskState::Executing);
        let result = match task.work.take() {
            Some(work) => match catch_unwind(AssertUnwindSafe(work)) {
                Ok(out) => {
                    task.state.advance(TaskState::Done);
                    Ok(Some(out))
                }
                Err(payload) => {
                    task.state.advance(TaskState::Failed);
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic>".to_string());
                    Err(TaskError::WorkPanicked(msg))
                }
            },
            None => {
                task.state.advance(TaskState::Done);
                Ok(None)
            }
        };
        self.profiler.task_finished(
            id,
            &task.name,
            &task.tag,
            &alloc,
            started,
            now,
            task.gpu_busy_fraction,
        );
        let mut warmed = None;
        if let Some(policy) = self.hedge {
            let shape = (task.request.cores, task.request.gpus);
            let e = self.estimates.entry(shape).or_insert((0, 0));
            e.0 += 1;
            e.1 += now.since(started).as_micros() as u128;
            // Exactly the completion that makes the estimate usable:
            // attempts of this shape placed while it was cold were never
            // armed for a hedge check, so the caller arms them now.
            if e.0 == (policy.min_samples as u64).max(1) {
                warmed = Some(shape);
            }
        }
        if self.quarantine.is_some() {
            self.failed_nodes.remove(&id.0);
        }
        self.scheduler.release_owned(alloc);
        self.breakdown
            .record_task(setup, now.since(started + setup));
        self.in_flight -= 1;
        if self.telemetry.enabled() {
            let tele = self.telemetry.clone();
            let at = Stamp::virt(now);
            if let Some(spans) = self.spans.remove(&id.0) {
                tele.end(spans.attempt, at);
                tele.end(spans.task, at);
            }
            tele.count(
                if result.is_ok() {
                    "tasks_completed"
                } else {
                    "tasks_failed"
                },
                1,
            );
            tele.gauge("in_flight", self.in_flight as f64);
            tele.observe(
                "task_run_seconds",
                0.0,
                14_400.0,
                48,
                now.since(started).as_secs_f64(),
            );
        }
        self.completions.push_back(Completion {
            task: id,
            name: task.name,
            tag: task.tag,
            result,
            started,
            finished: now,
            attempts: task.attempts,
            hedged: task.hedged,
        });
        warmed
    }
}

/// The virtual-time pilot backend.
pub struct SimulatedBackend {
    engine: Engine,
    shared: Rc<RefCell<Shared>>,
    config: PilotConfig,
    next_id: u64,
    /// Same handle as `shared.telemetry` (they share one sink); kept
    /// outside the `RefCell` so [`ExecutionBackend::telemetry`] can hand
    /// out a plain reference.
    telemetry: Telemetry,
}

impl SimulatedBackend {
    /// Start a pilot on a simulated node. Bootstrap begins at `t = 0`; no
    /// task can start before `config.bootstrap` has elapsed.
    pub fn new(config: PilotConfig) -> Self {
        Self::from_config(RuntimeConfig::new(config))
    }

    /// Start a pilot under a full [`RuntimeConfig`]: fault plan + retry
    /// policy, walltime deadline and telemetry in one value. The default
    /// config (`RuntimeConfig::new(pilot)`) is exactly
    /// [`SimulatedBackend::new`]: no extra events, no extra randomness.
    /// (`time_scale` is threaded-only and ignored here — virtual time is
    /// already this backend's clock.)
    pub fn from_config(runtime: RuntimeConfig) -> Self {
        let RuntimeConfig {
            pilot: config,
            faults,
            retry,
            deadline,
            telemetry,
            hedge,
            quarantine,
            ..
        } = runtime;
        // Per-node slowdown schedules, realized once. Without configured
        // slowdowns every schedule is empty and `dilate_span` is an exact
        // identity — no events, no randomness, no arithmetic change.
        let slow: Vec<Vec<SlowWindow>> = (0..config.nodes)
            .map(|n| faults.slowdown_windows(n))
            .collect();
        let backoff_rng = SimRng::from_seed(config.seed).fork("retry-backoff");
        // The control plane exists exactly when the plan's link section
        // models anything; `None` keeps every code path below identical to
        // the pre-control-plane backend.
        let control = ControlPlane::from_plan(&faults);
        // The bootstrap phase completes at a known virtual instant, so its
        // span can be recorded up front, before the engine even starts.
        let boot = telemetry.span(
            SpanCat::Pilot,
            "bootstrap",
            SpanId::NONE,
            track::PILOT,
            Stamp::virt(SimTime::ZERO),
            &[],
        );
        telemetry.end(boot, Stamp::virt(SimTime::ZERO + config.bootstrap));
        let telemetry_handle = telemetry.clone();
        let shared = Rc::new(RefCell::new(Shared {
            scheduler: Scheduler::new_cluster(config.cluster(), config.policy),
            profiler: Profiler::new_cluster(config.node.cores, config.node.gpus, config.nodes),
            breakdown: PhaseBreakdown {
                bootstrap: config.bootstrap,
                ..Default::default()
            },
            pending: HashMap::new(),
            running: HashMap::new(),
            completions: VecDeque::new(),
            in_flight: 0,
            exec_setup: config.exec_setup_per_task,
            bootstrapped: false,
            faults,
            retry,
            backoff_rng,
            deadline,
            held: Vec::new(),
            place_event_pending: false,
            telemetry,
            spans: HashMap::new(),
            hedge,
            quarantine,
            slow,
            estimates: HashMap::new(),
            hedge_running: HashMap::new(),
            failed_nodes: HashMap::new(),
            shape_poison: HashMap::new(),
            control,
            cstats: ControlStats::default(),
            last_heard: vec![SimTime::ZERO; config.nodes as usize],
            suspected: vec![false; config.nodes as usize],
            crashed: vec![false; config.nodes as usize],
            hb_seq: vec![0; config.nodes as usize],
            hb_live: false,
            seen: HashSet::new(),
        }));
        let mut engine = Engine::new();
        // Bootstrap completion event: mark ready and place anything queued.
        let s = shared.clone();
        engine.schedule_in(config.bootstrap, move |eng| {
            s.borrow_mut().bootstrapped = true;
            Self::place_ready(&s, eng);
        });
        // Realize the node crash/recover schedule as engine events. The
        // fault-free plan yields no windows, so this adds nothing.
        for node in 0..config.nodes {
            let windows = shared.borrow().faults.crash_windows(node);
            for (crash_at, recover_at) in windows {
                let s = shared.clone();
                engine.schedule_at(crash_at, move |eng| Self::node_crash(&s, eng, node));
                let s = shared.clone();
                engine.schedule_at(recover_at, move |eng| Self::node_recover(&s, eng, node));
            }
        }
        SimulatedBackend {
            engine,
            shared,
            config,
            next_id: 0,
            telemetry: telemetry_handle,
        }
    }

    /// The pilot configuration this backend runs.
    pub fn config(&self) -> &PilotConfig {
        &self.config
    }

    /// Place every task the scheduler allows, wiring up setup + completion
    /// events for each placement. The fault plan decides each attempt's
    /// outcome *at placement*: the single scheduled event either finishes
    /// the task (running its work) or ends a doomed attempt early/late.
    fn place_ready(shared: &Rc<RefCell<Shared>>, engine: &mut Engine) {
        let placements = {
            let mut sh = shared.borrow_mut();
            if !sh.bootstrapped {
                return;
            }
            let queued = sh.scheduler.queue_len();
            let placements = sh.scheduler.place_ready();
            if sh.telemetry.enabled() && queued > 0 {
                let tele = sh.telemetry.clone();
                let at = Stamp::virt(engine.now());
                let round = tele.span(
                    SpanCat::Scheduler,
                    "placement-round",
                    SpanId::NONE,
                    track::SCHED,
                    at,
                    &[
                        ("queued", queued as i64),
                        ("placed", placements.len() as i64),
                    ],
                );
                tele.end(round, at);
                tele.count("placement_rounds", 1);
                tele.gauge("queue_depth", sh.scheduler.queue_len() as f64);
            }
            placements
        };
        // Placements that hand their slots straight back mid-round (deadline
        // holds, shape sheds) can strand later queue entries: the freed
        // frontier is never re-scanned. Without the control plane that gap
        // is benign — the event queue drains and the run ends — and fixing
        // it would break byte-identity with the pre-control engine. With
        // the plane on, the heartbeat chain keeps the queue alive forever,
        // so a stranded entry would livelock termination; re-scan below.
        let mut stranded = false;
        for (id, mut alloc) in placements {
            let now = engine.now();
            // Quarantine: an open shape circuit breaker sheds the whole
            // shape class at the placement grant — the slots go straight
            // back and the lineage ends with a typed error instead of
            // burning a retry ladder on a poisoned shape.
            {
                let mut sh = shared.borrow_mut();
                let request = sh.pending.get(&id.0).expect("placed task exists").request;
                let shape = (request.cores, request.gpus);
                let tripped = match sh.quarantine {
                    Some(q) if q.shape_trip > 0 => {
                        sh.shape_poison.get(&shape).copied().unwrap_or(0) >= q.shape_trip
                    }
                    _ => false,
                };
                if tripped {
                    stranded = true;
                    sh.scheduler.release_owned(alloc);
                    let mut task = sh.pending.remove(&id.0).expect("placed task exists");
                    task.state.advance(TaskState::Failed);
                    sh.in_flight -= 1;
                    if sh.telemetry.enabled() {
                        let tele = sh.telemetry.clone();
                        let at = Stamp::virt(now);
                        if let Some(spans) = sh.spans.remove(&id.0) {
                            tele.end(spans.queue, at);
                            tele.instant(
                                SpanCat::Quarantine,
                                "shape-shed",
                                spans.task,
                                track::task(id.0),
                                at,
                                &[
                                    ("cores", request.cores as i64),
                                    ("gpus", request.gpus as i64),
                                ],
                            );
                            tele.end(spans.task, at);
                        }
                        tele.count("tasks_shed", 1);
                        tele.gauge("in_flight", sh.in_flight as f64);
                    }
                    let attempts = task.attempts;
                    sh.completions.push_back(Completion {
                        task: id,
                        name: task.name,
                        tag: task.tag,
                        result: Err(TaskError::ShapeCircuitOpen {
                            cores: request.cores,
                            gpus: request.gpus,
                        }),
                        started: now,
                        finished: now,
                        attempts,
                        hedged: task.hedged,
                    });
                    continue;
                }
                // Retry steering: a retried attempt granted a node the task
                // already failed on is re-homed when any other node has
                // capacity. The alternative is claimed *before* the original
                // grant is released, so the two can never alias; with no
                // alternative the original grant is kept (a suspect node
                // beats no node).
                if sh.quarantine.is_some() {
                    let avoid = sh.failed_nodes.get(&id.0).cloned().unwrap_or_default();
                    if avoid.contains(&alloc.node) {
                        if let Some(alt) = sh.scheduler.alloc_avoiding(&request, &avoid) {
                            let original = std::mem::replace(&mut alloc, alt);
                            sh.scheduler.release_owned(original);
                        }
                    }
                }
            }
            let (outcome, span, setup, attempt) = {
                let mut sh = shared.borrow_mut();
                let base_setup = sh.exec_setup;
                let attempts = sh
                    .pending
                    .get(&id.0)
                    .map(|t| t.attempts)
                    .expect("placed task exists");
                let fault = sh.faults.attempt_fault(id.0, attempts);
                let hang_factor = sh.faults.config().hang_factor;
                // The span is modeled before any state is mutated, so a
                // deadline hold leaves the task untouched.
                let (kind, duration, task_walltime) = {
                    let task = sh.pending.get(&id.0).expect("placed task exists");
                    (task.kind, task.duration, task.walltime)
                };
                let setup = base_setup.saturating_add(kind.launch_overhead());
                let mut run = duration;
                if fault == AttemptFault::Hang {
                    run = run.mul_f64(hang_factor);
                }
                let total = setup.saturating_add(run);
                // Degraded-node dilation: work overlapping one of the node's
                // slowdown windows takes `factor`× longer while inside it.
                // Without configured slowdowns every schedule is empty and
                // this is an exact identity.
                let total = dilate_span(&sh.slow[alloc.node as usize], now, total);
                // Walltime counts from slot grant and wins over other faults.
                let (outcome, span) = match task_walltime {
                    Some(limit) if limit < total => (Err(TaskError::TimedOut { limit }), limit),
                    _ => match fault {
                        AttemptFault::Transient => (Err(TaskError::Injected), total),
                        _ => (Ok(()), total),
                    },
                };
                // Walltime-aware drain: an attempt that cannot finish inside
                // the allocation deadline is held, not launched. Its slots go
                // back to the pool (in-flight peers may still use them) and it
                // stays pending — held, never re-placed, never completed.
                if sh.deadline.is_some_and(|d| now + span > d) {
                    stranded = true;
                    sh.scheduler.release_owned(alloc);
                    sh.held.push(id.0);
                    if sh.telemetry.enabled() {
                        let tele = sh.telemetry.clone();
                        let at = Stamp::virt(now);
                        if let Some(spans) = sh.spans.get(&id.0).copied() {
                            tele.end(spans.queue, at);
                            tele.instant(
                                SpanCat::Task,
                                "held",
                                spans.task,
                                track::task(id.0),
                                at,
                                &[],
                            );
                        }
                        tele.count("tasks_held", 1);
                    }
                    continue;
                }
                sh.pending
                    .get_mut(&id.0)
                    .expect("placed task exists")
                    .state
                    .advance(TaskState::ExecSetup);
                sh.profiler.task_started(&alloc, now);
                if sh.telemetry.enabled() {
                    let tele = sh.telemetry.clone();
                    let at = Stamp::virt(now);
                    if let Some(spans) = sh.spans.get(&id.0).copied() {
                        tele.end(spans.queue, at);
                        tele.observe(
                            "queue_wait_seconds",
                            0.0,
                            14_400.0,
                            48,
                            now.since(spans.queued_at).as_secs_f64(),
                        );
                        let attempt_span = tele.span(
                            SpanCat::Attempt,
                            "attempt",
                            spans.task,
                            track::task(id.0),
                            at,
                            &[("attempt", attempts as i64), ("node", alloc.node as i64)],
                        );
                        sh.spans.get_mut(&id.0).expect("span entry").attempt = attempt_span;
                    }
                    tele.count("placements", 1);
                }
                (outcome, span, setup, attempts)
            };
            // Under the control plane the node's completion report is sent
            // at the attempt's modeled finish and *routed*: it settles at
            // its (at-least-once) delivery instant, where the lease fence
            // and dedup set decide whether its effects apply. Without the
            // plane the report is the completion — the event fires at the
            // finish instant exactly as before.
            let routed = {
                let mut sh = shared.borrow_mut();
                Self::route(
                    &mut sh,
                    "done",
                    msg_key(id.0, attempt),
                    Some(alloc.node),
                    now + span,
                )
            };
            let handle = match routed {
                Some((primary, duplicate)) => {
                    let s = shared.clone();
                    let out = outcome.clone();
                    let handle = engine.schedule_at(primary, move |eng| {
                        Self::deliver_done(&s, eng, id, attempt, out, setup)
                    });
                    if let Some(dup_at) = duplicate {
                        let s = shared.clone();
                        let out = outcome.clone();
                        engine.schedule_at(dup_at, move |eng| {
                            Self::deliver_done(&s, eng, id, attempt, out, setup)
                        });
                    }
                    handle
                }
                None => {
                    let s = shared.clone();
                    engine.schedule_in(span, move |eng| {
                        let at = eng.now();
                        // The record always exists when this event fires: eviction
                        // (node crash) cancels the handle before removing it, so a
                        // fired completion implies a live RunningAttempt. Taking it
                        // back here lets the allocation's id buffers be recycled
                        // instead of cloned per event.
                        let run = s
                            .borrow_mut()
                            .running
                            .remove(&id.0)
                            .expect("completion fired for a task no longer running");
                        // A live hedge duplicate lost the race to this settlement
                        // (or shares the attempt's failure): cancel it first.
                        Self::settle_hedge_loser(&s, eng, id, true);
                        match outcome {
                            Ok(()) => {
                                let warmed =
                                    s.borrow_mut().finish_task(id, run.alloc, now, at, setup);
                                if let Some(shape) = warmed {
                                    Self::arm_warm_hedges(&s, eng, shape);
                                }
                            }
                            Err(err) => {
                                let node = run.alloc.node;
                                {
                                    let mut sh = s.borrow_mut();
                                    sh.profiler.attempt_wasted(&run.alloc, now, at);
                                    sh.scheduler.release_owned(run.alloc);
                                }
                                Self::fail_attempt(&s, eng, id, err, now, node);
                            }
                        }
                        Self::place_ready(&s, eng);
                    })
                }
            };
            shared.borrow_mut().running.insert(
                id.0,
                RunningAttempt {
                    handle,
                    alloc,
                    started: now,
                    attempt,
                },
            );
            // Hedge arming: once the shape class has a runtime estimate, an
            // attempt still running past k× that estimate gets a duplicate.
            // The check is armed only when it could fire before the modeled
            // completion — estimate-free shapes fall back to the attempt's
            // own span (threshold = k × span ≥ span), so they never arm and
            // the hedging-off path schedules nothing at all.
            let hedge_arm = {
                let sh = shared.borrow();
                sh.hedge.and_then(|policy| {
                    let task = sh.pending.get(&id.0).expect("placed task exists");
                    let shape = (task.request.cores, task.request.gpus);
                    let threshold = sh
                        .hedge_estimate(shape, span, policy.min_samples)
                        .mul_f64(policy.threshold);
                    (threshold < span).then(|| (threshold, task.attempts))
                })
            };
            if let Some((delay, attempt)) = hedge_arm {
                let s = shared.clone();
                engine.schedule_in(delay, move |eng| Self::hedge_check(&s, eng, id, attempt));
            }
        }
        // See `stranded` above: each recursion either holds, sheds or
        // places at least one queued task, so the depth is bounded by the
        // queue length.
        if stranded && shared.borrow().control.is_some() {
            Self::place_ready(shared, engine);
        }
    }

    /// Route a control message through the plane: `Some((primary,
    /// duplicate))` arrival instants with delivery stats booked, or `None`
    /// when the plane is off and the caller must take its direct
    /// (pre-control-plane) path.
    fn route(
        sh: &mut Shared,
        label: &str,
        key: u64,
        node: Option<u32>,
        sent: SimTime,
    ) -> Option<(SimTime, Option<SimTime>)> {
        let cp = sh.control.as_ref()?;
        let d = cp.deliveries(label, key, node, sent);
        sh.cstats.messages += 1;
        sh.cstats.retransmits += u64::from(d.transmissions.saturating_sub(1));
        if d.duplicate.is_some() {
            sh.cstats.duplicates += 1;
        }
        Some((d.primary, d.duplicate))
    }

    /// At-least-once meets exactly-once: the first arrival of a message
    /// identity claims it and applies; a repeat arrival is absorbed here.
    /// Returns true when this arrival is the duplicate.
    fn dedup(shared: &Rc<RefCell<Shared>>, id: TaskId, attempt: u32, kind: u8, at: SimTime) -> bool {
        let mut sh = shared.borrow_mut();
        if sh.seen.insert((id.0, attempt, kind)) {
            return false;
        }
        sh.cstats.dedup_hits += 1;
        if sh.telemetry.enabled() {
            let owner = sh.spans.get(&id.0).map(|s| s.task).unwrap_or(SpanId::NONE);
            sh.telemetry.instant(
                SpanCat::Control,
                "dedup-hit",
                owner,
                track::task(id.0),
                Stamp::virt(at),
                &[("attempt", attempt as i64), ("kind", kind as i64)],
            );
            sh.telemetry.count("dedup_hits", 1);
        }
        true
    }

    /// Book a fenced completion: a report whose lease epoch no longer
    /// matches the coordinator's record (the attempt was evicted and
    /// superseded). Its effects are discarded — the core of the
    /// no-split-brain guarantee.
    fn fence(sh: &mut Shared, id: TaskId, attempt: u32, at: SimTime) {
        sh.cstats.fenced_completions += 1;
        if sh.telemetry.enabled() {
            let owner = sh.spans.get(&id.0).map(|s| s.task).unwrap_or(SpanId::NONE);
            sh.telemetry.instant(
                SpanCat::Control,
                "fenced-completion",
                owner,
                track::task(id.0),
                Stamp::virt(at),
                &[("attempt", attempt as i64)],
            );
            sh.telemetry.count("fenced_completions", 1);
        }
    }

    /// Arrival of a completion report at the coordinator (control plane
    /// on). The dedup set makes duplicated reports apply once; the lease
    /// fence turns away reports whose epoch was superseded by a
    /// suspicion eviction.
    fn deliver_done(
        shared: &Rc<RefCell<Shared>>,
        engine: &mut Engine,
        id: TaskId,
        attempt: u32,
        outcome: Result<(), TaskError>,
        setup: SimDuration,
    ) {
        let at = engine.now();
        if Self::dedup(shared, id, attempt, MSG_DONE, at) {
            return;
        }
        let run = {
            let mut sh = shared.borrow_mut();
            if sh.running.get(&id.0).is_some_and(|r| r.attempt == attempt) {
                sh.running.remove(&id.0)
            } else {
                Self::fence(&mut sh, id, attempt, at);
                None
            }
        };
        let Some(run) = run else {
            return;
        };
        // A live hedge duplicate lost the race to this settlement.
        Self::settle_hedge_loser(shared, engine, id, true);
        match outcome {
            Ok(()) => {
                let warmed = shared
                    .borrow_mut()
                    .finish_task(id, run.alloc, run.started, at, setup);
                if let Some(shape) = warmed {
                    Self::arm_warm_hedges(shared, engine, shape);
                }
            }
            Err(err) => {
                let node = run.alloc.node;
                {
                    let mut sh = shared.borrow_mut();
                    sh.profiler.attempt_wasted(&run.alloc, run.started, at);
                    sh.scheduler.release_owned(run.alloc);
                }
                Self::fail_attempt(shared, engine, id, err, run.started, node);
            }
        }
        Self::place_ready(shared, engine);
    }

    /// Arrival of a submit command at the coordinator (control plane on):
    /// the task enters the scheduler queue here, not at the client call.
    fn deliver_submit(
        shared: &Rc<RefCell<Shared>>,
        engine: &mut Engine,
        id: TaskId,
        request: ResourceRequest,
        priority: i32,
    ) {
        if Self::dedup(shared, id, 0, MSG_SUBMIT, engine.now()) {
            return;
        }
        {
            let mut sh = shared.borrow_mut();
            sh.scheduler.enqueue_with_priority(id, request, priority);
            if sh.telemetry.enabled() {
                sh.telemetry
                    .gauge("queue_depth", sh.scheduler.queue_len() as f64);
            }
        }
        Self::place_ready(shared, engine);
    }

    /// Arrival of a retry verdict (control plane on): requeue the task for
    /// its next attempt. Duplicated verdicts requeue once.
    fn deliver_retry(
        shared: &Rc<RefCell<Shared>>,
        engine: &mut Engine,
        id: TaskId,
        attempt: u32,
        request: ResourceRequest,
        priority: i32,
    ) {
        if Self::dedup(shared, id, attempt, MSG_RETRY, engine.now()) {
            return;
        }
        {
            let mut sh = shared.borrow_mut();
            sh.scheduler.enqueue_with_priority(id, request, priority);
            if sh.telemetry.enabled() {
                let tele = sh.telemetry.clone();
                let at = Stamp::virt(engine.now());
                if let Some(spans) = sh.spans.get(&id.0).copied() {
                    let queue = tele.span(
                        SpanCat::Queue,
                        "queue",
                        spans.task,
                        track::task(id.0),
                        at,
                        &[("attempt", attempt as i64)],
                    );
                    let entry = sh.spans.get_mut(&id.0).expect("span entry");
                    entry.queue = queue;
                    entry.queued_at = engine.now();
                }
                tele.gauge("queue_depth", sh.scheduler.queue_len() as f64);
            }
        }
        Self::place_ready(shared, engine);
    }

    /// Arrival of a cancel acknowledgment at the client (control plane
    /// on): the terminal `Canceled` completion surfaces here.
    #[allow(clippy::too_many_arguments)]
    fn deliver_cancel(
        shared: &Rc<RefCell<Shared>>,
        engine: &mut Engine,
        id: TaskId,
        attempts: u32,
        name: String,
        tag: String,
        hedged: bool,
    ) {
        let at = engine.now();
        if Self::dedup(shared, id, attempts, MSG_CANCEL, at) {
            return;
        }
        let mut sh = shared.borrow_mut();
        sh.in_flight -= 1;
        if sh.telemetry.enabled() {
            sh.telemetry.gauge("in_flight", sh.in_flight as f64);
        }
        sh.completions.push_back(Completion {
            task: id,
            name,
            tag,
            result: Err(TaskError::Canceled),
            started: at,
            finished: at,
            attempts,
            hedged,
        });
    }

    /// Arrival of a hedge duplicate's completion report (control plane
    /// on): the routed twin of [`SimulatedBackend::hedge_win`], with the
    /// same dedup/fence discipline as main-attempt reports.
    fn deliver_hedge(
        shared: &Rc<RefCell<Shared>>,
        engine: &mut Engine,
        id: TaskId,
        attempt: u32,
        setup: SimDuration,
    ) {
        let at = engine.now();
        if Self::dedup(shared, id, attempt, MSG_HEDGE, at) {
            return;
        }
        let hedge = {
            let mut sh = shared.borrow_mut();
            if sh
                .hedge_running
                .get(&id.0)
                .is_some_and(|h| h.attempt == attempt)
            {
                sh.hedge_running.remove(&id.0)
            } else {
                Self::fence(&mut sh, id, attempt, at);
                None
            }
        };
        let Some(hedge) = hedge else {
            return;
        };
        let main = shared.borrow_mut().running.remove(&id.0);
        let Some(main) = main else {
            // No live main to rescue (it was evicted between the hedge's
            // finish and this delivery): book the duplicate as waste. The
            // freed slots can admit queued work, so re-scan.
            {
                let mut sh = shared.borrow_mut();
                sh.profiler.attempt_hedge_wasted(&hedge.alloc, hedge.started, at);
                sh.scheduler.release_owned(hedge.alloc);
                Self::fence(&mut sh, id, attempt, at);
            }
            Self::place_ready(shared, engine);
            return;
        };
        engine.cancel(main.handle);
        {
            let mut sh = shared.borrow_mut();
            sh.profiler.attempt_hedge_wasted(&main.alloc, main.started, at);
            sh.scheduler.release_owned(main.alloc);
            if sh.telemetry.enabled() {
                let tele = sh.telemetry.clone();
                let owner = sh.spans.get(&id.0).map(|s| s.attempt).unwrap_or(SpanId::NONE);
                tele.instant(
                    SpanCat::Hedge,
                    "hedge-win",
                    owner,
                    track::task(id.0),
                    Stamp::virt(at),
                    &[("node", hedge.alloc.node as i64)],
                );
                tele.count("hedge_wins", 1);
            }
        }
        let warmed = shared
            .borrow_mut()
            .finish_task(id, hedge.alloc, hedge.started, at, setup);
        if let Some(shape) = warmed {
            Self::arm_warm_hedges(shared, engine, shape);
        }
        Self::place_ready(shared, engine);
    }

    /// (Re)start heartbeat chains under an active failure detector.
    /// Chains run only while work is in flight — each node's chain retires
    /// itself at the first tick with an idle coordinator — so a drained
    /// run still exhausts its event queue.
    fn ensure_heartbeats(shared: &Rc<RefCell<Shared>>, engine: &mut Engine) {
        let start = {
            let mut sh = shared.borrow_mut();
            let Some(cp) = &sh.control else {
                return;
            };
            let link = cp.link();
            let (Some(interval), Some(_)) = (link.heartbeat_interval, link.heartbeat_timeout)
            else {
                return;
            };
            if sh.hb_live {
                return;
            }
            sh.hb_live = true;
            let now = engine.now();
            // A (re)started detector grants every node a fresh grace
            // period — nothing can be suspected for silence that predates
            // the detector.
            for t in sh.last_heard.iter_mut() {
                *t = now;
            }
            (interval, sh.last_heard.len() as u32)
        };
        let (interval, nodes) = start;
        for node in 0..nodes {
            let s = shared.clone();
            engine.schedule_in(interval, move |eng| Self::heartbeat_send(&s, eng, node));
        }
    }

    /// One heartbeat tick for `node`: draw the seeded delivery verdict,
    /// schedule the arrival (if any), the suspicion check one timeout out,
    /// and the next tick one interval out — in that order on both
    /// deterministic engines.
    fn heartbeat_send(shared: &Rc<RefCell<Shared>>, engine: &mut Engine, node: u32) {
        let now = engine.now();
        let tick = {
            let mut sh = shared.borrow_mut();
            if sh.in_flight == 0 {
                sh.hb_live = false;
                return;
            }
            let Some(cp) = &sh.control else {
                return;
            };
            let link = cp.link();
            let (Some(interval), Some(timeout)) = (link.heartbeat_interval, link.heartbeat_timeout)
            else {
                return;
            };
            let seq = sh.hb_seq[node as usize];
            // A crashed node emits nothing this tick; the schedule keeps
            // ticking so heartbeats resume the instant it recovers.
            let sent = !sh.crashed[node as usize];
            let arrive = if sent {
                cp.best_effort("hb", (u64::from(node) << 32) | seq, node, now)
            } else {
                None
            };
            sh.hb_seq[node as usize] += 1;
            if sent {
                sh.cstats.heartbeats_sent += 1;
                if arrive.is_some() {
                    sh.cstats.heartbeats_delivered += 1;
                }
            }
            (arrive, interval, timeout)
        };
        let (arrive, interval, timeout) = tick;
        if let Some(at) = arrive {
            let s = shared.clone();
            engine.schedule_at(at, move |eng| Self::heartbeat_arrive(&s, eng, node));
        }
        let s = shared.clone();
        engine.schedule_in(timeout, move |eng| Self::suspect_check(&s, eng, node));
        let s = shared.clone();
        engine.schedule_in(interval, move |eng| Self::heartbeat_send(&s, eng, node));
    }

    /// A heartbeat reached the coordinator: refresh the node's liveness
    /// and, if it was falsely suspected (partition, dropped heartbeats),
    /// resync — re-admit the node to placement.
    fn heartbeat_arrive(shared: &Rc<RefCell<Shared>>, engine: &mut Engine, node: u32) {
        let now = engine.now();
        let resynced = {
            let mut sh = shared.borrow_mut();
            sh.last_heard[node as usize] = now;
            if sh.suspected[node as usize] && !sh.crashed[node as usize] {
                sh.suspected[node as usize] = false;
                sh.cstats.resyncs += 1;
                sh.scheduler.recover_node(node);
                if sh.telemetry.enabled() {
                    sh.telemetry.instant(
                        SpanCat::Control,
                        "resync",
                        SpanId::NONE,
                        track::FAULT,
                        Stamp::virt(now),
                        &[("node", node as i64)],
                    );
                    sh.telemetry.count("resyncs", 1);
                }
                true
            } else {
                false
            }
        };
        if resynced {
            Self::place_ready(shared, engine);
        }
    }

    /// Timeout check armed one heartbeat-timeout after each send: if the
    /// node has been silent for a full timeout, declare it suspect.
    fn suspect_check(shared: &Rc<RefCell<Shared>>, engine: &mut Engine, node: u32) {
        let now = engine.now();
        let fire = {
            let sh = shared.borrow();
            let Some(cp) = &sh.control else {
                return;
            };
            let Some(timeout) = cp.link().heartbeat_timeout else {
                return;
            };
            sh.in_flight > 0
                && !sh.suspected[node as usize]
                && sh.scheduler.node_is_up(node)
                && sh.last_heard[node as usize] + timeout <= now
        };
        if fire {
            Self::suspect_node(shared, engine, node);
        }
    }

    /// Declare `node` suspect: stop placing on it, and evict its resident
    /// attempts — their leases are expired, so each requeues (consuming a
    /// retry) while its eventual late report is fenced out by epoch. The
    /// node-side events are *not* canceled: a falsely suspected node is
    /// healthy and its reports genuinely arrive.
    fn suspect_node(shared: &Rc<RefCell<Shared>>, engine: &mut Engine, node: u32) {
        let now = engine.now();
        let victims: Vec<(u64, RunningAttempt)> = {
            let mut sh = shared.borrow_mut();
            sh.suspected[node as usize] = true;
            sh.cstats.suspicions += 1;
            let mut ids: Vec<u64> = sh
                .running
                .iter()
                .filter(|(_, r)| r.alloc.node == node)
                .map(|(&i, _)| i)
                .collect();
            ids.sort_unstable();
            sh.scheduler.drain_node(node);
            if sh.telemetry.enabled() {
                sh.telemetry.instant(
                    SpanCat::Control,
                    "suspect",
                    SpanId::NONE,
                    track::FAULT,
                    Stamp::virt(now),
                    &[("node", node as i64)],
                );
                sh.telemetry.count("suspicions", 1);
            }
            ids.into_iter()
                .map(|i| {
                    let r = sh.running.remove(&i).expect("victim is running");
                    (i, r)
                })
                .collect()
        };
        // Hedge duplicates resident on the suspected node forfeit their
        // slots exactly as under a crash (the drained pool is rebuilt).
        {
            let mut hedge_ids: Vec<u64> = shared
                .borrow()
                .hedge_running
                .iter()
                .filter(|(_, r)| r.alloc.node == node)
                .map(|(&i, _)| i)
                .collect();
            hedge_ids.sort_unstable();
            for i in hedge_ids {
                Self::settle_hedge_loser(shared, engine, TaskId(i), false);
            }
        }
        for (id, run) in victims {
            Self::settle_hedge_loser(shared, engine, TaskId(id), true);
            {
                let mut sh = shared.borrow_mut();
                sh.cstats.lease_expiries += 1;
                sh.profiler.attempt_wasted(&run.alloc, run.started, now);
                if sh.telemetry.enabled() {
                    let owner = sh.spans.get(&id).map(|s| s.attempt).unwrap_or(SpanId::NONE);
                    sh.telemetry.instant(
                        SpanCat::Control,
                        "lease-expired",
                        owner,
                        track::task(id),
                        Stamp::virt(now),
                        &[("node", node as i64), ("attempt", run.attempt as i64)],
                    );
                    sh.telemetry.count("lease_expiries", 1);
                }
            }
            Self::fail_attempt(
                shared,
                engine,
                TaskId(id),
                TaskError::LeaseExpired { node },
                run.started,
                node,
            );
        }
    }

    /// A shape class's runtime estimate just became usable: attempts of
    /// the shape placed while it was cold fell back to their own span
    /// (threshold ≥ span) and were never armed, so a first-wave straggler
    /// would otherwise run unhedged forever. Arm a check for every running
    /// attempt of the shape at the instant its elapsed time crosses the
    /// threshold. Checks re-validate at fire time, so arming is idempotent;
    /// ids are sorted for a deterministic event order across engines.
    fn arm_warm_hedges(shared: &Rc<RefCell<Shared>>, engine: &mut Engine, shape: (u32, u32)) {
        let now = engine.now();
        let arms = {
            let sh = shared.borrow();
            let Some(policy) = sh.hedge else {
                return;
            };
            let threshold = sh
                .hedge_estimate(shape, SimDuration::ZERO, policy.min_samples)
                .mul_f64(policy.threshold);
            if threshold == SimDuration::ZERO {
                return;
            }
            let mut arms: Vec<(u64, SimDuration, u32)> = sh
                .running
                .iter()
                .filter_map(|(&id, run)| {
                    let task = sh.pending.get(&id)?;
                    if (task.request.cores, task.request.gpus) != shape
                        || sh.hedge_running.contains_key(&id)
                    {
                        return None;
                    }
                    let elapsed = now.since(run.started);
                    let wait = threshold.as_micros().saturating_sub(elapsed.as_micros());
                    Some((id, SimDuration::from_micros(wait.max(1)), task.attempts))
                })
                .collect();
            arms.sort_unstable_by_key(|&(id, _, _)| id);
            arms
        };
        for (id, delay, attempt) in arms {
            let s = shared.clone();
            engine.schedule_in(delay, move |eng| Self::hedge_check(&s, eng, TaskId(id), attempt));
        }
    }

    /// A hedge-check event: if the attempt it was armed for is still
    /// running, place a speculative duplicate on a different node. The
    /// duplicate models a clean run — it draws *no* randomness, so the
    /// fault stream is identical with and without hedging — and whichever
    /// copy settles first wins; the loser's occupancy is booked as hedge
    /// waste.
    fn hedge_check(shared: &Rc<RefCell<Shared>>, engine: &mut Engine, id: TaskId, attempt: u32) {
        let now = engine.now();
        let Some(policy) = shared.borrow().hedge else {
            return;
        };
        // Re-validate: the attempt may have settled or been superseded by a
        // retry since the check was armed, or an earlier re-arm already
        // placed a duplicate.
        let probe = {
            let sh = shared.borrow();
            match (sh.running.get(&id.0), sh.pending.get(&id.0)) {
                (Some(run), Some(task))
                    if task.attempts == attempt && !sh.hedge_running.contains_key(&id.0) =>
                {
                    Some((task.request, run.alloc.node, task.kind, task.duration, task.walltime))
                }
                _ => None,
            }
        };
        let Some((request, main_node, kind, duration, walltime)) = probe else {
            return;
        };
        let setup = shared
            .borrow()
            .exec_setup
            .saturating_add(kind.launch_overhead());
        // A node where the duplicate's own modeled span would cross the
        // straggler threshold cannot rescue anyone — a copy racing at the
        // same degraded pace loses to its head start. Skip such nodes (the
        // freed cores of an already-rescued straggler's node are the common
        // case) and keep probing the next-best allocation.
        let threshold = shared
            .borrow()
            .hedge_estimate(
                (request.cores, request.gpus),
                setup.saturating_add(duration),
                policy.min_samples,
            )
            .mul_f64(policy.threshold);
        let mut avoid = vec![main_node];
        let (alloc, span) = loop {
            let alloc = shared
                .borrow_mut()
                .scheduler
                .alloc_avoiding(&request, &avoid);
            let Some(alloc) = alloc else {
                // No useful capacity off the straggler's node: re-arm after
                // roughly one estimated runtime instead of polling every
                // event.
                let est = shared.borrow().hedge_estimate(
                    (request.cores, request.gpus),
                    SimDuration::from_micros(1),
                    policy.min_samples,
                );
                let delay = std::cmp::max(est, SimDuration::from_micros(1));
                let s = shared.clone();
                engine.schedule_in(delay, move |eng| Self::hedge_check(&s, eng, id, attempt));
                return;
            };
            let span = {
                let sh = shared.borrow();
                dilate_span(&sh.slow[alloc.node as usize], now, setup.saturating_add(duration))
            };
            if span > threshold {
                avoid.push(alloc.node);
                shared.borrow_mut().scheduler.release_owned(alloc);
                continue;
            }
            break (alloc, span);
        };
        if walltime.is_some_and(|limit| limit < span) {
            // The duplicate could only time out on its own walltime — not a
            // useful hedge. Give the slots back and stand down.
            shared.borrow_mut().scheduler.release_owned(alloc);
            return;
        }
        {
            let mut sh = shared.borrow_mut();
            sh.pending
                .get_mut(&id.0)
                .expect("hedged task has a record")
                .hedged = true;
            sh.profiler.note_hedge();
            sh.profiler.task_started(&alloc, now);
            if sh.telemetry.enabled() {
                let tele = sh.telemetry.clone();
                let owner = sh.spans.get(&id.0).map(|s| s.attempt).unwrap_or(SpanId::NONE);
                tele.instant(
                    SpanCat::Hedge,
                    "hedge-place",
                    owner,
                    track::task(id.0),
                    Stamp::virt(now),
                    &[("attempt", attempt as i64), ("node", alloc.node as i64)],
                );
                tele.count("hedges", 1);
            }
        }
        // The hedge's completion report routes exactly like the main
        // attempt's (same link, same fence/dedup discipline).
        let routed = {
            let mut sh = shared.borrow_mut();
            Self::route(
                &mut sh,
                "hedge",
                msg_key(id.0, attempt),
                Some(alloc.node),
                now + span,
            )
        };
        let handle = match routed {
            Some((primary, duplicate)) => {
                let s = shared.clone();
                let handle = engine.schedule_at(primary, move |eng| {
                    Self::deliver_hedge(&s, eng, id, attempt, setup)
                });
                if let Some(dup_at) = duplicate {
                    let s = shared.clone();
                    engine.schedule_at(dup_at, move |eng| {
                        Self::deliver_hedge(&s, eng, id, attempt, setup)
                    });
                }
                handle
            }
            None => {
                let s = shared.clone();
                engine.schedule_in(span, move |eng| Self::hedge_win(&s, eng, id, setup))
            }
        };
        shared.borrow_mut().hedge_running.insert(
            id.0,
            RunningAttempt {
                handle,
                alloc,
                started: now,
                attempt,
            },
        );
    }

    /// A hedge duplicate finished first: cancel the straggling main
    /// attempt, book its occupancy as hedge waste, and complete the task
    /// from the duplicate's allocation.
    fn hedge_win(shared: &Rc<RefCell<Shared>>, engine: &mut Engine, id: TaskId, setup: SimDuration) {
        let at = engine.now();
        let hedge = shared
            .borrow_mut()
            .hedge_running
            .remove(&id.0)
            .expect("hedge completion fired for a live hedge");
        let main = shared
            .borrow_mut()
            .running
            .remove(&id.0)
            .expect("hedge won over a running main attempt");
        engine.cancel(main.handle);
        {
            let mut sh = shared.borrow_mut();
            sh.profiler.attempt_hedge_wasted(&main.alloc, main.started, at);
            sh.scheduler.release_owned(main.alloc);
            if sh.telemetry.enabled() {
                let tele = sh.telemetry.clone();
                let owner = sh.spans.get(&id.0).map(|s| s.attempt).unwrap_or(SpanId::NONE);
                tele.instant(
                    SpanCat::Hedge,
                    "hedge-win",
                    owner,
                    track::task(id.0),
                    Stamp::virt(at),
                    &[("node", hedge.alloc.node as i64)],
                );
                tele.count("hedge_wins", 1);
            }
        }
        let warmed = shared
            .borrow_mut()
            .finish_task(id, hedge.alloc, hedge.started, at, setup);
        if let Some(shape) = warmed {
            Self::arm_warm_hedges(shared, engine, shape);
        }
        Self::place_ready(shared, engine);
    }

    /// The main attempt settled (completed, failed, or was evicted) while a
    /// hedge duplicate was still in flight: cancel the duplicate and book
    /// its occupancy as hedge waste. `release` is false when the hedge's
    /// own node just crashed — the drained pool is rebuilt, so forfeited
    /// slots must not be released back into it.
    fn settle_hedge_loser(
        shared: &Rc<RefCell<Shared>>,
        engine: &mut Engine,
        id: TaskId,
        release: bool,
    ) {
        let hedge = shared.borrow_mut().hedge_running.remove(&id.0);
        let Some(hedge) = hedge else {
            return;
        };
        let at = engine.now();
        engine.cancel(hedge.handle);
        let node = hedge.alloc.node;
        let mut sh = shared.borrow_mut();
        sh.profiler.attempt_hedge_wasted(&hedge.alloc, hedge.started, at);
        if release {
            sh.scheduler.release_owned(hedge.alloc);
        }
        if sh.telemetry.enabled() {
            let tele = sh.telemetry.clone();
            let owner = sh.spans.get(&id.0).map(|s| s.attempt).unwrap_or(SpanId::NONE);
            tele.instant(
                SpanCat::Hedge,
                "hedge-lose",
                owner,
                track::task(id.0),
                Stamp::virt(at),
                &[("node", node as i64)],
            );
            tele.count("hedge_losses", 1);
        }
    }

    /// End a failed attempt: retry within budget (after backoff, via the
    /// requeue transition), or surface the error as a terminal completion.
    /// `node` is where the attempt failed (quarantine tracks distinct
    /// failing nodes per task). The attempt's slots must already be
    /// released/forfeited and its waste booked by the caller.
    fn fail_attempt(
        shared: &Rc<RefCell<Shared>>,
        engine: &mut Engine,
        id: TaskId,
        err: TaskError,
        started: SimTime,
        node: u32,
    ) {
        let now = engine.now();
        let mut sh = shared.borrow_mut();
        if sh.telemetry.enabled() {
            let tele = sh.telemetry.clone();
            let at = Stamp::virt(now);
            if let Some(spans) = sh.spans.get(&id.0).copied() {
                let fault = match &err {
                    TaskError::Injected => "fault-injected",
                    TaskError::TimedOut { .. } => "fault-timeout",
                    TaskError::NodeCrashed { .. } => "fault-crash",
                    TaskError::LeaseExpired { .. } => "fault-lease",
                    TaskError::WorkPanicked(_)
                    | TaskError::Canceled
                    | TaskError::Poisoned { .. }
                    | TaskError::ShapeCircuitOpen { .. } => "fault",
                };
                tele.instant(
                    SpanCat::Fault,
                    fault,
                    spans.attempt,
                    track::task(id.0),
                    at,
                    &[],
                );
                tele.end(spans.attempt, at);
            }
        }
        let retry = sh.retry;
        // Quarantine: record the failing node. A task failing on enough
        // *distinct* nodes is poisoned — the input, not the hardware, is
        // the likely culprit, and retrying it elsewhere is pure waste.
        let poisoned = match sh.quarantine {
            Some(q) => {
                let nodes = sh.failed_nodes.entry(id.0).or_default();
                if !nodes.contains(&node) {
                    nodes.push(node);
                }
                nodes.len() as u32 >= q.distinct_nodes
            }
            None => false,
        };
        let task = sh.pending.get_mut(&id.0).expect("failed task has a record");
        task.state.advance(TaskState::Executing);
        if !poisoned && task.attempts < retry.max_retries {
            task.attempts += 1;
            let attempt = task.attempts;
            task.state.advance(TaskState::Scheduling);
            let request = task.request;
            let priority = task.priority;
            sh.profiler.note_retry();
            sh.telemetry.count("retries", 1);
            let delay = retry.backoff(attempt, &mut sh.backoff_rng);
            // The retry verdict is a hub message sent once the backoff
            // elapses; under the control plane the requeue happens at its
            // delivery (duplicated verdicts requeue once via dedup).
            let routed = Self::route(&mut sh, "retry", msg_key(id.0, attempt), None, now + delay);
            drop(sh);
            match routed {
                Some((primary, duplicate)) => {
                    let s = shared.clone();
                    engine.schedule_at(primary, move |eng| {
                        Self::deliver_retry(&s, eng, id, attempt, request, priority)
                    });
                    if let Some(dup_at) = duplicate {
                        let s = shared.clone();
                        engine.schedule_at(dup_at, move |eng| {
                            Self::deliver_retry(&s, eng, id, attempt, request, priority)
                        });
                    }
                }
                None => {
                    let s = shared.clone();
                    engine.schedule_in(delay, move |eng| {
                        {
                            let mut sh = s.borrow_mut();
                            sh.scheduler.enqueue_with_priority(id, request, priority);
                            if sh.telemetry.enabled() {
                                let tele = sh.telemetry.clone();
                                let at = Stamp::virt(eng.now());
                                if let Some(spans) = sh.spans.get(&id.0).copied() {
                                    let queue = tele.span(
                                        SpanCat::Queue,
                                        "queue",
                                        spans.task,
                                        track::task(id.0),
                                        at,
                                        &[("attempt", attempt as i64)],
                                    );
                                    let entry = sh.spans.get_mut(&id.0).expect("span entry");
                                    entry.queue = queue;
                                    entry.queued_at = eng.now();
                                }
                                tele.gauge("queue_depth", sh.scheduler.queue_len() as f64);
                            }
                        }
                        Self::place_ready(&s, eng);
                    });
                }
            }
        } else {
            let mut task = sh.pending.remove(&id.0).expect("failed task has a record");
            task.state.advance(TaskState::Failed);
            sh.in_flight -= 1;
            let distinct = sh
                .failed_nodes
                .remove(&id.0)
                .map(|v| v.len() as u32)
                .unwrap_or(0);
            let err = if poisoned {
                // Poison verdict: bump the shape class's breaker count and
                // surface a typed terminal error.
                let shape = (task.request.cores, task.request.gpus);
                let count = {
                    let c = sh.shape_poison.entry(shape).or_insert(0);
                    *c += 1;
                    *c
                };
                if sh.telemetry.enabled() {
                    let tele = sh.telemetry.clone();
                    let at = Stamp::virt(now);
                    let owner = sh.spans.get(&id.0).map(|s| s.task).unwrap_or(SpanId::NONE);
                    tele.instant(
                        SpanCat::Quarantine,
                        "poisoned",
                        owner,
                        track::task(id.0),
                        at,
                        &[("distinct_nodes", distinct as i64)],
                    );
                    if sh
                        .quarantine
                        .is_some_and(|q| q.shape_trip > 0 && count == q.shape_trip)
                    {
                        tele.instant(
                            SpanCat::Quarantine,
                            "circuit-open",
                            SpanId::NONE,
                            track::FAULT,
                            at,
                            &[("cores", shape.0 as i64), ("gpus", shape.1 as i64)],
                        );
                    }
                    tele.count("tasks_poisoned", 1);
                }
                TaskError::Poisoned {
                    distinct_nodes: distinct,
                }
            } else {
                err
            };
            if sh.telemetry.enabled() {
                let tele = sh.telemetry.clone();
                let at = Stamp::virt(now);
                if let Some(spans) = sh.spans.remove(&id.0) {
                    tele.end(spans.task, at);
                }
                tele.count("tasks_failed", 1);
                tele.gauge("in_flight", sh.in_flight as f64);
            }
            sh.completions.push_back(Completion {
                task: id,
                name: task.name,
                tag: task.tag,
                result: Err(err),
                started,
                finished: now,
                attempts: task.attempts,
                hedged: task.hedged,
            });
        }
    }

    /// A node crash event: drain the node and evict its resident attempts.
    /// Victims forfeit their allocations (the drained pool is rebuilt, so
    /// nothing is released) and consume a retry attempt each.
    fn node_crash(shared: &Rc<RefCell<Shared>>, engine: &mut Engine, node: u32) {
        let victims: Vec<(u64, RunningAttempt)> = {
            let mut sh = shared.borrow_mut();
            // Sort victim ids: HashMap iteration order must not leak into
            // the deterministic event stream.
            let mut ids: Vec<u64> = sh
                .running
                .iter()
                .filter(|(_, r)| r.alloc.node == node)
                .map(|(&i, _)| i)
                .collect();
            ids.sort_unstable();
            sh.crashed[node as usize] = true;
            // A node already drained by a suspicion verdict stays drained;
            // draining twice would corrupt the pool.
            if !sh.suspected[node as usize] {
                sh.scheduler.drain_node(node);
            }
            ids.into_iter()
                .map(|i| {
                    let r = sh.running.remove(&i).expect("victim is running");
                    (i, r)
                })
                .collect()
        };
        let now = engine.now();
        {
            let sh = shared.borrow();
            if sh.telemetry.enabled() {
                sh.telemetry.instant(
                    SpanCat::Fault,
                    "node-crash",
                    SpanId::NONE,
                    track::FAULT,
                    Stamp::virt(now),
                    &[("node", node as i64)],
                );
                sh.telemetry.count("node_crashes", 1);
            }
        }
        // Hedge duplicates resident on the crashed node forfeit their
        // slots (the drained pool is rebuilt, so nothing is released), no
        // matter where their main attempt runs — the main keeps going.
        {
            let mut hedge_ids: Vec<u64> = shared
                .borrow()
                .hedge_running
                .iter()
                .filter(|(_, r)| r.alloc.node == node)
                .map(|(&i, _)| i)
                .collect();
            hedge_ids.sort_unstable();
            for i in hedge_ids {
                Self::settle_hedge_loser(shared, engine, TaskId(i), false);
            }
        }
        for (id, attempt) in victims {
            engine.cancel(attempt.handle);
            // A victim's surviving hedge (on a different node by
            // construction) is settled normally before the attempt fails.
            Self::settle_hedge_loser(shared, engine, TaskId(id), true);
            shared
                .borrow_mut()
                .profiler
                .attempt_wasted(&attempt.alloc, attempt.started, now);
            Self::fail_attempt(
                shared,
                engine,
                TaskId(id),
                TaskError::NodeCrashed { node },
                attempt.started,
                node,
            );
        }
    }

    /// A node recover event: re-admit the node and place waiting tasks.
    fn node_recover(shared: &Rc<RefCell<Shared>>, engine: &mut Engine, node: u32) {
        {
            let mut sh = shared.borrow_mut();
            sh.crashed[node as usize] = false;
            // The healed node gets a fresh liveness grace period, and any
            // standing suspicion is cleared by this ground-truth recovery.
            sh.suspected[node as usize] = false;
            sh.last_heard[node as usize] = engine.now();
            sh.scheduler.recover_node(node);
            if sh.telemetry.enabled() {
                sh.telemetry.instant(
                    SpanCat::Fault,
                    "node-recover",
                    SpanId::NONE,
                    track::FAULT,
                    Stamp::virt(engine.now()),
                    &[("node", node as i64)],
                );
            }
        }
        Self::place_ready(shared, engine);
    }

    /// Binned CPU-occupancy series up to the current time (Fig. 4/5 data).
    pub fn cpu_series(&self, bin: SimDuration) -> Vec<f64> {
        self.shared.borrow().profiler.cpu_series(self.now(), bin)
    }

    /// Binned GPU slot-occupancy series up to the current time.
    pub fn gpu_slot_series(&self, bin: SimDuration) -> Vec<f64> {
        self.shared
            .borrow()
            .profiler
            .gpu_slot_series(self.now(), bin)
    }

    /// Binned GPU hardware-busy series up to the current time.
    pub fn gpu_hw_series(&self, bin: SimDuration) -> Vec<f64> {
        self.shared.borrow().profiler.gpu_hw_series(self.now(), bin)
    }

    /// Per-task records completed so far (cloned snapshot).
    pub fn task_records(&self) -> Vec<crate::profiler::TaskRecord> {
        self.shared.borrow().profiler.records().to_vec()
    }
}

impl ExecutionBackend for SimulatedBackend {
    fn submit(&mut self, desc: TaskDescription) -> TaskId {
        let id = TaskId(self.next_id);
        self.next_id += 1;
        let now = self.engine.now();
        {
            let mut sh = self.shared.borrow_mut();
            assert!(
                desc.request.fits_node(sh.scheduler.node()),
                "{id}: request {} can never fit the pilot's node",
                desc.request
            );
            if sh.telemetry.enabled() {
                let tele = sh.telemetry.clone();
                let at = Stamp::virt(now);
                let tr = track::task(id.0);
                let task_span = tele.span(
                    SpanCat::Task,
                    &desc.name,
                    SpanId::NONE,
                    tr,
                    at,
                    &[("task", id.0 as i64), ("priority", desc.priority as i64)],
                );
                let queue_span =
                    tele.span(SpanCat::Queue, "queue", task_span, tr, at, &[("attempt", 0)]);
                sh.spans.insert(
                    id.0,
                    TaskSpans {
                        task: task_span,
                        queue: queue_span,
                        attempt: SpanId::NONE,
                        queued_at: now,
                    },
                );
                tele.count("tasks_submitted", 1);
            }
            let mut state = StateCell::new();
            state.advance(TaskState::Scheduling);
            sh.pending.insert(
                id.0,
                PendingTask {
                    name: desc.name,
                    tag: desc.tag,
                    request: desc.request,
                    priority: desc.priority,
                    duration: desc.duration,
                    gpu_busy_fraction: desc.gpu_busy_fraction,
                    kind: desc.kind,
                    walltime: desc.walltime,
                    attempts: 0,
                    work: desc.work,
                    state,
                    hedged: false,
                },
            );
            sh.profiler.task_submitted(id, now);
            sh.in_flight += 1;
            // Under the control plane the submit command itself is routed:
            // the task enters the scheduler queue at the command's hub
            // delivery, not at the client call.
            let routed = Self::route(&mut sh, "submit", msg_key(id.0, 0), None, now);
            if let Some((primary, duplicate)) = routed {
                if sh.telemetry.enabled() {
                    sh.telemetry.gauge("in_flight", sh.in_flight as f64);
                }
                let request = desc.request;
                let priority = desc.priority;
                drop(sh);
                let s = self.shared.clone();
                self.engine.schedule_at(primary, move |eng| {
                    Self::deliver_submit(&s, eng, id, request, priority)
                });
                if let Some(dup_at) = duplicate {
                    let s = self.shared.clone();
                    self.engine.schedule_at(dup_at, move |eng| {
                        Self::deliver_submit(&s, eng, id, request, priority)
                    });
                }
                Self::ensure_heartbeats(&self.shared, &mut self.engine);
                return id;
            }
            sh.scheduler
                .enqueue_with_priority(id, desc.request, desc.priority);
            if sh.telemetry.enabled() {
                sh.telemetry
                    .gauge("queue_depth", sh.scheduler.queue_len() as f64);
                sh.telemetry.gauge("in_flight", sh.in_flight as f64);
            }
            // Try placement via the queue so ordering with same-instant
            // events stays deterministic — but coalesce: one scan event per
            // burst of submissions. Every submission before the next engine
            // step is already enqueued when the scan fires, so the placement
            // sequence is identical to one scan per submit.
            if std::mem::replace(&mut sh.place_event_pending, true) {
                return id;
            }
        }
        let s = self.shared.clone();
        self.engine.schedule_at(now, move |eng| {
            s.borrow_mut().place_event_pending = false;
            Self::place_ready(&s, eng);
        });
        id
    }

    fn next_completion(&mut self) -> Option<Completion> {
        loop {
            if let Some(c) = self.shared.borrow_mut().completions.pop_front() {
                return Some(c);
            }
            // Nothing in flight ⇒ no completion can materialize. Do not
            // drain the remaining event queue: under fault injection it
            // holds far-future crash/recover events whose processing would
            // pointlessly advance virtual time past the workload's end.
            {
                let sh = self.shared.borrow();
                if sh.in_flight == 0 {
                    return None;
                }
                // With a live detector the heartbeat chain keeps the event
                // queue nonempty forever; a workload reduced to held tasks
                // can never complete, so stop instead of ticking heartbeats
                // until the end of time.
                if sh.control.is_some() && sh.in_flight == sh.held.len() {
                    return None;
                }
            }
            if !self.engine.step() {
                return None;
            }
        }
    }

    fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn in_flight(&self) -> usize {
        self.shared.borrow().in_flight
    }

    fn utilization(&self) -> UtilizationReport {
        self.shared.borrow().profiler.report(self.now())
    }

    fn phase_breakdown(&self) -> PhaseBreakdown {
        self.shared.borrow().breakdown
    }

    fn held_tasks(&self) -> usize {
        self.shared.borrow().held.len()
    }

    fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    fn cancel(&mut self, id: TaskId) -> bool {
        let mut sh = self.shared.borrow_mut();
        if !sh.scheduler.cancel_queued(id) {
            // Already placed, finished, unknown — or requeued but waiting
            // out a retry backoff (best-effort: such a task re-enters the
            // queue when its backoff fires).
            return false;
        }
        let mut task = sh.pending.remove(&id.0).expect("queued task has a record");
        task.state.advance(TaskState::Canceled);
        sh.in_flight -= 1;
        if sh.telemetry.enabled() {
            let tele = sh.telemetry.clone();
            let at = Stamp::virt(self.engine.now());
            if let Some(spans) = sh.spans.remove(&id.0) {
                tele.end(spans.queue, at);
                tele.instant(
                    SpanCat::Task,
                    "canceled",
                    spans.task,
                    track::task(id.0),
                    at,
                    &[],
                );
                tele.end(spans.task, at);
            }
            tele.count("tasks_canceled", 1);
            tele.gauge("in_flight", sh.in_flight as f64);
        }
        let attempts = task.attempts;
        // Under the control plane the cancel takes effect at the
        // (coordinator-local) queue immediately, but its acknowledgment —
        // the terminal `Canceled` completion — routes back over the hub
        // link and surfaces at delivery.
        let routed = Self::route(
            &mut sh,
            "cancel",
            msg_key(id.0, attempts),
            None,
            self.engine.now(),
        );
        if let Some((primary, duplicate)) = routed {
            // The deferred ack keeps the task in flight until delivery so
            // the completion pump knows to keep stepping.
            sh.in_flight += 1;
            drop(sh);
            for at in std::iter::once(primary).chain(duplicate) {
                let s = self.shared.clone();
                let name = task.name.clone();
                let tag = task.tag.clone();
                let hedged = task.hedged;
                self.engine.schedule_at(at, move |eng| {
                    Self::deliver_cancel(&s, eng, id, attempts, name, tag, hedged)
                });
            }
            return true;
        }
        sh.completions.push_back(Completion {
            task: id,
            name: task.name,
            tag: task.tag,
            result: Err(TaskError::Canceled),
            started: self.engine.now(),
            finished: self.engine.now(),
            attempts,
            hedged: task.hedged,
        });
        true
    }

    /// Preemption: evict a running attempt through the same requeue
    /// transition a node crash uses (`Executing → Scheduling`), but on a
    /// healthy node — the attempt's slots are *released* back into the
    /// pool (a crash forfeits them), its occupancy is booked as waste, and
    /// the task immediately re-enters the priority queue under its stored
    /// priority. Unlike a crash eviction the requeue is unconditional: a
    /// preempted task never surfaces a terminal error, whatever the retry
    /// budget. The attempt counter still advances — it doubles as the
    /// lease epoch, so any late completion report from the evicted attempt
    /// (a duplicated delivery under the control plane) is fenced out by
    /// the epoch check exactly like a suspicion eviction's.
    fn preempt(&mut self, id: TaskId) -> bool {
        let run = {
            let mut sh = self.shared.borrow_mut();
            match sh.running.remove(&id.0) {
                Some(r) => r,
                None => return false,
            }
        };
        let now = self.engine.now();
        self.engine.cancel(run.handle);
        // A live hedge duplicate lost with its main attempt.
        Self::settle_hedge_loser(&self.shared, &mut self.engine, id, true);
        {
            let mut sh = self.shared.borrow_mut();
            sh.profiler.attempt_wasted(&run.alloc, run.started, now);
            let node = run.alloc.node;
            sh.scheduler.release_owned(run.alloc);
            let task = sh
                .pending
                .get_mut(&id.0)
                .expect("preempted task has a record");
            task.state.advance(TaskState::Executing);
            task.state.advance(TaskState::Scheduling);
            task.attempts += 1;
            let attempt = task.attempts;
            let request = task.request;
            let priority = task.priority;
            sh.scheduler.enqueue_with_priority(id, request, priority);
            if sh.telemetry.enabled() {
                let tele = sh.telemetry.clone();
                let at = Stamp::virt(now);
                if let Some(spans) = sh.spans.get(&id.0).copied() {
                    tele.instant(
                        SpanCat::Scheduler,
                        "preempted",
                        spans.attempt,
                        track::task(id.0),
                        at,
                        &[("node", node as i64), ("attempt", attempt as i64)],
                    );
                    tele.end(spans.attempt, at);
                    let queue = tele.span(
                        SpanCat::Queue,
                        "queue",
                        spans.task,
                        track::task(id.0),
                        at,
                        &[("attempt", attempt as i64)],
                    );
                    let entry = sh.spans.get_mut(&id.0).expect("span entry");
                    entry.queue = queue;
                    entry.queued_at = now;
                }
                tele.count("preemptions", 1);
                tele.gauge("queue_depth", sh.scheduler.queue_len() as f64);
            }
        }
        // The freed slots can admit queued (higher-priority) work at this
        // very instant.
        Self::place_ready(&self.shared, &mut self.engine);
        true
    }

    fn control_stats(&self) -> ControlStats {
        self.shared.borrow().cstats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{NodeSpec, ResourceRequest};
    use crate::scheduler::PlacementPolicy;

    fn config(cores: u32, gpus: u32) -> PilotConfig {
        PilotConfig {
            node: NodeSpec::new(cores, gpus, 64),
            nodes: 1,
            policy: PlacementPolicy::Backfill,
            bootstrap: SimDuration::from_secs(100),
            exec_setup_per_task: SimDuration::from_secs(10),
            seed: 0,
        }
    }

    fn task(name: &str, cores: u32, gpus: u32, secs: u64) -> TaskDescription {
        TaskDescription::new(
            name,
            ResourceRequest::with_gpus(cores, gpus),
            SimDuration::from_secs(secs),
        )
    }

    #[test]
    fn nothing_starts_before_bootstrap() {
        let mut b = SimulatedBackend::new(config(4, 0));
        b.submit(task("t", 1, 0, 50));
        let c = b.next_completion().unwrap();
        // bootstrap 100 + setup 10 + run 50
        assert_eq!(c.started, SimTime::from_micros(100_000_000));
        assert_eq!(c.finished, SimTime::from_micros(160_000_000));
    }

    #[test]
    fn independent_tasks_run_concurrently() {
        let mut b = SimulatedBackend::new(config(4, 0));
        for i in 0..4 {
            b.submit(task(&format!("t{i}"), 1, 0, 100));
        }
        let mut finishes = Vec::new();
        while let Some(c) = b.next_completion() {
            finishes.push(c.finished);
        }
        assert_eq!(finishes.len(), 4);
        // All four fit at once → all finish at the same virtual instant.
        assert!(finishes.iter().all(|&f| f == finishes[0]));
    }

    #[test]
    fn oversubscription_serializes() {
        let mut b = SimulatedBackend::new(config(1, 0));
        b.submit(task("a", 1, 0, 100));
        b.submit(task("b", 1, 0, 100));
        let c1 = b.next_completion().unwrap();
        let c2 = b.next_completion().unwrap();
        assert!(c2.started >= c1.finished, "second task must wait");
    }

    #[test]
    fn work_closures_run_and_outputs_flow_back() {
        let mut b = SimulatedBackend::new(config(2, 0));
        b.submit(task("compute", 1, 0, 10).with_work(|| vec![1u32, 2, 3]));
        let c = b.next_completion().unwrap();
        assert_eq!(c.output::<Vec<u32>>(), vec![1, 2, 3]);
    }

    #[test]
    fn panicking_work_reports_failure_and_frees_slots() {
        let mut b = SimulatedBackend::new(config(1, 0));
        b.submit(task("boom", 1, 0, 10).with_work(|| -> u32 { panic!("kaboom") }));
        b.submit(task("after", 1, 0, 10).with_work(|| 1u32));
        let c1 = b.next_completion().unwrap();
        match c1.result {
            Err(TaskError::WorkPanicked(msg)) => assert!(msg.contains("kaboom")),
            other => panic!("expected panic error, got {other:?}"),
        }
        // The slot must have been released so the next task completes.
        let c2 = b.next_completion().unwrap();
        assert!(c2.result.is_ok());
    }

    #[test]
    fn gpu_contention_is_respected() {
        let mut b = SimulatedBackend::new(config(8, 1));
        b.submit(task("g1", 1, 1, 100));
        b.submit(task("g2", 1, 1, 100));
        let c1 = b.next_completion().unwrap();
        let c2 = b.next_completion().unwrap();
        assert!(c2.started >= c1.finished, "single GPU must serialize");
    }

    #[test]
    fn utilization_report_reflects_load() {
        let mut b = SimulatedBackend::new(config(2, 0));
        b.submit(task("t", 2, 0, 1000));
        while b.next_completion().is_some() {}
        let r = b.utilization();
        // 1000s busy on both cores out of 1110s total → ~90%.
        assert!(r.cpu > 0.85 && r.cpu < 0.95, "cpu {}", r.cpu);
        assert_eq!(r.tasks, 1);
    }

    #[test]
    fn phase_breakdown_accounts_all_tasks() {
        let mut b = SimulatedBackend::new(config(4, 0));
        for _ in 0..3 {
            b.submit(task("t", 1, 0, 50));
        }
        while b.next_completion().is_some() {}
        let pb = b.phase_breakdown();
        assert_eq!(pb.tasks_executed, 3);
        assert_eq!(pb.bootstrap, SimDuration::from_secs(100));
        assert_eq!(pb.exec_setup_total, SimDuration::from_secs(30));
        assert_eq!(pb.running_total, SimDuration::from_secs(150));
    }

    #[test]
    fn adaptive_submission_after_completion_works() {
        // Submit a follow-up task from the driver loop after observing a
        // completion — the coordinator's core interaction pattern.
        let mut b = SimulatedBackend::new(config(2, 0));
        b.submit(task("first", 1, 0, 10).with_work(|| 1u32));
        let c = b.next_completion().unwrap();
        let v = c.output::<u32>();
        b.submit(task("second", 1, 0, 10).with_work(move || v + 1));
        let c2 = b.next_completion().unwrap();
        assert_eq!(c2.output::<u32>(), 2);
        assert!(b.next_completion().is_none());
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn multi_node_pilot_doubles_throughput() {
        let run = |nodes: u32| -> f64 {
            let mut b = SimulatedBackend::new(PilotConfig {
                nodes,
                ..config(4, 0)
            });
            for i in 0..8 {
                b.submit(task(&format!("t{i}"), 4, 0, 100));
            }
            while b.next_completion().is_some() {}
            b.now().as_secs_f64()
        };
        let one = run(1);
        let two = run(2);
        assert!(
            two < one * 0.65,
            "two nodes should nearly halve the makespan: {one}s → {two}s"
        );
    }

    #[test]
    fn queued_tasks_can_be_cancelled_running_ones_cannot() {
        let mut b = SimulatedBackend::new(config(1, 0));
        let _running = b.submit(task("running", 1, 0, 100));
        let queued = b.submit(task("queued", 1, 0, 100));
        // Both tasks are still pre-bootstrap; the second is queued behind
        // the first on the single core, so it is cancellable.
        assert!(b.cancel(queued), "queued task is cancellable");
        assert!(!b.cancel(queued), "double cancel is a no-op");
        let mut saw_cancelled = false;
        let mut saw_done = false;
        while let Some(c) = b.next_completion() {
            match c.result {
                Err(TaskError::Canceled) => {
                    assert_eq!(c.name, "queued");
                    saw_cancelled = true;
                }
                _ => saw_done = true,
            }
        }
        assert!(saw_cancelled && saw_done);
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn determinism_across_identical_runs() {
        let run = || -> Vec<(u64, u64)> {
            let mut b = SimulatedBackend::new(config(3, 1));
            for i in 0..6 {
                b.submit(task(&format!("t{i}"), 1 + (i % 2), i % 2, 40 + i as u64));
            }
            let mut log = Vec::new();
            while let Some(c) = b.next_completion() {
                log.push((c.task.0, c.finished.as_micros()));
            }
            log
        };
        assert_eq!(run(), run());
    }

    use crate::fault::{FaultConfig, ScriptedCrash, ScriptedSlowdown};

    fn no_backoff(retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries: retries,
            ..RetryPolicy::none()
        }
    }

    #[test]
    fn preempt_requeues_a_running_attempt_without_a_terminal_error() {
        // Zero retry budget: a preempted attempt must requeue and finish
        // anyway — preemption is never a terminal error and never consumes
        // a retry.
        let mut b = SimulatedBackend::new(config(2, 0));
        let t0 = b.submit(task("t0", 1, 0, 100).with_work(|| 0u64));
        let short = b.submit(task("short", 1, 0, 5).with_work(|| 2u64));
        // Nothing has been placed yet, so nothing is preemptible.
        assert!(!b.preempt(t0), "queued tasks are not preemptible");
        assert!(!b.preempt(TaskId(99)), "unknown tasks are not preemptible");
        // Pump to the short task's completion: t0 is now mid-attempt with
        // nonzero occupancy behind it.
        let c = b.next_completion().expect("short task finishes first");
        assert_eq!(c.task, short);
        assert!(b.preempt(t0), "t0 must be running and preemptible");
        assert!(!b.preempt(short), "finished tasks are not preemptible");
        let mut finished = Vec::new();
        while let Some(c) = b.next_completion() {
            assert!(c.result.is_ok(), "preemption must not surface an error");
            finished.push(c.task);
        }
        assert_eq!(finished, vec![t0]);
        // The evicted attempt's partial occupancy is booked as waste.
        assert!(b.utilization().wasted_core_seconds > 0.0);
    }

    #[test]
    fn explicit_none_plan_matches_the_plain_constructor() {
        let run = |mut b: SimulatedBackend| -> (Vec<(u64, u64, bool)>, u64, f64) {
            for i in 0..6 {
                b.submit(task(&format!("t{i}"), 1 + (i % 2), i % 2, 40 + i as u64));
            }
            let mut log = Vec::new();
            while let Some(c) = b.next_completion() {
                log.push((c.task.0, c.finished.as_micros(), c.result.is_ok()));
                assert_eq!(c.attempts, 0, "fault-free runs never retry");
            }
            (log, b.now().as_micros(), b.utilization().cpu)
        };
        let plain = run(SimulatedBackend::new(config(3, 1)));
        let faulted = run(RuntimeConfig::new(config(3, 1))
            .faults(FaultPlan::none(), RetryPolicy::none())
            .simulated());
        assert_eq!(plain, faulted, "zero-fault plan must be a true no-op");
    }

    #[test]
    fn transient_fault_with_zero_budget_surfaces_injected_error() {
        let plan = FaultPlan::new(
            FaultConfig {
                task_failure_rate: 1.0,
                ..FaultConfig::none()
            },
            1,
        );
        let mut b = RuntimeConfig::new(config(2, 0)).faults(plan, RetryPolicy::none()).simulated();
        b.submit(task("doomed", 1, 0, 50).with_work(|| 1u32));
        let c = b.next_completion().unwrap();
        assert_eq!(c.result.unwrap_err(), TaskError::Injected);
        assert_eq!(c.attempts, 0);
        let r = b.utilization();
        assert_eq!(r.retries, 0);
        assert!(r.wasted_core_seconds > 0.0, "the doomed attempt held a core");
        assert_eq!(r.tasks, 0, "no useful execution happened");
    }

    #[test]
    fn retry_budget_exhaustion_caps_attempts() {
        let plan = FaultPlan::new(
            FaultConfig {
                task_failure_rate: 1.0,
                ..FaultConfig::none()
            },
            1,
        );
        let mut b = RuntimeConfig::new(config(2, 0)).faults(plan, no_backoff(3)).simulated();
        b.submit(task("doomed", 1, 0, 50));
        let c = b.next_completion().unwrap();
        assert_eq!(c.attempts, 3, "budget fully spent");
        assert_eq!(c.result.unwrap_err(), TaskError::Injected);
        assert_eq!(b.utilization().retries, 3);
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn retries_eventually_succeed_under_partial_fault_rates() {
        let plan = FaultPlan::new(
            FaultConfig {
                task_failure_rate: 0.5,
                ..FaultConfig::none()
            },
            11,
        );
        let mut b = RuntimeConfig::new(config(4, 0)).faults(plan, no_backoff(8)).simulated();
        for i in 0..12 {
            b.submit(task(&format!("t{i}"), 1, 0, 30).with_work(move || i as u32));
        }
        let mut oks = 0;
        let mut retried = 0;
        while let Some(c) = b.next_completion() {
            if c.result.is_ok() {
                oks += 1;
            }
            assert!(c.attempts <= 8, "attempts never exceed the budget");
            if c.attempts > 0 {
                retried += 1;
            }
        }
        assert_eq!(oks, 12, "8 retries at p=0.5 lose less than 1 in 256 tasks");
        assert!(retried > 0, "at p=0.5 some task must have retried");
        let r = b.utilization();
        assert!(r.retries > 0);
        assert!(r.wasted_core_seconds > 0.0);
    }

    #[test]
    fn walltime_limit_times_out_long_tasks() {
        let mut b = SimulatedBackend::new(config(2, 0));
        b.submit(
            task("straggler", 1, 0, 1000)
                .with_walltime(SimDuration::from_secs(50))
                .with_work(|| 1u32),
        );
        let c = b.next_completion().unwrap();
        assert_eq!(
            c.result.unwrap_err(),
            TaskError::TimedOut {
                limit: SimDuration::from_secs(50)
            }
        );
        // The attempt occupied its slots for exactly the limit.
        assert_eq!(c.finished.since(c.started), SimDuration::from_secs(50));
    }

    #[test]
    fn hang_faults_dilate_runtimes_into_walltime_kills() {
        let plan = FaultPlan::new(
            FaultConfig {
                task_hang_rate: 1.0,
                hang_factor: 8.0,
                ..FaultConfig::none()
            },
            2,
        );
        // Base run (10 + 100 s) fits the 200 s walltime; the ×8 hang does not.
        let mut b = RuntimeConfig::new(config(2, 0)).faults(plan, RetryPolicy::none()).simulated();
        b.submit(task("hung", 1, 0, 100).with_walltime(SimDuration::from_secs(200)));
        let c = b.next_completion().unwrap();
        assert!(matches!(c.result, Err(TaskError::TimedOut { .. })));
        assert_eq!(c.finished.since(c.started), SimDuration::from_secs(200));
    }

    #[test]
    fn scripted_node_crash_requeues_residents_and_completes_the_run() {
        let plan = FaultPlan::new(
            FaultConfig {
                scripted_crashes: vec![ScriptedCrash {
                    node: 0,
                    at: SimTime::from_micros(500_000_000),
                    outage: SimDuration::from_secs(300),
                }],
                ..FaultConfig::none()
            },
            0,
        );
        let mut b = RuntimeConfig::new(PilotConfig {
            nodes: 2,
            ..config(4, 0)
        })
        .faults(plan, no_backoff(3))
        .simulated();
        for i in 0..4 {
            b.submit(task(&format!("t{i}"), 4, 0, 1000).with_work(move || i as u32));
        }
        let mut completions = Vec::new();
        while let Some(c) = b.next_completion() {
            completions.push(c);
        }
        assert_eq!(completions.len(), 4);
        assert!(completions.iter().all(|c| c.result.is_ok()), "no lineage lost");
        let evicted: Vec<_> = completions.iter().filter(|c| c.attempts > 0).collect();
        assert_eq!(evicted.len(), 1, "exactly the node-0 resident was evicted");
        let r = b.utilization();
        assert_eq!(r.retries, 1);
        // The victim started at t=100 (bootstrap) and was evicted at t=500,
        // holding 4 cores: 1600 wasted core-seconds.
        assert!((r.wasted_core_seconds - 1600.0).abs() < 1e-6, "{}", r.wasted_core_seconds);
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn node_crash_beyond_the_budget_reports_node_crashed() {
        let plan = FaultPlan::new(
            FaultConfig {
                scripted_crashes: vec![ScriptedCrash {
                    node: 0,
                    at: SimTime::from_micros(500_000_000),
                    outage: SimDuration::from_secs(60),
                }],
                ..FaultConfig::none()
            },
            0,
        );
        let mut b = RuntimeConfig::new(config(4, 0)).faults(plan, RetryPolicy::none()).simulated();
        b.submit(task("victim", 4, 0, 1000));
        let c = b.next_completion().unwrap();
        assert_eq!(c.result.unwrap_err(), TaskError::NodeCrashed { node: 0 });
        assert_eq!(c.attempts, 0);
    }

    #[test]
    fn faulted_runs_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<(u64, u64, bool, u32)> {
            let plan = FaultPlan::new(
                FaultConfig {
                    task_failure_rate: 0.3,
                    task_hang_rate: 0.1,
                    node_mtbf: Some(SimDuration::from_secs(2000)),
                    node_outage: SimDuration::from_secs(120),
                    ..FaultConfig::none()
                },
                seed,
            );
            let mut b = RuntimeConfig::new(PilotConfig {
                nodes: 2,
                ..config(3, 1)
            })
            .faults(plan, RetryPolicy::retries(4))
            .simulated();
            for i in 0..10 {
                b.submit(
                    task(&format!("t{i}"), 1 + (i % 2), i % 2, 200 + 10 * i as u64)
                        .with_walltime(SimDuration::from_secs(4000)),
                );
            }
            let mut log = Vec::new();
            while let Some(c) = b.next_completion() {
                log.push((c.task.0, c.finished.as_micros(), c.result.is_ok(), c.attempts));
            }
            log
        };
        assert_eq!(run(5), run(5), "same seed, same fault history");
        assert_ne!(run(5), run(6), "different seeds diverge");
    }

    #[test]
    fn deadline_holds_overrunning_tasks_and_drains_in_flight_work() {
        // Bootstrap 100s + setup 10s; node has 2 cores. Two 50s tasks fit a
        // 300s allocation; the third is submitted too late to finish.
        let mut b = RuntimeConfig::new(config(2, 0))
            .deadline(SimTime::from_micros(300 * 1_000_000))
            .simulated();
        b.submit(task("fits-a", 1, 0, 50));
        b.submit(task("fits-b", 1, 0, 50));
        b.submit(task("too-big", 2, 0, 100_000));
        let mut finished = Vec::new();
        while let Some(c) = b.next_completion() {
            assert!(c.result.is_ok());
            finished.push(c.name);
        }
        // In-flight work drained; the overrunning task was held, not run.
        assert_eq!(finished, vec!["fits-a".to_string(), "fits-b".into()]);
        assert_eq!(b.held_tasks(), 1);
        assert_eq!(b.in_flight(), 1, "held tasks stay in flight");
        assert!(
            b.now() <= SimTime::from_micros(300 * 1_000_000),
            "nothing may run past the deadline: now = {}",
            b.now()
        );
    }

    #[test]
    fn without_a_deadline_nothing_is_held() {
        let mut b = SimulatedBackend::new(config(2, 0));
        b.submit(task("t", 2, 0, 100_000));
        assert!(b.next_completion().is_some());
        assert_eq!(b.held_tasks(), 0);
    }

    #[test]
    fn scripted_slowdown_dilates_the_modeled_clock() {
        // A factor-3 window covering the whole run stretches setup + work
        // (10 s + 50 s) to 180 s; bootstrap is unaffected.
        let plan = FaultPlan::new(
            FaultConfig {
                scripted_slowdowns: vec![ScriptedSlowdown {
                    node: 0,
                    at: SimTime::ZERO,
                    duration: SimDuration::from_secs(1_000_000),
                    factor: 3.0,
                }],
                ..FaultConfig::none()
            },
            0,
        );
        let mut b = RuntimeConfig::new(config(1, 0))
            .faults(plan, RetryPolicy::none())
            .simulated();
        b.submit(task("t", 1, 0, 50));
        let c = b.next_completion().unwrap();
        assert!(c.result.is_ok());
        assert_eq!(c.started, SimTime::from_micros(100_000_000));
        assert_eq!(c.finished, SimTime::from_micros(280_000_000));
    }

    #[test]
    fn hedged_duplicate_rescues_a_straggler_and_books_waste() {
        // Two 1-core nodes. Two warmups prime the (1,0) estimate at 60 s
        // (setup 10 + run 50); then node 0 degrades 20× from t=200 s. The
        // victim placed on node 0 dilates to a 440 s span, crosses the
        // 2×60 s hedge threshold at t=280 s, and the duplicate on node 1
        // finishes at t=340 s — rescuing 420 s of straggler tail.
        let plan = FaultPlan::new(
            FaultConfig {
                scripted_slowdowns: vec![ScriptedSlowdown {
                    node: 0,
                    at: SimTime::from_micros(200_000_000),
                    duration: SimDuration::from_secs(1_000_000),
                    factor: 20.0,
                }],
                ..FaultConfig::none()
            },
            0,
        );
        let mut b = RuntimeConfig::new(PilotConfig {
            nodes: 2,
            ..config(1, 0)
        })
        .faults(plan, RetryPolicy::none())
        .hedge(HedgePolicy {
            threshold: 2.0,
            min_samples: 1,
        })
        .simulated();
        b.submit(task("warm-a", 1, 0, 50));
        b.submit(task("warm-b", 1, 0, 50));
        while b.in_flight() > 0 {
            assert!(b.next_completion().unwrap().result.is_ok());
        }
        b.submit(task("victim-a", 1, 0, 50));
        b.submit(task("victim-b", 1, 0, 50));
        let mut done = Vec::new();
        while let Some(c) = b.next_completion() {
            assert!(c.result.is_ok());
            done.push(c);
        }
        assert_eq!(done.len(), 2);
        let rescued = done.iter().find(|c| c.hedged).expect("one hedged task");
        assert_eq!(rescued.finished, SimTime::from_micros(340_000_000));
        let unhedged = done.iter().find(|c| !c.hedged).unwrap();
        assert_eq!(unhedged.finished, SimTime::from_micros(220_000_000));
        let util = b.utilization();
        assert_eq!(util.hedges, 1);
        // The losing main attempt occupied node 0 from 160 s to the 340 s
        // hedge win: 180 core-seconds of hedge waste, no retry waste.
        assert!((util.hedge_wasted_core_seconds - 180.0).abs() < 1e-9);
        assert_eq!(util.retries, 0);
        assert_eq!(util.wasted_core_seconds, 0.0);
    }

    #[test]
    fn quarantine_poisons_after_distinct_node_failures() {
        // Every attempt fails; quarantine cuts the 5-retry budget short the
        // moment the lineage has failed on 2 distinct nodes.
        let plan = FaultPlan::new(
            FaultConfig {
                task_failure_rate: 1.0,
                ..FaultConfig::none()
            },
            0,
        );
        let mut b = RuntimeConfig::new(PilotConfig {
            nodes: 2,
            ..config(1, 0)
        })
        .faults(plan, no_backoff(5))
        .quarantine(QuarantinePolicy::distinct(2))
        .simulated();
        b.submit(task("poison", 1, 0, 50));
        let c = b.next_completion().unwrap();
        match c.result {
            Err(TaskError::Poisoned { distinct_nodes }) => assert_eq!(distinct_nodes, 2),
            ref other => panic!("expected a poison verdict, got {other:?}"),
        }
        assert_eq!(c.attempts, 1, "verdict after exactly distinct_nodes attempts");
    }

    #[test]
    fn shape_circuit_breaker_sheds_the_shape_class() {
        // One poisoned (1,0) lineage trips the breaker; the next (1,0) task
        // is shed at the placement grant with a typed error and zero span.
        let plan = FaultPlan::new(
            FaultConfig {
                task_failure_rate: 1.0,
                ..FaultConfig::none()
            },
            0,
        );
        let mut b = RuntimeConfig::new(PilotConfig {
            nodes: 2,
            ..config(1, 0)
        })
        .faults(plan, no_backoff(5))
        .quarantine(QuarantinePolicy::distinct(2).with_shape_trip(1))
        .simulated();
        b.submit(task("poison", 1, 0, 50));
        let first = b.next_completion().unwrap();
        assert!(matches!(first.result, Err(TaskError::Poisoned { .. })));
        b.submit(task("shed", 1, 0, 50));
        let second = b.next_completion().unwrap();
        match second.result {
            Err(TaskError::ShapeCircuitOpen { cores, gpus }) => {
                assert_eq!((cores, gpus), (1, 0));
            }
            ref other => panic!("expected the breaker to shed, got {other:?}"),
        }
        assert_eq!(second.started, second.finished, "shed tasks never run");
    }
}

#[cfg(test)]
mod control_tests {
    use super::*;
    use crate::fault::{FaultConfig, ScriptedPartition};
    use crate::resources::{NodeSpec, ResourceRequest};
    use crate::scheduler::PlacementPolicy;

    fn pconfig(nodes: u32, cores: u32) -> PilotConfig {
        PilotConfig {
            node: NodeSpec::new(cores, 0, 64),
            nodes,
            policy: PlacementPolicy::Backfill,
            bootstrap: SimDuration::from_secs(10),
            exec_setup_per_task: SimDuration::from_secs(1),
            seed: 42,
        }
    }

    fn task(name: &str, secs: u64) -> TaskDescription {
        TaskDescription::new(name, ResourceRequest::cores(1), SimDuration::from_secs(secs))
    }

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn disabled_link_keeps_stats_zero() {
        let mut b = SimulatedBackend::new(pconfig(1, 2));
        b.submit(task("t", 5));
        while b.next_completion().is_some() {}
        assert_eq!(b.control_stats(), ControlStats::default());
    }

    #[test]
    fn link_delay_defers_submit_and_completion_reports() {
        let mut cfg = FaultConfig::none();
        cfg.link.delay = secs(2);
        let mut b = SimulatedBackend::from_config(
            RuntimeConfig::new(pconfig(1, 4)).faults(FaultPlan::new(cfg, 1), RetryPolicy::none()),
        );
        b.submit(task("t", 50));
        let c = b.next_completion().expect("task completes");
        assert!(c.result.is_ok());
        // Submit arrives at 2 s (before bootstrap ends at 10 s), so the
        // start is unchanged; the finish report of 10 + 1 + 50 = 61 s
        // arrives 2 s later.
        assert_eq!(c.started, SimTime::from_micros(10_000_000));
        assert_eq!(c.finished, SimTime::from_micros(63_000_000));
        let st = b.control_stats();
        assert_eq!(st.messages, 2, "one submit, one completion report");
        assert_eq!(st.dedup_hits, 0);
        assert_eq!(st.fenced_completions, 0);
    }

    #[test]
    fn duplicated_reports_apply_exactly_once() {
        let mut cfg = FaultConfig::none();
        cfg.link.duplicate_rate = 1.0;
        cfg.link.delay = SimDuration::from_micros(1_000);
        let retry = RetryPolicy {
            max_retries: 2,
            backoff_base: secs(1),
            ..RetryPolicy::none()
        };
        let mut b = SimulatedBackend::from_config(
            RuntimeConfig::new(pconfig(2, 2)).faults(FaultPlan::new(cfg, 7), retry),
        );
        for i in 0..8 {
            b.submit(task(&format!("t{i}"), 20));
        }
        let mut done = std::collections::HashSet::new();
        while let Some(c) = b.next_completion() {
            assert!(c.result.is_ok(), "unexpected failure: {:?}", c.result);
            assert!(done.insert(c.task), "{} completed twice", c.task);
        }
        assert_eq!(done.len(), 8, "every task settles exactly once");
        let st = b.control_stats();
        assert!(st.duplicates > 0, "saturated duplicate rate duplicates");
        assert!(st.dedup_hits > 0, "duplicates were absorbed by dedup");
        assert_eq!(st.fenced_completions, 0);
    }

    #[test]
    fn partition_triggers_suspicion_eviction_and_fencing() {
        let mut cfg = FaultConfig::none();
        cfg.link.delay = SimDuration::from_micros(100_000);
        cfg.link.retransmit_timeout = secs(1);
        cfg.link.heartbeat_interval = Some(secs(2));
        cfg.link.heartbeat_timeout = Some(secs(8));
        // Sever node 1 from the coordinator for 60 s starting the moment
        // bootstrap completes.
        cfg.link.partitions = vec![ScriptedPartition {
            first_node: 1,
            last_node: 1,
            at: SimTime::from_micros(10_000_000),
            duration: secs(60),
        }];
        let retry = RetryPolicy {
            max_retries: 2,
            backoff_base: secs(1),
            ..RetryPolicy::none()
        };
        let mut b = SimulatedBackend::from_config(
            RuntimeConfig::new(pconfig(2, 2)).faults(FaultPlan::new(cfg, 3), retry),
        );
        for i in 0..4 {
            b.submit(task(&format!("t{i}"), 30));
        }
        let mut done = std::collections::HashSet::new();
        while let Some(c) = b.next_completion() {
            assert!(c.result.is_ok(), "unexpected failure: {:?}", c.result);
            assert!(done.insert(c.task), "{} completed twice", c.task);
        }
        assert_eq!(done.len(), 4, "every task settles exactly once");
        let st = b.control_stats();
        assert!(st.suspicions >= 1, "partitioned node must be suspected");
        assert_eq!(st.lease_expiries, 2, "both residents of node 1 evicted");
        assert_eq!(
            st.fenced_completions, 2,
            "the healed partition delivers both stale reports, fenced by epoch"
        );
        assert!(st.resyncs >= 1, "post-heal heartbeat clears the suspicion");
        // Detection recovered the work without waiting for the heal +
        // stalled reports alone (~70 s + redelivery).
        assert!(
            b.now() < SimTime::from_micros(100_000_000),
            "makespan {:?} should beat partition-bound completion",
            b.now()
        );
    }

    #[test]
    fn lossy_hub_still_delivers_every_task() {
        let mut cfg = FaultConfig::none();
        cfg.link.drop_rate = 0.4;
        cfg.link.duplicate_rate = 0.3;
        cfg.link.delay = SimDuration::from_micros(50_000);
        cfg.link.jitter = SimDuration::from_micros(30_000);
        cfg.link.reorder_rate = 0.2;
        cfg.link.retransmit_timeout = secs(1);
        let retry = RetryPolicy {
            max_retries: 2,
            backoff_base: secs(1),
            ..RetryPolicy::none()
        };
        let mut b = SimulatedBackend::from_config(
            RuntimeConfig::new(pconfig(2, 2)).faults(FaultPlan::new(cfg, 11), retry),
        );
        for i in 0..12 {
            b.submit(task(&format!("t{i}"), 15));
        }
        let mut done = std::collections::HashSet::new();
        while let Some(c) = b.next_completion() {
            assert!(c.result.is_ok(), "unexpected failure: {:?}", c.result);
            assert!(done.insert(c.task), "{} completed twice", c.task);
        }
        assert_eq!(done.len(), 12, "at-least-once delivery loses nothing");
        let st = b.control_stats();
        assert!(st.retransmits > 0, "drops forced retransmissions");
    }
}
