//! The deterministic virtual-time backend.
//!
//! Runs the pilot on the `impress-sim` engine. Submissions enqueue into the
//! scheduler; placements, exec-setup delays, and completions are engine
//! events; work closures execute at their task's completion instant. The
//! whole 27-hour CONT-V run replays in milliseconds, bit-identically for a
//! given seed.

use crate::backend::{Completion, ExecutionBackend, TaskError};
use crate::pilot::{PhaseBreakdown, PilotConfig};
use crate::profiler::{Profiler, UtilizationReport};
use crate::resources::Allocation;
use crate::scheduler::Scheduler;
use crate::states::StateCell;
use crate::task::{TaskDescription, TaskId, TaskWork};
use impress_sim::{Engine, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

struct PendingTask {
    name: String,
    tag: String,
    duration: SimDuration,
    gpu_busy_fraction: f64,
    kind: crate::task::TaskKind,
    work: Option<TaskWork>,
    state: StateCell,
}

struct Shared {
    scheduler: Scheduler,
    profiler: Profiler,
    breakdown: PhaseBreakdown,
    pending: HashMap<u64, PendingTask>,
    completions: VecDeque<Completion>,
    in_flight: usize,
    exec_setup: SimDuration,
    bootstrapped: bool,
}

impl Shared {
    fn finish_task(
        &mut self,
        id: TaskId,
        alloc: &Allocation,
        started: SimTime,
        now: SimTime,
        setup: SimDuration,
    ) {
        let mut task = self.pending.remove(&id.0).expect("task record exists");
        task.state.advance(crate::states::TaskState::Executing);
        let result = match task.work.take() {
            Some(work) => match catch_unwind(AssertUnwindSafe(work)) {
                Ok(out) => {
                    task.state.advance(crate::states::TaskState::Done);
                    Ok(Some(out))
                }
                Err(payload) => {
                    task.state.advance(crate::states::TaskState::Failed);
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic>".to_string());
                    Err(TaskError::WorkPanicked(msg))
                }
            },
            None => {
                task.state.advance(crate::states::TaskState::Done);
                Ok(None)
            }
        };
        self.profiler.task_finished(
            id,
            &task.name,
            &task.tag,
            alloc,
            started,
            now,
            task.gpu_busy_fraction,
        );
        self.scheduler.release(alloc);
        self.breakdown
            .record_task(setup, now.since(started + setup));
        self.in_flight -= 1;
        self.completions.push_back(Completion {
            task: id,
            name: task.name,
            tag: task.tag,
            result,
            started,
            finished: now,
        });
    }
}

/// The virtual-time pilot backend.
pub struct SimulatedBackend {
    engine: Engine,
    shared: Rc<RefCell<Shared>>,
    config: PilotConfig,
    next_id: u64,
}

impl SimulatedBackend {
    /// Start a pilot on a simulated node. Bootstrap begins at `t = 0`; no
    /// task can start before `config.bootstrap` has elapsed.
    pub fn new(config: PilotConfig) -> Self {
        let shared = Rc::new(RefCell::new(Shared {
            scheduler: Scheduler::new_cluster(config.cluster(), config.policy),
            profiler: Profiler::new_cluster(config.node.cores, config.node.gpus, config.nodes),
            breakdown: PhaseBreakdown {
                bootstrap: config.bootstrap,
                ..Default::default()
            },
            pending: HashMap::new(),
            completions: VecDeque::new(),
            in_flight: 0,
            exec_setup: config.exec_setup_per_task,
            bootstrapped: false,
        }));
        let mut engine = Engine::new();
        // Bootstrap completion event: mark ready and place anything queued.
        let s = shared.clone();
        engine.schedule_in(config.bootstrap, move |eng| {
            s.borrow_mut().bootstrapped = true;
            Self::place_ready(&s, eng);
        });
        SimulatedBackend {
            engine,
            shared,
            config,
            next_id: 0,
        }
    }

    /// The pilot configuration this backend runs.
    pub fn config(&self) -> &PilotConfig {
        &self.config
    }

    /// Place every task the scheduler allows, wiring up setup + completion
    /// events for each placement.
    fn place_ready(shared: &Rc<RefCell<Shared>>, engine: &mut Engine) {
        let placements = {
            let mut sh = shared.borrow_mut();
            if !sh.bootstrapped {
                return;
            }
            sh.scheduler.place_ready()
        };
        for (id, alloc) in placements {
            let now = engine.now();
            let (duration, setup) = {
                let mut sh = shared.borrow_mut();
                let base_setup = sh.exec_setup;
                let task = sh.pending.get_mut(&id.0).expect("placed task exists");
                task.state.advance(crate::states::TaskState::ExecSetup);
                let d = task.duration;
                let setup = base_setup.saturating_add(task.kind.launch_overhead());
                sh.profiler.task_started(&alloc, now);
                (d, setup)
            };
            let s = shared.clone();
            engine.schedule_in(setup.saturating_add(duration), move |eng| {
                s.borrow_mut()
                    .finish_task(id, &alloc, now, eng.now(), setup);
                Self::place_ready(&s, eng);
            });
        }
    }

    /// Binned CPU-occupancy series up to the current time (Fig. 4/5 data).
    pub fn cpu_series(&self, bin: SimDuration) -> Vec<f64> {
        self.shared.borrow().profiler.cpu_series(self.now(), bin)
    }

    /// Binned GPU slot-occupancy series up to the current time.
    pub fn gpu_slot_series(&self, bin: SimDuration) -> Vec<f64> {
        self.shared
            .borrow()
            .profiler
            .gpu_slot_series(self.now(), bin)
    }

    /// Binned GPU hardware-busy series up to the current time.
    pub fn gpu_hw_series(&self, bin: SimDuration) -> Vec<f64> {
        self.shared.borrow().profiler.gpu_hw_series(self.now(), bin)
    }

    /// Per-task records completed so far (cloned snapshot).
    pub fn task_records(&self) -> Vec<crate::profiler::TaskRecord> {
        self.shared.borrow().profiler.records().to_vec()
    }
}

impl ExecutionBackend for SimulatedBackend {
    fn submit(&mut self, desc: TaskDescription) -> TaskId {
        let id = TaskId(self.next_id);
        self.next_id += 1;
        let now = self.engine.now();
        {
            let mut sh = self.shared.borrow_mut();
            assert!(
                desc.request.fits_node(sh.scheduler.node()),
                "{id}: request {} can never fit the pilot's node",
                desc.request
            );
            let mut state = StateCell::new();
            state.advance(crate::states::TaskState::Scheduling);
            sh.pending.insert(
                id.0,
                PendingTask {
                    name: desc.name,
                    tag: desc.tag,
                    duration: desc.duration,
                    gpu_busy_fraction: desc.gpu_busy_fraction,
                    kind: desc.kind,
                    work: desc.work,
                    state,
                },
            );
            sh.profiler.task_submitted(id, now);
            sh.scheduler
                .enqueue_with_priority(id, desc.request, desc.priority);
            sh.in_flight += 1;
        }
        // Try placement via the queue so ordering with same-instant events
        // stays deterministic.
        let s = self.shared.clone();
        self.engine
            .schedule_at(now, move |eng| Self::place_ready(&s, eng));
        id
    }

    fn next_completion(&mut self) -> Option<Completion> {
        loop {
            if let Some(c) = self.shared.borrow_mut().completions.pop_front() {
                return Some(c);
            }
            if !self.engine.step() {
                return None;
            }
        }
    }

    fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn in_flight(&self) -> usize {
        self.shared.borrow().in_flight
    }

    fn utilization(&self) -> UtilizationReport {
        self.shared.borrow().profiler.report(self.now())
    }

    fn phase_breakdown(&self) -> PhaseBreakdown {
        self.shared.borrow().breakdown
    }

    fn cancel(&mut self, id: TaskId) -> bool {
        let mut sh = self.shared.borrow_mut();
        if !sh.scheduler.cancel_queued(id) {
            return false; // already placed, finished, or unknown
        }
        let mut task = sh.pending.remove(&id.0).expect("queued task has a record");
        task.state.advance(crate::states::TaskState::Canceled);
        sh.in_flight -= 1;
        sh.completions.push_back(Completion {
            task: id,
            name: task.name,
            tag: task.tag,
            result: Err(TaskError::Canceled),
            started: self.engine.now(),
            finished: self.engine.now(),
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{NodeSpec, ResourceRequest};
    use crate::scheduler::PlacementPolicy;

    fn config(cores: u32, gpus: u32) -> PilotConfig {
        PilotConfig {
            node: NodeSpec::new(cores, gpus, 64),
            nodes: 1,
            policy: PlacementPolicy::Backfill,
            bootstrap: SimDuration::from_secs(100),
            exec_setup_per_task: SimDuration::from_secs(10),
            seed: 0,
        }
    }

    fn task(name: &str, cores: u32, gpus: u32, secs: u64) -> TaskDescription {
        TaskDescription::new(
            name,
            ResourceRequest::with_gpus(cores, gpus),
            SimDuration::from_secs(secs),
        )
    }

    #[test]
    fn nothing_starts_before_bootstrap() {
        let mut b = SimulatedBackend::new(config(4, 0));
        b.submit(task("t", 1, 0, 50));
        let c = b.next_completion().unwrap();
        // bootstrap 100 + setup 10 + run 50
        assert_eq!(c.started, SimTime::from_micros(100_000_000));
        assert_eq!(c.finished, SimTime::from_micros(160_000_000));
    }

    #[test]
    fn independent_tasks_run_concurrently() {
        let mut b = SimulatedBackend::new(config(4, 0));
        for i in 0..4 {
            b.submit(task(&format!("t{i}"), 1, 0, 100));
        }
        let mut finishes = Vec::new();
        while let Some(c) = b.next_completion() {
            finishes.push(c.finished);
        }
        assert_eq!(finishes.len(), 4);
        // All four fit at once → all finish at the same virtual instant.
        assert!(finishes.iter().all(|&f| f == finishes[0]));
    }

    #[test]
    fn oversubscription_serializes() {
        let mut b = SimulatedBackend::new(config(1, 0));
        b.submit(task("a", 1, 0, 100));
        b.submit(task("b", 1, 0, 100));
        let c1 = b.next_completion().unwrap();
        let c2 = b.next_completion().unwrap();
        assert!(c2.started >= c1.finished, "second task must wait");
    }

    #[test]
    fn work_closures_run_and_outputs_flow_back() {
        let mut b = SimulatedBackend::new(config(2, 0));
        b.submit(task("compute", 1, 0, 10).with_work(|| vec![1u32, 2, 3]));
        let c = b.next_completion().unwrap();
        assert_eq!(c.output::<Vec<u32>>(), vec![1, 2, 3]);
    }

    #[test]
    fn panicking_work_reports_failure_and_frees_slots() {
        let mut b = SimulatedBackend::new(config(1, 0));
        b.submit(task("boom", 1, 0, 10).with_work(|| -> u32 { panic!("kaboom") }));
        b.submit(task("after", 1, 0, 10).with_work(|| 1u32));
        let c1 = b.next_completion().unwrap();
        match c1.result {
            Err(TaskError::WorkPanicked(msg)) => assert!(msg.contains("kaboom")),
            other => panic!("expected panic error, got {other:?}"),
        }
        // The slot must have been released so the next task completes.
        let c2 = b.next_completion().unwrap();
        assert!(c2.result.is_ok());
    }

    #[test]
    fn gpu_contention_is_respected() {
        let mut b = SimulatedBackend::new(config(8, 1));
        b.submit(task("g1", 1, 1, 100));
        b.submit(task("g2", 1, 1, 100));
        let c1 = b.next_completion().unwrap();
        let c2 = b.next_completion().unwrap();
        assert!(c2.started >= c1.finished, "single GPU must serialize");
    }

    #[test]
    fn utilization_report_reflects_load() {
        let mut b = SimulatedBackend::new(config(2, 0));
        b.submit(task("t", 2, 0, 1000));
        while b.next_completion().is_some() {}
        let r = b.utilization();
        // 1000s busy on both cores out of 1110s total → ~90%.
        assert!(r.cpu > 0.85 && r.cpu < 0.95, "cpu {}", r.cpu);
        assert_eq!(r.tasks, 1);
    }

    #[test]
    fn phase_breakdown_accounts_all_tasks() {
        let mut b = SimulatedBackend::new(config(4, 0));
        for _ in 0..3 {
            b.submit(task("t", 1, 0, 50));
        }
        while b.next_completion().is_some() {}
        let pb = b.phase_breakdown();
        assert_eq!(pb.tasks_executed, 3);
        assert_eq!(pb.bootstrap, SimDuration::from_secs(100));
        assert_eq!(pb.exec_setup_total, SimDuration::from_secs(30));
        assert_eq!(pb.running_total, SimDuration::from_secs(150));
    }

    #[test]
    fn adaptive_submission_after_completion_works() {
        // Submit a follow-up task from the driver loop after observing a
        // completion — the coordinator's core interaction pattern.
        let mut b = SimulatedBackend::new(config(2, 0));
        b.submit(task("first", 1, 0, 10).with_work(|| 1u32));
        let c = b.next_completion().unwrap();
        let v = c.output::<u32>();
        b.submit(task("second", 1, 0, 10).with_work(move || v + 1));
        let c2 = b.next_completion().unwrap();
        assert_eq!(c2.output::<u32>(), 2);
        assert!(b.next_completion().is_none());
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn multi_node_pilot_doubles_throughput() {
        let run = |nodes: u32| -> f64 {
            let mut b = SimulatedBackend::new(PilotConfig {
                nodes,
                ..config(4, 0)
            });
            for i in 0..8 {
                b.submit(task(&format!("t{i}"), 4, 0, 100));
            }
            while b.next_completion().is_some() {}
            b.now().as_secs_f64()
        };
        let one = run(1);
        let two = run(2);
        assert!(
            two < one * 0.65,
            "two nodes should nearly halve the makespan: {one}s → {two}s"
        );
    }

    #[test]
    fn queued_tasks_can_be_cancelled_running_ones_cannot() {
        let mut b = SimulatedBackend::new(config(1, 0));
        let _running = b.submit(task("running", 1, 0, 100));
        let queued = b.submit(task("queued", 1, 0, 100));
        // Both tasks are still pre-bootstrap; the second is queued behind
        // the first on the single core, so it is cancellable.
        assert!(b.cancel(queued), "queued task is cancellable");
        assert!(!b.cancel(queued), "double cancel is a no-op");
        let mut saw_cancelled = false;
        let mut saw_done = false;
        while let Some(c) = b.next_completion() {
            match c.result {
                Err(TaskError::Canceled) => {
                    assert_eq!(c.name, "queued");
                    saw_cancelled = true;
                }
                _ => saw_done = true,
            }
        }
        assert!(saw_cancelled && saw_done);
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn determinism_across_identical_runs() {
        let run = || -> Vec<(u64, u64)> {
            let mut b = SimulatedBackend::new(config(3, 1));
            for i in 0..6 {
                b.submit(task(&format!("t{i}"), 1 + (i % 2), i % 2, 40 + i as u64));
            }
            let mut log = Vec::new();
            while let Some(c) = b.next_completion() {
                log.push((c.task.0, c.finished.as_micros()));
            }
            log
        };
        assert_eq!(run(), run());
    }
}
