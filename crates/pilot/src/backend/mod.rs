//! Execution backends.
//!
//! One trait, three implementations:
//!
//! * [`SimulatedBackend`] — deterministic virtual time on the `impress-sim`
//!   engine. Tasks cost their declared [`crate::task::TaskDescription::duration`];
//!   work closures run at the completion instant. Every paper figure is
//!   regenerated on this backend, because the original experiments take
//!   27–38 wall-clock hours.
//! * [`ShardedBackend`] — the same virtual-time semantics on a sharded
//!   parallel-DES engine: typed events in flat storage, per-node-group
//!   event-queue shards advanced to a conservative lookahead horizon, an
//!   optional worker-thread drive mode. Bit-identical to the simulated
//!   backend (a 256-case differential test proves it) and the backend of
//!   choice for 10k-node campaign studies.
//! * [`ThreadedBackend`] — real threads, real work, the same slot
//!   semantics. Used by the examples and by tests that exercise actual
//!   concurrency. Virtual durations can optionally be dilated into real
//!   sleeps via a time-scale factor.
//!
//! The coordinator (in `impress-workflow`) drives any of them through
//! [`ExecutionBackend`], so protocol logic is backend-agnostic.

pub mod sharded;
pub mod simulated;
pub mod threaded;

pub use sharded::ShardedBackend;
pub use simulated::SimulatedBackend;
pub use threaded::ThreadedBackend;

use crate::pilot::PhaseBreakdown;
use crate::profiler::UtilizationReport;
use crate::task::{TaskDescription, TaskId, TaskOutput};
use impress_sim::{SimDuration, SimTime};
use std::fmt;

/// Message-kind discriminants for the control plane's idempotent dedup
/// set: a message identity is `(task, attempt, kind)`, so a retry verdict
/// and a completion report for the same attempt dedup independently. The
/// same constants key the seeded per-message RNG on both deterministic
/// engines, which is what keeps their delivery verdicts identical.
pub(crate) const MSG_DONE: u8 = 0;
pub(crate) const MSG_SUBMIT: u8 = 1;
pub(crate) const MSG_RETRY: u8 = 2;
pub(crate) const MSG_CANCEL: u8 = 3;
pub(crate) const MSG_HEDGE: u8 = 4;

/// The numeric message key for `(task, attempt)` traffic: attempts are
/// folded into the low byte so every attempt of a task gets a distinct
/// delivery verdict without colliding with other tasks' keys.
pub(crate) fn msg_key(task: u64, attempt: u32) -> u64 {
    (task << 8) | u64::from(attempt & 0xff)
}

/// Why a task did not complete successfully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The work closure panicked; the payload's message if it was a string.
    WorkPanicked(String),
    /// The task was cancelled before completion.
    Canceled,
    /// The task exceeded its walltime limit and was killed.
    TimedOut {
        /// The limit that was exceeded.
        limit: SimDuration,
    },
    /// An injected transient fault (models OOM kills, flaky filesystems).
    Injected,
    /// The node hosting the task crashed; delivered only when the retry
    /// budget is exhausted — crashes inside the budget requeue silently.
    NodeCrashed {
        /// The node that crashed.
        node: u32,
    },
    /// The attempt's lease expired: the failure detector suspected its
    /// node (heartbeats stopped arriving inside the timeout) and evicted
    /// the attempt so it could requeue elsewhere. Like a crash, delivered
    /// only when the retry budget is exhausted. A late completion from the
    /// old lease-holder is fenced out by the attempt's lease epoch, so an
    /// evicted attempt can never double-execute its effects.
    LeaseExpired {
        /// The suspected node that held the expired lease.
        node: u32,
    },
    /// The task was classified poisoned by the quarantine policy: its
    /// retryable attempts failed on this many *distinct* nodes, which
    /// rules out a node-local fault. Remaining retry budget is not spent.
    Poisoned {
        /// Distinct nodes the task failed on.
        distinct_nodes: u32,
    },
    /// The task was shed by an open per-shape quarantine circuit breaker:
    /// too many lineages of this `(cores, gpus)` shape class were already
    /// classified poisoned, so the backend fails the class fast instead of
    /// wedging the queue behind it.
    ShapeCircuitOpen {
        /// Cores in the shed shape class.
        cores: u32,
        /// GPUs in the shed shape class.
        gpus: u32,
    },
}

impl TaskError {
    /// Whether the pilot may transparently resubmit an attempt that failed
    /// this way: only failures striking *before* the work closure ran are
    /// retryable. A panicked closure is consumed and a deterministic panic
    /// would recur; a cancellation is a caller decision, not a fault; a
    /// poisoned or circuit-broken task is quarantined precisely so it is
    /// *not* retried.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            TaskError::TimedOut { .. }
                | TaskError::Injected
                | TaskError::NodeCrashed { .. }
                | TaskError::LeaseExpired { .. }
        )
    }

    /// Whether the quarantine layer produced this error (poison verdict or
    /// shape circuit breaker) — the campaign should prune the lineage.
    pub fn is_quarantined(&self) -> bool {
        matches!(
            self,
            TaskError::Poisoned { .. } | TaskError::ShapeCircuitOpen { .. }
        )
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::WorkPanicked(msg) => write!(f, "task work panicked: {msg}"),
            TaskError::Canceled => write!(f, "task canceled"),
            TaskError::TimedOut { limit } => {
                write!(f, "task exceeded its walltime limit of {limit}")
            }
            TaskError::Injected => write!(f, "task hit an injected transient fault"),
            TaskError::NodeCrashed { node } => {
                write!(f, "node {node} crashed while hosting the task")
            }
            TaskError::LeaseExpired { node } => {
                write!(f, "attempt's lease on suspected node {node} expired")
            }
            TaskError::Poisoned { distinct_nodes } => {
                write!(f, "task quarantined as poisoned after failing on {distinct_nodes} distinct nodes")
            }
            TaskError::ShapeCircuitOpen { cores, gpus } => {
                write!(f, "shape class {cores}c/{gpus}g shed by an open quarantine circuit breaker")
            }
        }
    }
}

impl std::error::Error for TaskError {}

/// Delivered when a task reaches a terminal state.
pub struct Completion {
    /// The task.
    pub task: TaskId,
    /// Task name (copied from the description).
    pub name: String,
    /// Bookkeeping tag.
    pub tag: String,
    /// The work closure's output (`Ok(None)` for tasks without work), or
    /// the failure reason.
    pub result: Result<Option<TaskOutput>, TaskError>,
    /// When slots were granted.
    pub started: SimTime,
    /// When slots were released.
    pub finished: SimTime,
    /// How many failed attempts preceded this terminal result (0 = the
    /// first attempt concluded the task; fault-free runs always report 0).
    pub attempts: u32,
    /// Whether a hedged speculative duplicate was placed for this task at
    /// any point (regardless of which attempt won). The loser's occupancy
    /// is booked in [`UtilizationReport::hedge_wasted_core_seconds`],
    /// separately from retry waste. Hedging-off runs always report
    /// `false`.
    pub hedged: bool,
}

impl Completion {
    /// Downcast the work output to its concrete type. Panics with a clear
    /// message on failure/missing output — stage plumbing bugs should be
    /// loud.
    pub fn output<T: 'static>(self) -> T {
        match self.result {
            Ok(Some(out)) => *out
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("{}: output has unexpected type", self.task)),
            Ok(None) => panic!("{}: task had no work output", self.task),
            Err(e) => panic!("{}: task failed: {e}", self.task),
        }
    }

    /// Borrow the work output without consuming the completion — for
    /// consumers that share one completion between several dependents
    /// (e.g. DAG fan-out). Panics like [`Completion::output`] on
    /// failure/missing/mistyped output.
    pub fn peek<T: 'static>(&self) -> &T {
        match &self.result {
            Ok(Some(out)) => out
                .downcast_ref::<T>()
                .unwrap_or_else(|| panic!("{}: output has unexpected type", self.task)),
            Ok(None) => panic!("{}: task had no work output", self.task),
            Err(e) => panic!("{}: task failed: {e}", self.task),
        }
    }

    /// Downcast the work output, surfacing task failure as an `Err` instead
    /// of a panic — the accessor for layers with retry/abort logic of their
    /// own. A *successful* completion with missing or mistyped output still
    /// panics: that is a stage-plumbing bug, not a runtime fault.
    pub fn try_output<T: 'static>(self) -> Result<T, TaskError> {
        match self.result {
            Ok(Some(out)) => Ok(*out
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("{}: output has unexpected type", self.task))),
            Ok(None) => panic!("{}: task had no work output", self.task),
            Err(e) => Err(e),
        }
    }

    /// Borrowing variant of [`Completion::try_output`].
    pub fn try_peek<T: 'static>(&self) -> Result<&T, &TaskError> {
        match &self.result {
            Ok(Some(out)) => Ok(out
                .downcast_ref::<T>()
                .unwrap_or_else(|| panic!("{}: output has unexpected type", self.task))),
            Ok(None) => panic!("{}: task had no work output", self.task),
            Err(e) => Err(e),
        }
    }

    /// The failure reason, if the task failed.
    pub fn failure(&self) -> Option<&TaskError> {
        self.result.as_ref().err()
    }
}

impl fmt::Debug for Completion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Completion")
            .field("task", &self.task)
            .field("name", &self.name)
            .field("ok", &self.result.is_ok())
            .field("started", &self.started.to_string())
            .field("finished", &self.finished.to_string())
            .finish()
    }
}

/// A pilot execution backend.
pub trait ExecutionBackend {
    /// Submit a task; returns its id immediately.
    fn submit(&mut self, desc: TaskDescription) -> TaskId;

    /// Deliver the next completion, advancing (virtual or real) time as
    /// needed. Returns `None` when no submitted task remains unfinished.
    fn next_completion(&mut self) -> Option<Completion>;

    /// Current backend time.
    fn now(&self) -> SimTime;

    /// Tasks submitted but not yet completed.
    fn in_flight(&self) -> usize;

    /// Utilization report up to the current time.
    fn utilization(&self) -> UtilizationReport;

    /// Pilot phase breakdown so far.
    fn phase_breakdown(&self) -> PhaseBreakdown;

    /// Best-effort cancellation of a task that has not *committed* to
    /// running its work. On success a completion with
    /// [`TaskError::Canceled`] is delivered through the normal stream, and
    /// a `true` acknowledgement guarantees the task's work closure will
    /// never produce an `Ok` completion. Returns `false` if the task
    /// already committed, finished, is unknown, or (best-effort) is
    /// waiting out a retry backoff.
    fn cancel(&mut self, _id: TaskId) -> bool {
        false
    }

    /// Preempt a *running* attempt of `id`: evict it from its node and
    /// requeue the task through the same requeue transition a node crash
    /// uses (`Executing → Scheduling`), without consuming retry budget.
    /// The evicted attempt's occupancy is booked as waste, its lease epoch
    /// is bumped so any late completion report is fenced out, and the task
    /// re-enters the priority queue to be placed again — typically after
    /// higher-priority work. Returns `false` if the task is not currently
    /// running (queued, held, finished, unknown) or the backend does not
    /// support preemption (the default).
    fn preempt(&mut self, _id: TaskId) -> bool {
        false
    }

    /// Tasks the backend is holding back because its walltime deadline
    /// leaves too little allocation for their modeled duration. Held tasks
    /// count as [`in_flight`](Self::in_flight) but will never launch;
    /// [`next_completion`](Self::next_completion) returns `None` once only
    /// held tasks remain, signalling a graceful drain. Backends without a
    /// deadline hold nothing.
    fn held_tasks(&self) -> usize {
        0
    }

    /// Deliver a completion that is *already available* without advancing
    /// time or waiting, or `None` if making progress would require a
    /// [`next_completion`](Self::next_completion) wait. Multiplexing
    /// drivers (the multi-tenant campaign service) use this to step every
    /// consumer that can make progress at the current instant before
    /// letting anyone advance the shared clock. The default — `None`
    /// always — is correct for exclusively-owned backends, whose callers
    /// have nobody to yield to and simply wait.
    fn poll_completion(&mut self) -> Option<Completion> {
        None
    }

    /// The backend's telemetry handle (disabled by default). Layers above
    /// the backend — session, coordinator — record their spans through
    /// this, so one [`crate::RuntimeConfig::telemetry`] hookup instruments
    /// the whole stack.
    fn telemetry(&self) -> &impress_telemetry::Telemetry {
        impress_telemetry::disabled_ref()
    }

    /// Current *virtual* time. Identical to [`now`](Self::now) on backends
    /// whose clock is already virtual (the simulated backend). The
    /// threaded backend — whose `now` is wall-clock — overrides this with
    /// its model-derived virtual watermark: the latest virtual completion
    /// time it has delivered.
    fn virtual_now(&self) -> SimTime {
        self.now()
    }

    /// A dual-clock telemetry stamp for "here and now": virtual time from
    /// [`virtual_now`](Self::virtual_now), plus wall-clock micros on
    /// backends that have a wall clock.
    fn stamp(&self) -> impress_telemetry::Stamp {
        impress_telemetry::Stamp::virt(self.virtual_now())
    }

    /// Control-plane resilience counters: heartbeats, suspicions, lease
    /// expiries, fenced completions, dedup hits. All-zero on backends
    /// without a control plane or with link faults disabled.
    fn control_stats(&self) -> crate::control::ControlStats {
        crate::control::ControlStats::default()
    }
}

impl ExecutionBackend for Box<dyn ExecutionBackend> {
    fn submit(&mut self, desc: TaskDescription) -> TaskId {
        (**self).submit(desc)
    }
    fn next_completion(&mut self) -> Option<Completion> {
        (**self).next_completion()
    }
    fn now(&self) -> SimTime {
        (**self).now()
    }
    fn in_flight(&self) -> usize {
        (**self).in_flight()
    }
    fn utilization(&self) -> UtilizationReport {
        (**self).utilization()
    }
    fn phase_breakdown(&self) -> PhaseBreakdown {
        (**self).phase_breakdown()
    }
    fn cancel(&mut self, id: TaskId) -> bool {
        (**self).cancel(id)
    }
    fn preempt(&mut self, id: TaskId) -> bool {
        (**self).preempt(id)
    }
    fn held_tasks(&self) -> usize {
        (**self).held_tasks()
    }
    fn poll_completion(&mut self) -> Option<Completion> {
        (**self).poll_completion()
    }
    fn telemetry(&self) -> &impress_telemetry::Telemetry {
        (**self).telemetry()
    }
    fn virtual_now(&self) -> SimTime {
        (**self).virtual_now()
    }
    fn stamp(&self) -> impress_telemetry::Stamp {
        (**self).stamp()
    }
    fn control_stats(&self) -> crate::control::ControlStats {
        (**self).control_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_output_downcasts() {
        let c = Completion {
            task: TaskId(1),
            name: "t".into(),
            tag: String::new(),
            result: Ok(Some(Box::new(7u32))),
            started: SimTime::ZERO,
            finished: SimTime::ZERO,
            attempts: 0,
            hedged: false,
        };
        assert_eq!(c.output::<u32>(), 7);
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn wrong_downcast_panics_loudly() {
        let c = Completion {
            task: TaskId(1),
            name: "t".into(),
            tag: String::new(),
            result: Ok(Some(Box::new(7u32))),
            started: SimTime::ZERO,
            finished: SimTime::ZERO,
            attempts: 0,
            hedged: false,
        };
        let _ = c.output::<String>();
    }

    #[test]
    fn peek_borrows_without_consuming() {
        let c = Completion {
            task: TaskId(2),
            name: "t".into(),
            tag: String::new(),
            result: Ok(Some(Box::new(vec![1u8, 2, 3]))),
            started: SimTime::ZERO,
            finished: SimTime::ZERO,
            attempts: 0,
            hedged: false,
        };
        assert_eq!(c.peek::<Vec<u8>>().len(), 3);
        assert_eq!(c.peek::<Vec<u8>>()[0], 1, "still available");
        assert_eq!(c.output::<Vec<u8>>(), vec![1, 2, 3]);
    }

    #[test]
    fn task_error_displays() {
        assert_eq!(
            TaskError::WorkPanicked("boom".into()).to_string(),
            "task work panicked: boom"
        );
        assert_eq!(TaskError::Canceled.to_string(), "task canceled");
        assert_eq!(
            TaskError::TimedOut {
                limit: SimDuration::from_secs(90)
            }
            .to_string(),
            "task exceeded its walltime limit of 1.50m"
        );
        assert_eq!(
            TaskError::NodeCrashed { node: 3 }.to_string(),
            "node 3 crashed while hosting the task"
        );
        assert_eq!(
            TaskError::LeaseExpired { node: 5 }.to_string(),
            "attempt's lease on suspected node 5 expired"
        );
        assert_eq!(
            TaskError::Poisoned { distinct_nodes: 3 }.to_string(),
            "task quarantined as poisoned after failing on 3 distinct nodes"
        );
        assert_eq!(
            TaskError::ShapeCircuitOpen { cores: 4, gpus: 1 }.to_string(),
            "shape class 4c/1g shed by an open quarantine circuit breaker"
        );
    }

    #[test]
    fn only_pre_work_failures_are_retryable() {
        assert!(TaskError::Injected.is_retryable());
        assert!(TaskError::TimedOut {
            limit: SimDuration::ZERO
        }
        .is_retryable());
        assert!(TaskError::NodeCrashed { node: 0 }.is_retryable());
        assert!(TaskError::LeaseExpired { node: 0 }.is_retryable());
        assert!(!TaskError::LeaseExpired { node: 0 }.is_quarantined());
        assert!(!TaskError::WorkPanicked("boom".into()).is_retryable());
        assert!(!TaskError::Canceled.is_retryable());
        assert!(!TaskError::Poisoned { distinct_nodes: 3 }.is_retryable());
        assert!(!TaskError::ShapeCircuitOpen { cores: 1, gpus: 0 }.is_retryable());
        assert!(TaskError::Poisoned { distinct_nodes: 3 }.is_quarantined());
        assert!(TaskError::ShapeCircuitOpen { cores: 1, gpus: 0 }.is_quarantined());
        assert!(!TaskError::Injected.is_quarantined());
    }

    #[test]
    fn try_output_surfaces_failure_without_panicking() {
        let ok = Completion {
            task: TaskId(1),
            name: "t".into(),
            tag: String::new(),
            result: Ok(Some(Box::new(11u32))),
            started: SimTime::ZERO,
            finished: SimTime::ZERO,
            attempts: 2,
            hedged: false,
        };
        assert_eq!(ok.try_peek::<u32>(), Ok(&11));
        assert!(ok.failure().is_none());
        assert_eq!(ok.try_output::<u32>(), Ok(11));

        let failed = Completion {
            task: TaskId(2),
            name: "t".into(),
            tag: String::new(),
            result: Err(TaskError::Injected),
            started: SimTime::ZERO,
            finished: SimTime::ZERO,
            attempts: 0,
            hedged: false,
        };
        assert_eq!(failed.try_peek::<u32>(), Err(&TaskError::Injected));
        assert_eq!(failed.failure(), Some(&TaskError::Injected));
        assert_eq!(failed.try_output::<u32>(), Err(TaskError::Injected));
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn try_output_still_panics_on_plumbing_bugs() {
        let c = Completion {
            task: TaskId(1),
            name: "t".into(),
            tag: String::new(),
            result: Ok(Some(Box::new(7u32))),
            started: SimTime::ZERO,
            finished: SimTime::ZERO,
            attempts: 0,
            hedged: false,
        };
        let _ = c.try_output::<String>();
    }
}
