//! Execution backends.
//!
//! One trait, two implementations:
//!
//! * [`SimulatedBackend`] — deterministic virtual time on the `impress-sim`
//!   engine. Tasks cost their declared [`crate::task::TaskDescription::duration`];
//!   work closures run at the completion instant. Every paper figure is
//!   regenerated on this backend, because the original experiments take
//!   27–38 wall-clock hours.
//! * [`ThreadedBackend`] — real threads, real work, the same slot
//!   semantics. Used by the examples and by tests that exercise actual
//!   concurrency. Virtual durations can optionally be dilated into real
//!   sleeps via a time-scale factor.
//!
//! The coordinator (in `impress-workflow`) drives either through
//! [`ExecutionBackend`], so protocol logic is backend-agnostic.

pub mod simulated;
pub mod threaded;

pub use simulated::SimulatedBackend;
pub use threaded::ThreadedBackend;

use crate::pilot::PhaseBreakdown;
use crate::profiler::UtilizationReport;
use crate::task::{TaskDescription, TaskId, TaskOutput};
use impress_sim::SimTime;
use std::fmt;

/// Why a task did not complete successfully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The work closure panicked; the payload's message if it was a string.
    WorkPanicked(String),
    /// The task was cancelled before completion.
    Canceled,
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::WorkPanicked(msg) => write!(f, "task work panicked: {msg}"),
            TaskError::Canceled => write!(f, "task canceled"),
        }
    }
}

impl std::error::Error for TaskError {}

/// Delivered when a task reaches a terminal state.
pub struct Completion {
    /// The task.
    pub task: TaskId,
    /// Task name (copied from the description).
    pub name: String,
    /// Bookkeeping tag.
    pub tag: String,
    /// The work closure's output (`Ok(None)` for tasks without work), or
    /// the failure reason.
    pub result: Result<Option<TaskOutput>, TaskError>,
    /// When slots were granted.
    pub started: SimTime,
    /// When slots were released.
    pub finished: SimTime,
}

impl Completion {
    /// Downcast the work output to its concrete type. Panics with a clear
    /// message on failure/missing output — stage plumbing bugs should be
    /// loud.
    pub fn output<T: 'static>(self) -> T {
        match self.result {
            Ok(Some(out)) => *out
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("{}: output has unexpected type", self.task)),
            Ok(None) => panic!("{}: task had no work output", self.task),
            Err(e) => panic!("{}: task failed: {e}", self.task),
        }
    }

    /// Borrow the work output without consuming the completion — for
    /// consumers that share one completion between several dependents
    /// (e.g. DAG fan-out). Panics like [`Completion::output`] on
    /// failure/missing/mistyped output.
    pub fn peek<T: 'static>(&self) -> &T {
        match &self.result {
            Ok(Some(out)) => out
                .downcast_ref::<T>()
                .unwrap_or_else(|| panic!("{}: output has unexpected type", self.task)),
            Ok(None) => panic!("{}: task had no work output", self.task),
            Err(e) => panic!("{}: task failed: {e}", self.task),
        }
    }
}

impl fmt::Debug for Completion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Completion")
            .field("task", &self.task)
            .field("name", &self.name)
            .field("ok", &self.result.is_ok())
            .field("started", &self.started.to_string())
            .field("finished", &self.finished.to_string())
            .finish()
    }
}

/// A pilot execution backend.
pub trait ExecutionBackend {
    /// Submit a task; returns its id immediately.
    fn submit(&mut self, desc: TaskDescription) -> TaskId;

    /// Deliver the next completion, advancing (virtual or real) time as
    /// needed. Returns `None` when no submitted task remains unfinished.
    fn next_completion(&mut self) -> Option<Completion>;

    /// Current backend time.
    fn now(&self) -> SimTime;

    /// Tasks submitted but not yet completed.
    fn in_flight(&self) -> usize;

    /// Utilization report up to the current time.
    fn utilization(&self) -> UtilizationReport;

    /// Pilot phase breakdown so far.
    fn phase_breakdown(&self) -> PhaseBreakdown;

    /// Best-effort cancellation of a *queued* task (running tasks always
    /// finish — tasks here are opaque closures that cannot be interrupted
    /// safely). On success a completion with
    /// [`TaskError::Canceled`] is delivered through the normal stream.
    /// Returns `false` if the task already started, finished, or is
    /// unknown; the threaded backend processes the request asynchronously
    /// and may return `true` for a task that wins the race and runs anyway.
    fn cancel(&mut self, _id: TaskId) -> bool {
        false
    }
}

impl ExecutionBackend for Box<dyn ExecutionBackend> {
    fn submit(&mut self, desc: TaskDescription) -> TaskId {
        (**self).submit(desc)
    }
    fn next_completion(&mut self) -> Option<Completion> {
        (**self).next_completion()
    }
    fn now(&self) -> SimTime {
        (**self).now()
    }
    fn in_flight(&self) -> usize {
        (**self).in_flight()
    }
    fn utilization(&self) -> UtilizationReport {
        (**self).utilization()
    }
    fn phase_breakdown(&self) -> PhaseBreakdown {
        (**self).phase_breakdown()
    }
    fn cancel(&mut self, id: TaskId) -> bool {
        (**self).cancel(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_output_downcasts() {
        let c = Completion {
            task: TaskId(1),
            name: "t".into(),
            tag: String::new(),
            result: Ok(Some(Box::new(7u32))),
            started: SimTime::ZERO,
            finished: SimTime::ZERO,
        };
        assert_eq!(c.output::<u32>(), 7);
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn wrong_downcast_panics_loudly() {
        let c = Completion {
            task: TaskId(1),
            name: "t".into(),
            tag: String::new(),
            result: Ok(Some(Box::new(7u32))),
            started: SimTime::ZERO,
            finished: SimTime::ZERO,
        };
        let _ = c.output::<String>();
    }

    #[test]
    fn peek_borrows_without_consuming() {
        let c = Completion {
            task: TaskId(2),
            name: "t".into(),
            tag: String::new(),
            result: Ok(Some(Box::new(vec![1u8, 2, 3]))),
            started: SimTime::ZERO,
            finished: SimTime::ZERO,
        };
        assert_eq!(c.peek::<Vec<u8>>().len(), 3);
        assert_eq!(c.peek::<Vec<u8>>()[0], 1, "still available");
        assert_eq!(c.output::<Vec<u8>>(), vec![1, 2, 3]);
    }

    #[test]
    fn task_error_displays() {
        assert_eq!(
            TaskError::WorkPanicked("boom".into()).to_string(),
            "task work panicked: boom"
        );
        assert_eq!(TaskError::Canceled.to_string(), "task canceled");
    }
}
