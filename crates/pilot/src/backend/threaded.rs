//! The real-thread backend.
//!
//! Executes task work closures on actual OS threads while enforcing the same
//! slot semantics as the simulated backend: a task holding `n` cores and `g`
//! GPUs blocks other tasks from those devices until it finishes. Used by the
//! examples (live runs at natural speed) and by concurrency tests.
//!
//! Virtual durations can be dilated into real sleeps with
//! [`ThreadedBackend::with_time_scale`] — e.g. a scale of `1e-4` replays a
//! 28-hour CONT-V run in about ten real seconds with faithful overlap
//! structure. The default scale of `0.0` skips sleeping entirely and runs
//! work closures back-to-back.
//!
//! Architecture: one scheduler thread owns the [`Scheduler`] and the
//! [`Profiler`]; submissions and worker-done messages arrive on a channel
//! (the in-repo [`crate::sync`] Mutex+Condvar channel — no external
//! dependency); each placed task runs on its own spawned thread. Completion
//! order is whatever real concurrency produces — determinism is the
//! simulated backend's job.

use crate::backend::{Completion, ExecutionBackend, TaskError};
use crate::pilot::{PhaseBreakdown, PilotConfig};
use crate::profiler::{Profiler, UtilizationReport};
use crate::resources::Allocation;
use crate::scheduler::Scheduler;
use crate::sync::{channel, Receiver, RecvTimeoutError, Sender};
use crate::task::{TaskDescription, TaskId, TaskOutput, TaskWork};
use impress_sim::{SimDuration, SimTime};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

enum Msg {
    Submit {
        id: TaskId,
        name: String,
        tag: String,
        request: crate::resources::ResourceRequest,
        priority: i32,
        duration: SimDuration,
        gpu_busy_fraction: f64,
        work: Option<TaskWork>,
    },
    WorkerDone {
        id: TaskId,
        alloc: Allocation,
        started: SimTime,
        name: String,
        tag: String,
        gpu_busy_fraction: f64,
        result: Result<Option<TaskOutput>, TaskError>,
    },
    Cancel {
        id: TaskId,
    },
    Shutdown,
}

struct SchedState {
    profiler: Profiler,
    breakdown: PhaseBreakdown,
}

/// The real-thread pilot backend.
pub struct ThreadedBackend {
    tx: Sender<Msg>,
    completion_rx: Receiver<Completion>,
    state: Arc<Mutex<SchedState>>,
    unfinished: Arc<AtomicUsize>,
    epoch: Instant,
    next_id: u64,
    scheduler_thread: Option<std::thread::JoinHandle<()>>,
    node: crate::resources::NodeSpec,
}

impl ThreadedBackend {
    /// Start a pilot over real threads. `config.bootstrap` and per-task
    /// exec setup are honored only when a time scale is set.
    pub fn new(config: PilotConfig) -> Self {
        Self::with_time_scale(config, 0.0)
    }

    /// Start with virtual durations dilated by `time_scale` into real
    /// sleeps (`0.0` = no sleeping).
    pub fn with_time_scale(config: PilotConfig, time_scale: f64) -> Self {
        let (tx, rx) = channel::<Msg>();
        let (completion_tx, completion_rx) = channel::<Completion>();
        let state = Arc::new(Mutex::new(SchedState {
            profiler: Profiler::new_cluster(config.node.cores, config.node.gpus, config.nodes),
            breakdown: PhaseBreakdown {
                bootstrap: if time_scale > 0.0 {
                    config.bootstrap
                } else {
                    SimDuration::ZERO
                },
                ..Default::default()
            },
        }));
        let unfinished = Arc::new(AtomicUsize::new(0));
        let epoch = Instant::now();

        let thread_state = state.clone();
        let thread_unfinished = unfinished.clone();
        let worker_tx = tx.clone();
        let node = config.node;
        let scheduler_thread = std::thread::Builder::new()
            .name("pilot-scheduler".into())
            .spawn(move || {
                if time_scale > 0.0 {
                    std::thread::sleep(Duration::from_secs_f64(
                        config.bootstrap.as_secs_f64() * time_scale,
                    ));
                }
                let mut scheduler = Scheduler::new_cluster(
                    crate::resources::ClusterSpec::homogeneous(node, config.nodes),
                    config.policy,
                );
                let mut waiting: std::collections::HashMap<u64, Msg> =
                    std::collections::HashMap::new();
                let now = |epoch: Instant| -> SimTime {
                    SimTime::from_micros(epoch.elapsed().as_micros() as u64)
                };
                loop {
                    let msg = match rx.recv() {
                        Ok(m) => m,
                        Err(_) => break,
                    };
                    match msg {
                        Msg::Shutdown => break,
                        Msg::Cancel { id } => {
                            // Only effective while the task is still queued.
                            if scheduler.cancel_queued(id) {
                                let msg = waiting.remove(&id.0).expect("queued task waits");
                                let (name, tag) = match msg {
                                    Msg::Submit { name, tag, .. } => (name, tag),
                                    _ => unreachable!("waiting map only holds submits"),
                                };
                                let at = now(epoch);
                                let _ = completion_tx.send(Completion {
                                    task: id,
                                    name,
                                    tag,
                                    result: Err(TaskError::Canceled),
                                    started: at,
                                    finished: at,
                                });
                                thread_unfinished.fetch_sub(1, Ordering::SeqCst);
                            }
                        }
                        Msg::Submit {
                            id,
                            request,
                            priority,
                            ..
                        } => {
                            thread_state.lock().expect("state lock").profiler.task_submitted(id, now(epoch));
                            scheduler.enqueue_with_priority(id, request, priority);
                            waiting.insert(id.0, msg_keep(msg));
                        }
                        Msg::WorkerDone {
                            id,
                            alloc,
                            started,
                            name,
                            tag,
                            gpu_busy_fraction,
                            result,
                        } => {
                            let finished = now(epoch);
                            {
                                let mut st = thread_state.lock().expect("state lock");
                                st.profiler.task_finished(
                                    id,
                                    &name,
                                    &tag,
                                    &alloc,
                                    started,
                                    finished,
                                    gpu_busy_fraction,
                                );
                                st.breakdown
                                    .record_task(SimDuration::ZERO, finished.since(started));
                            }
                            scheduler.release(&alloc);
                            let _ = completion_tx.send(Completion {
                                task: id,
                                name,
                                tag,
                                result,
                                started,
                                finished,
                            });
                            thread_unfinished.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    // Place everything that fits now.
                    for (id, alloc) in scheduler.place_ready() {
                        let msg = waiting.remove(&id.0).expect("placed task was submitted");
                        let (name, tag, duration, gpu_busy_fraction, work) = match msg {
                            Msg::Submit {
                                name,
                                tag,
                                duration,
                                gpu_busy_fraction,
                                work,
                                ..
                            } => (name, tag, duration, gpu_busy_fraction, work),
                            _ => unreachable!("waiting map only holds submits"),
                        };
                        let started = now(epoch);
                        thread_state.lock().expect("state lock").profiler.task_started(&alloc, started);
                        let done_tx = worker_tx.clone();
                        std::thread::Builder::new()
                            .name(format!("pilot-worker-{}", id.0))
                            .spawn(move || {
                                if time_scale > 0.0 {
                                    std::thread::sleep(Duration::from_secs_f64(
                                        duration.as_secs_f64() * time_scale,
                                    ));
                                }
                                let result = match work {
                                    Some(w) => match catch_unwind(AssertUnwindSafe(w)) {
                                        Ok(out) => Ok(Some(out)),
                                        Err(payload) => {
                                            let msg = payload
                                                .downcast_ref::<&str>()
                                                .map(|s| s.to_string())
                                                .or_else(|| {
                                                    payload.downcast_ref::<String>().cloned()
                                                })
                                                .unwrap_or_else(|| {
                                                    "<non-string panic>".to_string()
                                                });
                                            Err(TaskError::WorkPanicked(msg))
                                        }
                                    },
                                    None => Ok(None),
                                };
                                let _ = done_tx.send(Msg::WorkerDone {
                                    id,
                                    alloc,
                                    started,
                                    name,
                                    tag,
                                    gpu_busy_fraction,
                                    result,
                                });
                            })
                            .expect("spawn worker thread");
                    }
                }
            })
            .expect("spawn scheduler thread");

        ThreadedBackend {
            tx,
            completion_rx,
            state,
            unfinished,
            epoch,
            next_id: 0,
            scheduler_thread: Some(scheduler_thread),
            node,
        }
    }

    /// The node this backend schedules over.
    pub fn node(&self) -> &crate::resources::NodeSpec {
        &self.node
    }
}

/// Helper to move a `Submit` back into storage (identity; avoids a partial
/// destructure in the match arm above).
fn msg_keep(msg: Msg) -> Msg {
    msg
}

impl ExecutionBackend for ThreadedBackend {
    fn submit(&mut self, desc: TaskDescription) -> TaskId {
        assert!(
            desc.request.fits_node(&self.node),
            "request {} can never fit node {}",
            desc.request,
            self.node
        );
        let id = TaskId(self.next_id);
        self.next_id += 1;
        self.unfinished.fetch_add(1, Ordering::SeqCst);
        self.tx
            .send(Msg::Submit {
                id,
                name: desc.name,
                tag: desc.tag,
                request: desc.request,
                priority: desc.priority,
                duration: desc.duration,
                gpu_busy_fraction: desc.gpu_busy_fraction,
                work: desc.work,
            })
            .expect("scheduler thread alive");
        id
    }

    fn next_completion(&mut self) -> Option<Completion> {
        loop {
            if let Ok(c) = self.completion_rx.try_recv() {
                return Some(c);
            }
            if self.unfinished.load(Ordering::SeqCst) == 0 {
                return None;
            }
            match self.completion_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(c) => return Some(c),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn in_flight(&self) -> usize {
        self.unfinished.load(Ordering::SeqCst)
    }

    fn utilization(&self) -> UtilizationReport {
        self.state.lock().expect("state lock").profiler.report(self.now())
    }

    fn phase_breakdown(&self) -> PhaseBreakdown {
        self.state.lock().expect("state lock").breakdown
    }

    fn cancel(&mut self, id: TaskId) -> bool {
        // Best effort: the scheduler thread applies the cancel if the task
        // is still queued when the message arrives.
        self.tx.send(Msg::Cancel { id }).is_ok()
    }
}

impl Drop for ThreadedBackend {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(handle) = self.scheduler_thread.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{NodeSpec, ResourceRequest};
    use crate::scheduler::PlacementPolicy;

    fn config(cores: u32, gpus: u32) -> PilotConfig {
        PilotConfig {
            node: NodeSpec::new(cores, gpus, 64),
            nodes: 1,
            policy: PlacementPolicy::Backfill,
            bootstrap: SimDuration::from_secs(1),
            exec_setup_per_task: SimDuration::ZERO,
            seed: 0,
        }
    }

    fn task(name: &str, cores: u32) -> TaskDescription {
        TaskDescription::new(
            name,
            ResourceRequest::cores(cores),
            SimDuration::from_secs(1),
        )
    }

    #[test]
    fn work_actually_executes_and_returns() {
        let mut b = ThreadedBackend::new(config(2, 0));
        b.submit(task("t", 1).with_work(|| 6 * 7));
        let c = b.next_completion().unwrap();
        assert_eq!(c.output::<i32>(), 42);
        assert!(b.next_completion().is_none());
    }

    #[test]
    fn all_submissions_complete() {
        let mut b = ThreadedBackend::new(config(4, 0));
        for i in 0..20u64 {
            b.submit(task(&format!("t{i}"), 1).with_work(move || i * 2));
        }
        let mut outs: Vec<u64> = Vec::new();
        while let Some(c) = b.next_completion() {
            outs.push(c.output::<u64>());
        }
        outs.sort_unstable();
        assert_eq!(outs, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn concurrency_is_real() {
        // Two 1-core tasks on a 2-core node, each sleeping 200ms, should
        // overlap: total elapsed well under 400ms.
        let mut b = ThreadedBackend::new(config(2, 0));
        let t0 = Instant::now();
        for _ in 0..2 {
            b.submit(task("sleep", 1).with_work(|| {
                std::thread::sleep(Duration::from_millis(200));
            }));
        }
        while b.next_completion().is_some() {}
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(380),
            "tasks did not overlap: {elapsed:?}"
        );
    }

    #[test]
    fn slot_limits_are_enforced() {
        // Two 1-core sleep tasks on a ONE-core node must serialize.
        let mut b = ThreadedBackend::new(config(1, 0));
        let t0 = Instant::now();
        for _ in 0..2 {
            b.submit(task("sleep", 1).with_work(|| {
                std::thread::sleep(Duration::from_millis(150));
            }));
        }
        while b.next_completion().is_some() {}
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(290),
            "tasks overlapped on one core: {elapsed:?}"
        );
    }

    #[test]
    fn panicking_task_does_not_poison_the_backend() {
        let mut b = ThreadedBackend::new(config(1, 0));
        b.submit(task("boom", 1).with_work(|| -> i32 { panic!("threaded kaboom") }));
        b.submit(task("ok", 1).with_work(|| 5i32));
        let mut saw_err = false;
        let mut saw_ok = false;
        while let Some(c) = b.next_completion() {
            match c.result {
                Err(TaskError::WorkPanicked(ref m)) => {
                    assert!(m.contains("threaded kaboom"));
                    saw_err = true;
                }
                Ok(_) => saw_ok = true,
                Err(ref e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_err && saw_ok);
    }

    #[test]
    fn time_scale_dilates_durations() {
        let cfg = PilotConfig {
            bootstrap: SimDuration::from_secs(1),
            ..config(1, 0)
        };
        let mut b = ThreadedBackend::with_time_scale(cfg, 0.05);
        let t0 = Instant::now();
        b.submit(TaskDescription::new(
            "timed",
            ResourceRequest::cores(1),
            SimDuration::from_secs(2),
        ));
        while b.next_completion().is_some() {}
        // bootstrap 1s + task 2s at 5% scale ≈ 150ms.
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(120), "{elapsed:?}");
        assert!(elapsed < Duration::from_millis(600), "{elapsed:?}");
    }

    #[test]
    fn cancel_of_queued_task_delivers_cancelled_completion() {
        // One core: first task occupies it (sleeping), second queues.
        let mut b = ThreadedBackend::new(config(1, 0));
        b.submit(task("holder", 1).with_work(|| {
            std::thread::sleep(Duration::from_millis(150));
        }));
        // Give the scheduler a moment to place the holder.
        std::thread::sleep(Duration::from_millis(30));
        let queued = b.submit(task("victim", 1).with_work(|| ()));
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.cancel(queued));
        let mut cancelled = 0;
        let mut finished = 0;
        while let Some(c) = b.next_completion() {
            match c.result {
                Err(TaskError::Canceled) => {
                    assert_eq!(c.name, "victim");
                    cancelled += 1;
                }
                Ok(_) => finished += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!((cancelled, finished), (1, 1));
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn utilization_is_tracked() {
        let mut b = ThreadedBackend::new(config(2, 0));
        b.submit(task("t", 2).with_work(|| {
            std::thread::sleep(Duration::from_millis(100));
        }));
        while b.next_completion().is_some() {}
        let r = b.utilization();
        assert_eq!(r.tasks, 1);
        assert!(r.cpu > 0.0, "some busy time must be recorded");
    }
}
