//! The real-thread backend.
//!
//! Executes task work closures on actual OS threads while enforcing the same
//! slot semantics as the simulated backend: a task holding `n` cores and `g`
//! GPUs blocks other tasks from those devices until it finishes. Used by the
//! examples (live runs at natural speed) and by concurrency tests.
//!
//! Virtual durations can be dilated into real sleeps with
//! [`RuntimeConfig::time_scale`](crate::RuntimeConfig::time_scale) — e.g. a scale of `1e-4` replays a
//! 28-hour CONT-V run in about ten real seconds with faithful overlap
//! structure. The default scale of `0.0` skips sleeping entirely and runs
//! work closures back-to-back.
//!
//! Architecture: one scheduler thread owns the [`Scheduler`] and the
//! [`Profiler`]; submissions and worker messages arrive on a channel
//! (the in-repo [`crate::sync`] Mutex+Condvar channel — no external
//! dependency); each placed task runs on its own spawned thread. Completion
//! order is whatever real concurrency produces — determinism is the
//! simulated backend's job.
//!
//! Fault injection ([`RuntimeConfig::faults`](crate::RuntimeConfig::faults)) mirrors the simulated
//! backend: *which* attempts fault is decided by the same seeded
//! [`FaultPlan`] (so the two backends agree on the fault sequence), and the
//! worker thread realizes the outcome — an injected transient failure or
//! walltime expiry ends the attempt without running its work, and the
//! scheduler thread applies the [`RetryPolicy`] before surfacing an error.
//! Node crash/recover windows become scheduler-thread timers that drain the
//! node and preempt resident workers mid-sleep; since a zero time scale has
//! no sleeps to preempt, node-fault injection requires `time_scale > 0`.
//!
//! Cancellation is race-free: a per-task cancel-requested flag is checked
//! under one lock both by [`ExecutionBackend::cancel`] and by the worker at
//! its *commit point* (after its sleep, before running its work). A cancel
//! acknowledged with `true` therefore never yields an `Ok` completion.
//!
//! Telemetry (via [`crate::RuntimeConfig::telemetry`]) records the same
//! spans, instants and metrics as the simulated backend, dual-stamped with
//! both clocks: the wall clock (microseconds since the backend's epoch)
//! and a *modeled virtual clock* that replays the simulated backend's
//! time arithmetic alongside real execution. Per-device virtual-free
//! watermarks advance by `exec setup + launch overhead + run` exactly as
//! the `impress-sim` engine would, and the completion watermark (the max
//! virtual end over delivered completions) feeds submit times, so a
//! seeded serialized workload exports a virtual-time trace byte-identical
//! to the simulated backend's.

use crate::backend::{Completion, ExecutionBackend, TaskError};
use crate::control::{ControlPlane, ControlStats};
use crate::fault::{dilate_span, AttemptFault, SlowWindow};
use crate::pilot::{PhaseBreakdown, PilotConfig};
use crate::profiler::{Profiler, UtilizationReport};
use crate::resources::{Allocation, ResourceRequest};
use crate::runtime::RuntimeConfig;
use crate::scheduler::Scheduler;
use crate::sync::{channel, Receiver, RecvTimeoutError, Sender};
use crate::task::{TaskDescription, TaskId, TaskKind, TaskOutput, TaskWork};
use impress_sim::{SimDuration, SimRng, SimTime};
use impress_telemetry::{track, SpanCat, SpanId, Stamp, Telemetry};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Lock a mutex, recovering the guard when the mutex is poisoned. A worker
/// that panicked while holding one of the backend's locks has its panic
/// captured and surfaced as a task error elsewhere; propagating the poison
/// here would wedge every later lock site behind a second, unrelated panic.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Everything the scheduler keeps per submitted-but-unfinished task; travels
/// back to the scheduler when an attempt fails so it can be resubmitted.
struct TaskSpec {
    name: String,
    tag: String,
    request: ResourceRequest,
    priority: i32,
    duration: SimDuration,
    gpu_busy_fraction: f64,
    kind: TaskKind,
    walltime: Option<SimDuration>,
    attempts: u32,
    work: Option<TaskWork>,
}

/// Scheduler-thread bookkeeping per unfinished task: the spans opened for
/// it plus the modeled virtual-clock window of its current attempt. The
/// virtual fields are maintained even with telemetry off — they back
/// [`ExecutionBackend::virtual_now`] and cost a few compares per placement.
#[derive(Clone, Copy)]
struct VtSpans {
    /// Whole-lifetime span (opened on the client thread at submit).
    task: SpanId,
    /// Current queue-wait span.
    queue: SpanId,
    /// Current attempt span.
    attempt: SpanId,
    /// Virtual instant the current queue wait began.
    queued_vt: SimTime,
    /// Modeled virtual start of the current attempt.
    start_vt: SimTime,
    /// Modeled virtual end of the current attempt.
    end_vt: SimTime,
}

enum Msg {
    Submit {
        id: TaskId,
        spec: TaskSpec,
        /// Completion watermark at submit: the virtual submit instant.
        vt_queued: SimTime,
        /// Task span opened client-side ([`SpanId::NONE`] when off).
        task_span: SpanId,
        /// Queue span opened client-side ([`SpanId::NONE`] when off).
        queue_span: SpanId,
    },
    /// The worker committed and produced a terminal result. `hedge` is
    /// true when the committing worker was a speculative duplicate.
    WorkerDone {
        id: TaskId,
        alloc: Allocation,
        started: SimTime,
        incarnation: u64,
        hedge: bool,
        result: Result<Option<TaskOutput>, TaskError>,
    },
    /// The attempt ended before its work ran (injected fault, walltime
    /// expiry, or node-crash preemption); the scheduler still owns the
    /// spec and applies the retry policy.
    AttemptFailed {
        id: TaskId,
        alloc: Allocation,
        started: SimTime,
        incarnation: u64,
        err: TaskError,
    },
    /// The worker observed the cancel-requested flag and backed out.
    WorkerCanceled {
        id: TaskId,
        alloc: Allocation,
        started: SimTime,
        incarnation: u64,
    },
    /// One side of a hedged pair lost the race (or was preempted) and
    /// backed out without committing; its occupancy is hedge waste.
    HedgeLost {
        id: TaskId,
        alloc: Allocation,
        started: SimTime,
        incarnation: u64,
        hedge: bool,
    },
    Cancel {
        id: TaskId,
    },
    Shutdown,
}

/// Scheduler-thread timers: retry backoffs, the node fault schedule, and
/// hedge checks. Each fault timer carries the virtual instant it models so
/// telemetry can stamp the resulting events on the virtual clock.
enum Timer {
    Retry {
        id: TaskId,
        spec: TaskSpec,
        vt: SimTime,
    },
    Crash(u32, SimTime),
    Recover(u32, SimTime),
    /// Re-check a possibly-straggling attempt for hedging.
    HedgeCheck { id: TaskId, attempt: u32 },
    /// One failure-detector tick for a node: emit (or skip) the seeded
    /// heartbeat, heal a false suspicion on delivery, suspect on a full
    /// timeout of silence. `vt` is the modeled virtual tick instant.
    Heartbeat { node: u32, vt: SimTime },
}

/// Cancellation handshake state, shared between the client thread (cancel),
/// the scheduler thread (terminal bookkeeping) and workers (commit point).
#[derive(Default)]
struct TaskStatus {
    cancel_requested: bool,
    committed: bool,
    terminal: bool,
    /// Set by the scheduler when the main attempt settles while its hedge
    /// duplicate is still sleeping: a fenced hedge can never commit, so
    /// the retry ladder safely reclaims the shared work closure.
    hedge_fenced: bool,
}

/// Scheduler-thread bookkeeping for a live hedge duplicate.
struct HedgeMeta {
    alloc: Allocation,
    started: SimTime,
    incarnation: u64,
    token: Arc<SleepToken>,
    /// Modeled virtual window of the duplicate.
    start_vt: SimTime,
    end_vt: SimTime,
}

/// The hedging threshold base for a shape class: the running mean of
/// useful completion virtual spans once `min_samples` have been observed,
/// the attempt's own modeled span until then.
fn shape_estimate(
    estimates: &HashMap<(u32, u32), (u64, u128)>,
    shape: (u32, u32),
    fallback: SimDuration,
    min_samples: u32,
) -> SimDuration {
    match estimates.get(&shape) {
        Some(&(n, total)) if n >= min_samples as u64 => {
            SimDuration::from_micros((total / n as u128) as u64)
        }
        _ => fallback,
    }
}

type StatusMap = Arc<Mutex<HashMap<u64, TaskStatus>>>;

/// An interruptible sleep: a crashed node (or a cancel) preempts resident
/// workers mid-sleep instead of letting them run to completion.
struct SleepToken {
    preempted: Mutex<bool>,
    cv: Condvar,
}

impl SleepToken {
    fn new() -> Self {
        SleepToken {
            preempted: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn preempt(&self) {
        *lock_recover(&self.preempted) = true;
        self.cv.notify_all();
    }

    /// Sleep up to `dur`; returns `false` if preempted first.
    fn sleep(&self, dur: Duration) -> bool {
        let deadline = Instant::now() + dur;
        let mut flag = lock_recover(&self.preempted);
        loop {
            if *flag {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return true;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(flag, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            flag = guard;
        }
    }
}

struct SchedState {
    profiler: Profiler,
    breakdown: PhaseBreakdown,
}

/// The real-thread pilot backend.
pub struct ThreadedBackend {
    tx: Sender<Msg>,
    completion_rx: Receiver<Completion>,
    state: Arc<Mutex<SchedState>>,
    statuses: StatusMap,
    unfinished: Arc<AtomicUsize>,
    /// Like `unfinished`, but decremented *before* a completion is made
    /// visible on the channel (where `unfinished` is decremented after).
    /// Backs `in_flight()`: once a consumer has popped the final
    /// completion, this already reads zero — while `unfinished` keeps the
    /// opposite ordering so `next_completion` can never return `None`
    /// with a completion still in transit.
    inflight: Arc<AtomicUsize>,
    /// Tasks held back by the deadline (they will never launch).
    held: Arc<AtomicUsize>,
    epoch: Instant,
    next_id: u64,
    scheduler_thread: Option<std::thread::JoinHandle<()>>,
    node: crate::resources::NodeSpec,
    /// Modeled virtual clock: max virtual end over delivered completions,
    /// in micros. Read at submit (virtual queue-entry time) and by
    /// [`ExecutionBackend::virtual_now`].
    vt_watermark: Arc<AtomicU64>,
    /// Control-plane resilience counters (scheduler thread writes, client
    /// reads). All-zero without an armed control plane.
    cstats: Arc<Mutex<ControlStats>>,
    telemetry: Telemetry,
}

impl ThreadedBackend {
    /// Start a pilot over real threads. `config.bootstrap` and per-task
    /// exec setup are honored only when a time scale is set.
    pub fn new(config: PilotConfig) -> Self {
        Self::from_config(RuntimeConfig::new(config))
    }

    /// Start a pilot under a full [`RuntimeConfig`]: time scale, fault
    /// plan + retry policy, walltime deadline and telemetry in one value.
    ///
    /// Task-level faults (transients, hangs, walltime expiries) work at
    /// any time scale; the node crash/recover schedule needs
    /// `time_scale > 0` — with no real sleeps there is no execution window
    /// for a crash to interrupt, so it is skipped entirely at scale `0`.
    pub fn from_config(runtime: RuntimeConfig) -> Self {
        let RuntimeConfig {
            pilot: config,
            faults,
            retry,
            deadline,
            time_scale,
            telemetry,
            hedge,
            quarantine,
            ..
        } = runtime;
        let (tx, rx) = channel::<Msg>();
        let (completion_tx, completion_rx) = channel::<Completion>();
        let state = Arc::new(Mutex::new(SchedState {
            profiler: Profiler::new_cluster(config.node.cores, config.node.gpus, config.nodes),
            breakdown: PhaseBreakdown {
                bootstrap: if time_scale > 0.0 {
                    config.bootstrap
                } else {
                    SimDuration::ZERO
                },
                ..Default::default()
            },
        }));
        let statuses: StatusMap = Arc::new(Mutex::new(HashMap::new()));
        let unfinished = Arc::new(AtomicUsize::new(0));
        let inflight = Arc::new(AtomicUsize::new(0));
        // Allocation deadline in backend-time micros; `u64::MAX` = none.
        let deadline_micros = Arc::new(AtomicU64::new(
            deadline.map(|d| d.as_micros()).unwrap_or(u64::MAX),
        ));
        let held = Arc::new(AtomicUsize::new(0));
        let vt_watermark = Arc::new(AtomicU64::new(0));
        let cstats = Arc::new(Mutex::new(ControlStats::default()));
        // The same seeded plane the deterministic engines realize: `None`
        // when link faults are disabled, which keeps every path below on
        // the exact pre-control-plane behavior.
        let control = ControlPlane::from_plan(&faults);
        let epoch = Instant::now();

        let thread_state = state.clone();
        let thread_statuses = statuses.clone();
        let thread_unfinished = unfinished.clone();
        let thread_inflight = inflight.clone();
        let thread_deadline = deadline_micros.clone();
        let thread_held = held.clone();
        let thread_watermark = vt_watermark.clone();
        let thread_cstats = cstats.clone();
        let tele = telemetry.clone();
        let exec_setup = config.exec_setup_per_task;
        let worker_tx = tx.clone();
        let node = config.node;
        let scheduler_thread = std::thread::Builder::new()
            .name("pilot-scheduler".into())
            .spawn(move || {
                if time_scale > 0.0 {
                    std::thread::sleep(Duration::from_secs_f64(
                        config.bootstrap.as_secs_f64() * time_scale,
                    ));
                }
                let vt_bootstrap = SimTime::ZERO + config.bootstrap;
                if tele.enabled() {
                    // The modeled virtual clock always pays the bootstrap
                    // (mirroring the simulated backend), even when the real
                    // sleep is skipped at time scale 0.
                    let boot = tele.span(
                        SpanCat::Pilot,
                        "bootstrap",
                        SpanId::NONE,
                        track::PILOT,
                        Stamp::dual(SimTime::ZERO, 0),
                        &[],
                    );
                    tele.end(
                        boot,
                        Stamp::dual(vt_bootstrap, epoch.elapsed().as_micros() as u64),
                    );
                }
                let mut scheduler = Scheduler::new_cluster(
                    crate::resources::ClusterSpec::homogeneous(node, config.nodes),
                    config.policy,
                );
                let mut backoff_rng = SimRng::from_seed(config.seed).fork("retry-backoff");
                let mut waiting: HashMap<u64, TaskSpec> = HashMap::new();
                // Per-node slowdown windows (empty when unconfigured: every
                // dilation below is then an exact identity).
                let slow: Vec<Vec<SlowWindow>> = (0..config.nodes)
                    .map(|n| faults.slowdown_windows(n))
                    .collect();
                // Specs of placed tasks, plus the shared work closure a
                // hedged pair races for. The spec stays here (not on the
                // worker) so retries and hedges can both reach it.
                let mut executing: HashMap<u64, (TaskSpec, Arc<Mutex<Option<TaskWork>>>)> =
                    HashMap::new();
                // Live hedge duplicates, keyed by task id (at most one each).
                let mut hedges: HashMap<u64, HedgeMeta> = HashMap::new();
                // Shape-class virtual-runtime estimates from useful
                // completions (hedging only).
                let mut estimates: HashMap<(u32, u32), (u64, u128)> = HashMap::new();
                // Distinct nodes each task has failed on (quarantine only).
                let mut failed_nodes: HashMap<u64, Vec<u32>> = HashMap::new();
                // Poisoned lineage count per shape class (quarantine breaker).
                let mut shape_poison: HashMap<(u32, u32), u32> = HashMap::new();
                // Tasks that ever had a hedge duplicate placed.
                let mut hedged_tasks: HashSet<u64> = HashSet::new();
                // Per-device virtual-free watermarks: device `d` of node `n`
                // is globally `n * (cores + gpus) + d` (cores first). A
                // placement's modeled virtual start is the max over its
                // devices, exactly as slot contention resolves in the sim.
                let devices_per_node = (node.cores + node.gpus) as usize;
                let mut vt_free: Vec<SimTime> =
                    vec![vt_bootstrap; devices_per_node * config.nodes as usize];
                let dev_ids = |alloc: &Allocation| -> Vec<usize> {
                    let base = alloc.node as usize * devices_per_node;
                    alloc
                        .core_ids
                        .iter()
                        .map(|&c| base + c as usize)
                        .chain(
                            alloc
                                .gpu_ids
                                .iter()
                                .map(|&g| base + node.cores as usize + g as usize),
                        )
                        .collect()
                };
                // Last crash instant per node: stamps crash-evicted attempts.
                let mut vt_crash: Vec<SimTime> = vec![SimTime::ZERO; config.nodes as usize];
                let mut vspans: HashMap<u64, VtSpans> = HashMap::new();
                let vt_now = || SimTime::from_micros(thread_watermark.load(Ordering::SeqCst));
                // id → (allocation, start time, incarnation at placement,
                // sleep token). The allocation and start time let a crash
                // close the victims' profiler intervals synchronously.
                let mut running: HashMap<u64, (Allocation, SimTime, u64, Arc<SleepToken>)> =
                    HashMap::new();
                // Bumped on each crash: a worker message whose incarnation is
                // stale must not release into the rebuilt pool.
                let mut node_incarnation: Vec<u64> = vec![0; config.nodes as usize];
                // Failure detector (heartbeat liveness + suspicion): armed
                // only when the control plane models heartbeats AND real
                // sleeps exist — at time scale 0 there is no silence window
                // for a timeout to measure, exactly like node faults.
                let hb = control.as_ref().and_then(|cp| {
                    let link = cp.link();
                    match (link.heartbeat_interval, link.heartbeat_timeout) {
                        (Some(i), Some(t)) if time_scale > 0.0 => Some((i, t)),
                        _ => None,
                    }
                });
                let mut suspected = vec![false; config.nodes as usize];
                // Ground-truth node health: a crashed node emits no
                // heartbeats and cannot be resynced by one.
                let mut crashed = vec![false; config.nodes as usize];
                let mut hb_seq: Vec<u64> = vec![0u64; config.nodes as usize];
                // Last modeled heartbeat arrival per node, on the virtual
                // clock the ticks march on.
                let mut vt_heard: Vec<SimTime> = vec![vt_bootstrap; config.nodes as usize];
                let scale_vt = move |t: SimTime| {
                    epoch + Duration::from_secs_f64(t.as_secs_f64() * time_scale)
                };
                let mut timers: Vec<(Instant, Timer)> = Vec::new();
                if time_scale > 0.0 {
                    for n in 0..config.nodes {
                        for (crash_at, recover_at) in faults.crash_windows(n) {
                            timers.push((scale_vt(crash_at), Timer::Crash(n, crash_at)));
                            timers.push((scale_vt(recover_at), Timer::Recover(n, recover_at)));
                        }
                    }
                }
                if let Some((interval, _)) = hb {
                    for n in 0..config.nodes {
                        let vt = vt_bootstrap + interval;
                        timers.push((scale_vt(vt), Timer::Heartbeat { node: n, vt }));
                    }
                }
                let now = |epoch: Instant| -> SimTime {
                    SimTime::from_micros(epoch.elapsed().as_micros() as u64)
                };
                let deliver = |c: Completion, vt_end: SimTime| {
                    if let Some(s) = lock_recover(&thread_statuses).get_mut(&c.task.0)
                    {
                        s.terminal = true;
                    }
                    // The watermark advances BEFORE the send: a client that
                    // pops this completion and submits a follow-up must read
                    // a virtual submit time at or past this virtual end.
                    thread_watermark.fetch_max(vt_end.as_micros(), Ordering::SeqCst);
                    // `inflight` drops before the send so a consumer that
                    // popped this completion observes the decrement;
                    // `unfinished` drops after so the drain check in
                    // `next_completion` cannot miss an in-transit one.
                    thread_inflight.fetch_sub(1, Ordering::SeqCst);
                    let _ = completion_tx.send(c);
                    thread_unfinished.fetch_sub(1, Ordering::SeqCst);
                    if tele.enabled() {
                        tele.gauge("in_flight", thread_inflight.load(Ordering::SeqCst) as f64);
                    }
                };
                let cancel_requested = |id: TaskId| {
                    lock_recover(&thread_statuses)
                        .get(&id.0)
                        .is_some_and(|s| s.cancel_requested)
                };
                loop {
                    // Fire due timers, earliest first.
                    loop {
                        let due = timers
                            .iter()
                            .enumerate()
                            .filter(|(_, (t, _))| *t <= Instant::now())
                            .min_by_key(|(_, (t, _))| *t)
                            .map(|(i, _)| i);
                        let Some(i) = due else { break };
                        match timers.remove(i).1 {
                            Timer::Crash(n, crash_vt) => {
                                let live = node_incarnation[n as usize];
                                node_incarnation[n as usize] += 1;
                                crashed[n as usize] = true;
                                // A node already drained by a suspicion
                                // verdict stays drained; draining twice
                                // would corrupt the pool.
                                if !suspected[n as usize] {
                                    scheduler.drain_node(n);
                                }
                                vt_crash[n as usize] = crash_vt;
                                if tele.enabled() {
                                    tele.instant(
                                        SpanCat::Fault,
                                        "node-crash",
                                        SpanId::NONE,
                                        track::FAULT,
                                        Stamp::dual(crash_vt, now(epoch).as_micros()),
                                        &[("node", n as i64)],
                                    );
                                    tele.count("node_crashes", 1);
                                }
                                // Close the victims' device intervals *now*:
                                // their slots may be re-allocated after
                                // recovery before the preempted workers'
                                // messages arrive, and the profiler rejects
                                // overlapping busy intervals. The message
                                // handlers skip the close for stale
                                // incarnations (it happened here). Tasks
                                // already stale from an earlier crash were
                                // closed by that crash.
                                let at = now(epoch);
                                let mut st = lock_recover(&thread_state);
                                for (_, (alloc, started, _, token)) in running
                                    .iter()
                                    .filter(|(_, (a, _, inc, _))| a.node == n && *inc == live)
                                {
                                    st.profiler.attempt_wasted(alloc, *started, at);
                                    token.preempt();
                                }
                                // Hedge duplicates resident on the crashed
                                // node forfeit their slots too, no matter
                                // where their main attempt runs; the stale
                                // incarnation in their HedgeLost message
                                // skips the double booking.
                                for (_, h) in hedges
                                    .iter()
                                    .filter(|(_, h)| h.alloc.node == n && h.incarnation == live)
                                {
                                    st.profiler.attempt_hedge_wasted(&h.alloc, h.started, at);
                                    h.token.preempt();
                                }
                            }
                            Timer::Recover(n, recover_vt) => {
                                crashed[n as usize] = false;
                                // Ground-truth recovery clears any standing
                                // suspicion and grants a fresh liveness
                                // grace period.
                                suspected[n as usize] = false;
                                vt_heard[n as usize] = recover_vt;
                                scheduler.recover_node(n);
                                if tele.enabled() {
                                    tele.instant(
                                        SpanCat::Fault,
                                        "node-recover",
                                        SpanId::NONE,
                                        track::FAULT,
                                        Stamp::dual(recover_vt, now(epoch).as_micros()),
                                        &[("node", n as i64)],
                                    );
                                }
                            }
                            Timer::Retry { id, spec, vt } => {
                                if cancel_requested(id) {
                                    let at = now(epoch);
                                    let vcan = vt.max(vt_now());
                                    if tele.enabled() {
                                        let st = Stamp::dual(vcan, at.as_micros());
                                        if let Some(vs) = vspans.remove(&id.0) {
                                            tele.instant(
                                                SpanCat::Task,
                                                "canceled",
                                                vs.task,
                                                track::task(id.0),
                                                st,
                                                &[],
                                            );
                                            tele.end(vs.task, st);
                                        }
                                        tele.count("tasks_canceled", 1);
                                    } else {
                                        vspans.remove(&id.0);
                                    }
                                    deliver(
                                        Completion {
                                            task: id,
                                            name: spec.name,
                                            tag: spec.tag,
                                            result: Err(TaskError::Canceled),
                                            started: at,
                                            finished: at,
                                            attempts: spec.attempts,
                                            hedged: hedged_tasks.remove(&id.0),
                                        },
                                        vcan,
                                    );
                                } else {
                                    scheduler.enqueue_with_priority(id, spec.request, spec.priority);
                                    if let Some(vs) = vspans.get_mut(&id.0) {
                                        vs.queued_vt = vt;
                                        if tele.enabled() {
                                            vs.queue = tele.span(
                                                SpanCat::Queue,
                                                "queue",
                                                vs.task,
                                                track::task(id.0),
                                                Stamp::dual(vt, now(epoch).as_micros()),
                                                &[("attempt", spec.attempts as i64)],
                                            );
                                        }
                                    }
                                    if tele.enabled() {
                                        tele.gauge(
                                            "queue_depth",
                                            scheduler.queue_len() as f64,
                                        );
                                    }
                                    waiting.insert(id.0, spec);
                                }
                            }
                            Timer::HedgeCheck { id, attempt } => {
                                // Re-validate: the attempt may have settled
                                // or been superseded since the check was
                                // armed, or an earlier re-arm already placed
                                // a duplicate.
                                let probe = match (running.get(&id.0), executing.get(&id.0)) {
                                    (Some((alloc, ..)), Some((spec, work)))
                                        if spec.attempts == attempt
                                            && !hedges.contains_key(&id.0) =>
                                    {
                                        Some((
                                            spec.request,
                                            alloc.node,
                                            spec.kind,
                                            spec.duration,
                                            spec.walltime,
                                            work.clone(),
                                        ))
                                    }
                                    _ => None,
                                };
                                let Some((request, main_node, kind, duration, walltime, work)) =
                                    probe
                                else {
                                    continue;
                                };
                                let policy = hedge.expect("hedge checks only arm with a policy");
                                // The duplicate models a clean run: exec
                                // setup + launch overhead + undilated run,
                                // stretched by the hedge node's slowdowns.
                                let hsetup = exec_setup.saturating_add(kind.launch_overhead());
                                // A node where the duplicate's own modeled
                                // span would cross the straggler threshold
                                // cannot rescue anyone — a copy racing at
                                // the same degraded pace loses to its head
                                // start. Skip such nodes and keep probing
                                // the next-best allocation.
                                let hthreshold = shape_estimate(
                                    &estimates,
                                    (request.cores, request.gpus),
                                    hsetup.saturating_add(duration),
                                    policy.min_samples,
                                )
                                .mul_f64(policy.threshold);
                                let mut avoid = vec![main_node];
                                let (halloc, v_place, hspan) = loop {
                                    let Some(halloc) =
                                        scheduler.alloc_avoiding(&request, &avoid)
                                    else {
                                        // No useful capacity off the
                                        // straggler's node: re-arm after
                                        // roughly one estimated runtime
                                        // instead of polling.
                                        let est = shape_estimate(
                                            &estimates,
                                            (request.cores, request.gpus),
                                            SimDuration::from_micros(1),
                                            policy.min_samples,
                                        );
                                        let wait = Duration::from_secs_f64(
                                            est.as_secs_f64() * time_scale,
                                        )
                                        .max(Duration::from_millis(1));
                                        timers.push((
                                            Instant::now() + wait,
                                            Timer::HedgeCheck { id, attempt },
                                        ));
                                        break (None, SimTime::ZERO, SimDuration::ZERO);
                                    };
                                    let devs = dev_ids(&halloc);
                                    let mut v_place = vt_now();
                                    for &d in &devs {
                                        if vt_free[d] > v_place {
                                            v_place = vt_free[d];
                                        }
                                    }
                                    let hspan = dilate_span(
                                        &slow[halloc.node as usize],
                                        v_place,
                                        hsetup.saturating_add(duration),
                                    );
                                    if hspan > hthreshold {
                                        scheduler.release(&halloc);
                                        avoid.push(halloc.node);
                                        continue;
                                    }
                                    break (Some(halloc), v_place, hspan);
                                };
                                let Some(halloc) = halloc else {
                                    continue;
                                };
                                if walltime.is_some_and(|limit| limit < hspan) {
                                    // The duplicate could only time out on
                                    // its own walltime — not a useful hedge.
                                    scheduler.release(&halloc);
                                    continue;
                                }
                                let v_end = v_place + hspan;
                                for &d in &dev_ids(&halloc) {
                                    vt_free[d] = v_end;
                                }
                                // Un-fence: a fresh duplicate may commit.
                                lock_recover(&thread_statuses)
                                    .entry(id.0)
                                    .or_default()
                                    .hedge_fenced = false;
                                let started = now(epoch);
                                let incarnation = node_incarnation[halloc.node as usize];
                                let token = Arc::new(SleepToken::new());
                                {
                                    let mut st = lock_recover(&thread_state);
                                    st.profiler.note_hedge();
                                    st.profiler.task_started(&halloc, started);
                                }
                                hedged_tasks.insert(id.0);
                                if tele.enabled() {
                                    let owner = vspans
                                        .get(&id.0)
                                        .map(|v| v.attempt)
                                        .unwrap_or(SpanId::NONE);
                                    tele.instant(
                                        SpanCat::Hedge,
                                        "hedge-place",
                                        owner,
                                        track::task(id.0),
                                        Stamp::dual(v_place, started.as_micros()),
                                        &[
                                            ("attempt", attempt as i64),
                                            ("node", halloc.node as i64),
                                        ],
                                    );
                                    tele.count("hedges", 1);
                                }
                                hedges.insert(
                                    id.0,
                                    HedgeMeta {
                                        alloc: halloc.clone(),
                                        started,
                                        incarnation,
                                        token: token.clone(),
                                        start_vt: v_place,
                                        end_vt: v_end,
                                    },
                                );
                                let done_tx = worker_tx.clone();
                                let statuses = thread_statuses.clone();
                                std::thread::Builder::new()
                                    .name(format!("pilot-hedge-{}", id.0))
                                    .spawn(move || {
                                        run_attempt(
                                            id,
                                            halloc,
                                            started,
                                            incarnation,
                                            work,
                                            hspan,
                                            None,
                                            true,
                                            time_scale,
                                            &token,
                                            &statuses,
                                            &done_tx,
                                        );
                                    })
                                    .expect("spawn hedge worker thread");
                            }
                            Timer::Heartbeat { node: n, vt } => {
                                let (interval, timeout) =
                                    hb.expect("heartbeat timers only arm with a detector");
                                let cp = control.as_ref().expect("detector implies a plane");
                                let seq = hb_seq[n as usize];
                                hb_seq[n as usize] += 1;
                                // A crashed node emits nothing this tick; the
                                // schedule keeps ticking so heartbeats resume
                                // the instant it recovers. Verdicts are the
                                // same seeded per-message draws the
                                // deterministic engines make.
                                let arrive = if !crashed[n as usize] {
                                    let arrive = cp.best_effort(
                                        "hb",
                                        (u64::from(n) << 32) | seq,
                                        n,
                                        vt,
                                    );
                                    let mut cs = lock_recover(&thread_cstats);
                                    cs.heartbeats_sent += 1;
                                    if arrive.is_some() {
                                        cs.heartbeats_delivered += 1;
                                    }
                                    arrive
                                } else {
                                    None
                                };
                                if let Some(at) = arrive {
                                    vt_heard[n as usize] = at;
                                    // A heartbeat from a suspected (but not
                                    // crashed) node heals the false
                                    // suspicion: re-admit it to placement.
                                    if suspected[n as usize] && !crashed[n as usize] {
                                        suspected[n as usize] = false;
                                        scheduler.recover_node(n);
                                        lock_recover(&thread_cstats).resyncs += 1;
                                        if tele.enabled() {
                                            tele.instant(
                                                SpanCat::Control,
                                                "resync",
                                                SpanId::NONE,
                                                track::FAULT,
                                                Stamp::dual(at, now(epoch).as_micros()),
                                                &[("node", n as i64)],
                                            );
                                            tele.count("resyncs", 1);
                                        }
                                    }
                                } else if thread_inflight.load(Ordering::SeqCst) > 0
                                    && !suspected[n as usize]
                                    && scheduler.node_is_up(n)
                                    && vt_heard[n as usize] + timeout <= vt
                                {
                                    // A full timeout of silence with work in
                                    // flight: declare the node suspect, stop
                                    // placing on it and evict its resident
                                    // attempts — their leases are expired.
                                    // The bookkeeping mirrors a crash (the
                                    // incarnation bump makes the preempted
                                    // workers' messages stale so the drained
                                    // pool never sees a release); the
                                    // AttemptFailed handler rewrites their
                                    // eviction to a lease expiry.
                                    let live = node_incarnation[n as usize];
                                    node_incarnation[n as usize] += 1;
                                    suspected[n as usize] = true;
                                    scheduler.drain_node(n);
                                    // The eviction instant stamps the
                                    // victims' lease expiries (same slot a
                                    // crash uses for its evictions).
                                    vt_crash[n as usize] = vt;
                                    lock_recover(&thread_cstats).suspicions += 1;
                                    let at = now(epoch);
                                    if tele.enabled() {
                                        tele.instant(
                                            SpanCat::Control,
                                            "suspect",
                                            SpanId::NONE,
                                            track::FAULT,
                                            Stamp::dual(vt, at.as_micros()),
                                            &[("node", n as i64)],
                                        );
                                        tele.count("suspicions", 1);
                                    }
                                    let mut st = lock_recover(&thread_state);
                                    for (_, (alloc, started, _, token)) in running
                                        .iter()
                                        .filter(|(_, (a, _, inc, _))| a.node == n && *inc == live)
                                    {
                                        st.profiler.attempt_wasted(alloc, *started, at);
                                        token.preempt();
                                    }
                                    for (_, h) in hedges
                                        .iter()
                                        .filter(|(_, h)| h.alloc.node == n && h.incarnation == live)
                                    {
                                        st.profiler.attempt_hedge_wasted(&h.alloc, h.started, at);
                                        h.token.preempt();
                                    }
                                }
                                let next = vt + interval;
                                timers.push((
                                    scale_vt(next),
                                    Timer::Heartbeat { node: n, vt: next },
                                ));
                            }
                        }
                    }
                    // Place everything that fits now — BEFORE blocking on the
                    // channel, so work unlocked by a timer (a retry backoff
                    // expiring, a node recovering) is scheduled even though no
                    // message will arrive to wake us.
                    let queued = scheduler.queue_len();
                    let placements = scheduler.place_ready();
                    if tele.enabled() && queued > 0 {
                        let st = Stamp::dual(vt_now(), now(epoch).as_micros());
                        let round = tele.span(
                            SpanCat::Scheduler,
                            "placement-round",
                            SpanId::NONE,
                            track::SCHED,
                            st,
                            &[
                                ("queued", queued as i64),
                                ("placed", placements.len() as i64),
                            ],
                        );
                        tele.end(round, st);
                        tele.count("placement_rounds", 1);
                        tele.gauge("queue_depth", scheduler.queue_len() as f64);
                    }
                    for (id, mut alloc) in placements {
                        let mut spec = waiting.remove(&id.0).expect("placed task was submitted");
                        // Quarantine: an open shape circuit breaker sheds
                        // the whole shape class at the placement grant.
                        let shape = (spec.request.cores, spec.request.gpus);
                        let tripped = match quarantine {
                            Some(q) if q.shape_trip > 0 => {
                                shape_poison.get(&shape).copied().unwrap_or(0) >= q.shape_trip
                            }
                            _ => false,
                        };
                        if tripped {
                            scheduler.release(&alloc);
                            let at = now(epoch);
                            let vshed = vt_now();
                            if tele.enabled() {
                                let st = Stamp::dual(vshed, at.as_micros());
                                if let Some(vs) = vspans.remove(&id.0) {
                                    tele.end(vs.queue, st);
                                    tele.instant(
                                        SpanCat::Quarantine,
                                        "shape-shed",
                                        vs.task,
                                        track::task(id.0),
                                        st,
                                        &[
                                            ("cores", shape.0 as i64),
                                            ("gpus", shape.1 as i64),
                                        ],
                                    );
                                    tele.end(vs.task, st);
                                }
                                tele.count("tasks_shed", 1);
                            } else {
                                vspans.remove(&id.0);
                            }
                            deliver(
                                Completion {
                                    task: id,
                                    name: spec.name,
                                    tag: spec.tag,
                                    result: Err(TaskError::ShapeCircuitOpen {
                                        cores: shape.0,
                                        gpus: shape.1,
                                    }),
                                    started: at,
                                    finished: at,
                                    attempts: spec.attempts,
                                    hedged: hedged_tasks.remove(&id.0),
                                },
                                vshed,
                            );
                            continue;
                        }
                        // Retry steering: re-home a retried attempt granted
                        // a node the task already failed on, when any other
                        // node has capacity. The alternative is claimed
                        // before the original grant is released.
                        if quarantine.is_some() {
                            let avoid = failed_nodes.get(&id.0).cloned().unwrap_or_default();
                            if avoid.contains(&alloc.node) {
                                if let Some(alt) = scheduler.alloc_avoiding(&spec.request, &avoid)
                                {
                                    let original = std::mem::replace(&mut alloc, alt);
                                    scheduler.release(&original);
                                }
                            }
                        }
                        // Modeled virtual window of this attempt: the same
                        // arithmetic the simulated backend runs at placement
                        // (setup = exec setup + launch overhead; hang faults
                        // dilate the run; slowdown windows stretch the span;
                        // walltime caps it).
                        let devs = dev_ids(&alloc);
                        let mut v_place = vspans
                            .get(&id.0)
                            .map(|v| v.queued_vt)
                            .unwrap_or(SimTime::ZERO);
                        for &d in &devs {
                            if vt_free[d] > v_place {
                                v_place = vt_free[d];
                            }
                        }
                        let fault = faults.attempt_fault(id.0, spec.attempts);
                        let hang_factor = faults.config().hang_factor;
                        let setup = exec_setup.saturating_add(spec.kind.launch_overhead());
                        let mut vrun = spec.duration;
                        if fault == AttemptFault::Hang {
                            vrun = vrun.mul_f64(hang_factor);
                        }
                        let vtotal = setup.saturating_add(vrun);
                        let vtotal = dilate_span(&slow[alloc.node as usize], v_place, vtotal);
                        let (vspan, timed_out) = match spec.walltime {
                            Some(limit) if limit < vtotal => (limit, true),
                            _ => (vtotal, false),
                        };
                        let v_end = v_place + vspan;
                        // Walltime-aware drain: hold any attempt whose scaled
                        // span would cross the allocation deadline. Its slots
                        // return to the pool, it never launches, and the held
                        // count lets next_completion report the drain. The
                        // spec is dropped — a resume re-submits from the
                        // journal, not from this process's memory.
                        let deadline = thread_deadline.load(Ordering::SeqCst);
                        if deadline != u64::MAX {
                            let at = now(epoch).as_micros();
                            let span_micros = if time_scale > 0.0 {
                                (spec.duration.as_secs_f64() * time_scale * 1e6) as u64
                            } else {
                                // No sleeps: tasks are instant, so only an
                                // already-expired allocation holds them.
                                0
                            };
                            if at.saturating_add(span_micros) > deadline {
                                scheduler.release(&alloc);
                                thread_held.fetch_add(1, Ordering::SeqCst);
                                if tele.enabled() {
                                    let st = Stamp::dual(v_place, now(epoch).as_micros());
                                    if let Some(vs) = vspans.get(&id.0).copied() {
                                        tele.end(vs.queue, st);
                                        tele.instant(
                                            SpanCat::Task,
                                            "held",
                                            vs.task,
                                            track::task(id.0),
                                            st,
                                            &[],
                                        );
                                    }
                                    tele.count("tasks_held", 1);
                                }
                                continue;
                            }
                        }
                        for &d in &devs {
                            vt_free[d] = v_end;
                        }
                        if let Some(vs) = vspans.get_mut(&id.0) {
                            vs.start_vt = v_place;
                            vs.end_vt = v_end;
                        }
                        if tele.enabled() {
                            let st = Stamp::dual(v_place, now(epoch).as_micros());
                            if let Some(vs) = vspans.get(&id.0).copied() {
                                tele.end(vs.queue, st);
                                tele.observe(
                                    "queue_wait_seconds",
                                    0.0,
                                    14_400.0,
                                    48,
                                    v_place.since(vs.queued_vt).as_secs_f64(),
                                );
                                let attempt_span = tele.span(
                                    SpanCat::Attempt,
                                    "attempt",
                                    vs.task,
                                    track::task(id.0),
                                    st,
                                    &[
                                        ("attempt", spec.attempts as i64),
                                        ("node", alloc.node as i64),
                                    ],
                                );
                                vspans.get_mut(&id.0).expect("span entry").attempt =
                                    attempt_span;
                            }
                            tele.count("placements", 1);
                        }
                        let started = now(epoch);
                        lock_recover(&thread_state)
                            .profiler
                            .task_started(&alloc, started);
                        let incarnation = node_incarnation[alloc.node as usize];
                        let token = Arc::new(SleepToken::new());
                        running.insert(id.0, (alloc.clone(), started, incarnation, token.clone()));
                        // Realize the fault plan's verdict here (walltime
                        // wins over other faults, as in the simulated
                        // backend); the worker just sleeps out the span and
                        // reports it.
                        let fail = if timed_out {
                            Some(TaskError::TimedOut {
                                limit: spec.walltime.expect("timed_out implies a limit"),
                            })
                        } else if fault == AttemptFault::Transient {
                            Some(TaskError::Injected)
                        } else {
                            None
                        };
                        // The work closure moves into a shared cell: the
                        // attempt and a possible hedge duplicate race for it
                        // at their commit points, and a fenced retry ladder
                        // reclaims it.
                        let work = Arc::new(Mutex::new(spec.work.take()));
                        let attempts = spec.attempts;
                        executing.insert(id.0, (spec, work.clone()));
                        let done_tx = worker_tx.clone();
                        let statuses = thread_statuses.clone();
                        let walloc = alloc.clone();
                        let wwork = work.clone();
                        std::thread::Builder::new()
                            .name(format!("pilot-worker-{}", id.0))
                            .spawn(move || {
                                run_attempt(
                                    id,
                                    walloc,
                                    started,
                                    incarnation,
                                    wwork,
                                    vspan,
                                    fail,
                                    false,
                                    time_scale,
                                    &token,
                                    &statuses,
                                    &done_tx,
                                );
                            })
                            .expect("spawn worker thread");
                        // Hedge arming: once the shape class has a runtime
                        // estimate, an attempt still sleeping past k× that
                        // estimate gets a speculative duplicate. Needs real
                        // sleeps (like node faults): at time scale 0 there
                        // is no straggling window to hedge.
                        if let Some(policy) = hedge {
                            if time_scale > 0.0 {
                                let threshold =
                                    shape_estimate(&estimates, shape, vspan, policy.min_samples)
                                        .mul_f64(policy.threshold);
                                if threshold < vspan {
                                    timers.push((
                                        Instant::now()
                                            + Duration::from_secs_f64(
                                                threshold.as_secs_f64() * time_scale,
                                            ),
                                        Timer::HedgeCheck { id, attempt: attempts },
                                    ));
                                }
                            }
                        }
                    }
                    // Wait for the next message, but never past the next timer.
                    let msg = if timers.is_empty() {
                        match rx.recv() {
                            Ok(m) => Some(m),
                            Err(_) => break,
                        }
                    } else {
                        let next = timers.iter().map(|(t, _)| *t).min().expect("non-empty");
                        let wait = next
                            .saturating_duration_since(Instant::now())
                            .min(Duration::from_millis(100))
                            .max(Duration::from_millis(1));
                        match rx.recv_timeout(wait) {
                            Ok(m) => Some(m),
                            Err(RecvTimeoutError::Timeout) => None,
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    };
                    match msg {
                        None => {}
                        Some(Msg::Shutdown) => break,
                        Some(Msg::Cancel { id }) => {
                            if scheduler.cancel_queued(id) {
                                let spec = waiting.remove(&id.0).expect("queued task waits");
                                let at = now(epoch);
                                let vs = vspans.remove(&id.0);
                                let vcan =
                                    vs.map(|v| v.queued_vt).unwrap_or(SimTime::ZERO).max(vt_now());
                                if tele.enabled() {
                                    let st = Stamp::dual(vcan, at.as_micros());
                                    if let Some(v) = vs {
                                        tele.end(v.queue, st);
                                        tele.instant(
                                            SpanCat::Task,
                                            "canceled",
                                            v.task,
                                            track::task(id.0),
                                            st,
                                            &[],
                                        );
                                        tele.end(v.task, st);
                                    }
                                    tele.count("tasks_canceled", 1);
                                }
                                deliver(
                                    Completion {
                                        task: id,
                                        name: spec.name,
                                        tag: spec.tag,
                                        result: Err(TaskError::Canceled),
                                        started: at,
                                        finished: at,
                                        attempts: spec.attempts,
                                        hedged: hedged_tasks.remove(&id.0),
                                    },
                                    vcan,
                                );
                            } else {
                                if let Some((_, _, _, token)) = running.get(&id.0) {
                                    // Wake the worker early; its commit check
                                    // sees the flag and backs out.
                                    token.preempt();
                                }
                                if let Some(h) = hedges.get(&id.0) {
                                    // A hedge duplicate backs out the same
                                    // way (its HedgeLost books the waste).
                                    h.token.preempt();
                                }
                            }
                            // Otherwise the task is in a retry backoff (the
                            // timer checks the flag) or already racing to a
                            // terminal state the flag can still veto.
                        }
                        Some(Msg::Submit {
                            id,
                            spec,
                            vt_queued,
                            task_span,
                            queue_span,
                        }) => {
                            lock_recover(&thread_state)
                                .profiler
                                .task_submitted(id, now(epoch));
                            scheduler.enqueue_with_priority(id, spec.request, spec.priority);
                            vspans.insert(
                                id.0,
                                VtSpans {
                                    task: task_span,
                                    queue: queue_span,
                                    attempt: SpanId::NONE,
                                    queued_vt: vt_queued,
                                    start_vt: vt_queued,
                                    end_vt: vt_queued,
                                },
                            );
                            if tele.enabled() {
                                tele.gauge("queue_depth", scheduler.queue_len() as f64);
                            }
                            waiting.insert(id.0, spec);
                        }
                        Some(Msg::WorkerDone {
                            id,
                            alloc,
                            started,
                            incarnation,
                            hedge: won_by_hedge,
                            result,
                        }) => {
                            let hedge_meta = if won_by_hedge {
                                // The duplicate won: its main attempt can no
                                // longer commit (the flag blocks it); wake
                                // the straggler so its HedgeLost arrives
                                // promptly and books the occupancy.
                                if let Some((_, _, _, token)) = running.get(&id.0) {
                                    token.preempt();
                                }
                                hedges.remove(&id.0)
                            } else {
                                running.remove(&id.0);
                                // A live duplicate lost the race: wake it;
                                // its HedgeLost books the hedge waste.
                                if let Some(h) = hedges.get(&id.0) {
                                    h.token.preempt();
                                }
                                None
                            };
                            let (spec, _work) =
                                executing.remove(&id.0).expect("done task was placed");
                            let finished = now(epoch);
                            // A committed task outruns its node's crash: the
                            // result stands, but the drained pool must not
                            // see a release, and the crash already closed
                            // the device intervals (as wasted).
                            let fresh = incarnation == node_incarnation[alloc.node as usize];
                            // Under the control plane a stale-incarnation
                            // completion is a late report from an old
                            // lease-holder. The work genuinely ran on a real
                            // thread (the commit race arbitrates effects),
                            // so the result still stands — the fence records
                            // the lateness.
                            if !fresh && control.is_some() {
                                lock_recover(&thread_cstats).fenced_completions += 1;
                                if tele.enabled() {
                                    tele.count("fenced_completions", 1);
                                }
                            }
                            {
                                let mut st = lock_recover(&thread_state);
                                if fresh {
                                    st.profiler.task_finished(
                                        id,
                                        &spec.name,
                                        &spec.tag,
                                        &alloc,
                                        started,
                                        finished,
                                        spec.gpu_busy_fraction,
                                    );
                                }
                                st.breakdown
                                    .record_task(SimDuration::ZERO, finished.since(started));
                            }
                            if fresh {
                                scheduler.release(&alloc);
                            }
                            let vs = vspans.remove(&id.0);
                            // The modeled virtual end is the winner's.
                            let v_end = hedge_meta
                                .as_ref()
                                .map(|h| h.end_vt)
                                .or(vs.map(|v| v.end_vt))
                                .unwrap_or_else(vt_now);
                            // Shape estimates learn from useful completions
                            // (hedging only), on the virtual clock so all
                            // three backends learn the same values.
                            if let (Some(policy), true) = (hedge, result.is_ok()) {
                                let vstart = hedge_meta
                                    .as_ref()
                                    .map(|h| h.start_vt)
                                    .or(vs.map(|v| v.start_vt))
                                    .unwrap_or(v_end);
                                let shape = (spec.request.cores, spec.request.gpus);
                                let e = estimates.entry(shape).or_insert((0, 0));
                                e.0 += 1;
                                e.1 += v_end.since(vstart).as_micros() as u128;
                                // Exactly the completion that makes the
                                // estimate usable: attempts of this shape
                                // placed while it was cold were never armed
                                // for a hedge check, so arm them now at the
                                // instant their virtual elapsed time crosses
                                // the threshold (mirrors the warm-up arming
                                // of the deterministic engines). Needs real
                                // sleeps, like placement-time arming.
                                if e.0 == (policy.min_samples as u64).max(1) && time_scale > 0.0 {
                                    let threshold = shape_estimate(
                                        &estimates,
                                        shape,
                                        SimDuration::ZERO,
                                        policy.min_samples,
                                    )
                                    .mul_f64(policy.threshold);
                                    let vnow = vt_now();
                                    let mut arms: Vec<(u64, SimDuration, u32)> = executing
                                        .iter()
                                        .filter_map(|(&tid, (espec, _))| {
                                            if threshold == SimDuration::ZERO
                                                || (espec.request.cores, espec.request.gpus)
                                                    != shape
                                                || !running.contains_key(&tid)
                                                || hedges.contains_key(&tid)
                                            {
                                                return None;
                                            }
                                            let vstarted = vspans
                                                .get(&tid)
                                                .map(|v| v.start_vt)
                                                .unwrap_or(vnow);
                                            let wait = threshold
                                                .as_micros()
                                                .saturating_sub(vnow.since(vstarted).as_micros());
                                            Some((
                                                tid,
                                                SimDuration::from_micros(wait.max(1)),
                                                espec.attempts,
                                            ))
                                        })
                                        .collect();
                                    arms.sort_unstable_by_key(|&(tid, _, _)| tid);
                                    for (tid, delay, attempt) in arms {
                                        timers.push((
                                            Instant::now()
                                                + Duration::from_secs_f64(
                                                    delay.as_secs_f64() * time_scale,
                                                ),
                                            Timer::HedgeCheck { id: TaskId(tid), attempt },
                                        ));
                                    }
                                }
                            }
                            if quarantine.is_some() {
                                failed_nodes.remove(&id.0);
                            }
                            if tele.enabled() {
                                let st = Stamp::dual(v_end, finished.as_micros());
                                if won_by_hedge {
                                    tele.instant(
                                        SpanCat::Hedge,
                                        "hedge-win",
                                        vs.map(|v| v.attempt).unwrap_or(SpanId::NONE),
                                        track::task(id.0),
                                        st,
                                        &[("node", alloc.node as i64)],
                                    );
                                    tele.count("hedge_wins", 1);
                                }
                                if let Some(vs) = vs {
                                    tele.end(vs.attempt, st);
                                    tele.end(vs.task, st);
                                    tele.observe(
                                        "task_run_seconds",
                                        0.0,
                                        14_400.0,
                                        48,
                                        vs.end_vt.since(vs.start_vt).as_secs_f64(),
                                    );
                                }
                                tele.count(
                                    if result.is_ok() {
                                        "tasks_completed"
                                    } else {
                                        "tasks_failed"
                                    },
                                    1,
                                );
                            }
                            deliver(
                                Completion {
                                    task: id,
                                    name: spec.name,
                                    tag: spec.tag,
                                    result,
                                    started,
                                    finished,
                                    attempts: spec.attempts,
                                    hedged: hedged_tasks.remove(&id.0),
                                },
                                v_end,
                            );
                        }
                        Some(Msg::WorkerCanceled {
                            id,
                            alloc,
                            started,
                            incarnation,
                        }) => {
                            running.remove(&id.0);
                            // A live hedge duplicate backs out too (the
                            // cancel flag blocks its commit); its HedgeLost
                            // books the waste.
                            if let Some(h) = hedges.get(&id.0) {
                                h.token.preempt();
                            }
                            let (spec, _work) =
                                executing.remove(&id.0).expect("canceled task was placed");
                            let at = now(epoch);
                            if incarnation == node_incarnation[alloc.node as usize] {
                                lock_recover(&thread_state)
                                    .profiler
                                    .attempt_wasted(&alloc, started, at);
                                scheduler.release(&alloc);
                            }
                            let vs = vspans.remove(&id.0);
                            let vcan = vs.map(|v| v.start_vt).unwrap_or(SimTime::ZERO).max(vt_now());
                            if tele.enabled() {
                                let st = Stamp::dual(vcan, at.as_micros());
                                if let Some(vs) = vs {
                                    tele.end(vs.attempt, st);
                                    tele.instant(
                                        SpanCat::Task,
                                        "canceled",
                                        vs.task,
                                        track::task(id.0),
                                        st,
                                        &[],
                                    );
                                    tele.end(vs.task, st);
                                }
                                tele.count("tasks_canceled", 1);
                            }
                            deliver(
                                Completion {
                                    task: id,
                                    name: spec.name,
                                    tag: spec.tag,
                                    result: Err(TaskError::Canceled),
                                    started,
                                    finished: at,
                                    attempts: spec.attempts,
                                    hedged: hedged_tasks.remove(&id.0),
                                },
                                vcan,
                            );
                        }
                        Some(Msg::AttemptFailed {
                            id,
                            alloc,
                            started,
                            incarnation,
                            err,
                        }) => {
                            running.remove(&id.0);
                            let at = now(epoch);
                            // Lease fencing: an eviction by the failure
                            // detector preempts the worker's sleep exactly
                            // like a crash, so it wakes reporting
                            // NodeCrashed — but the node may be healthy.
                            // Rewrite to the typed lease expiry (retryable,
                            // so the ladder requeues it elsewhere).
                            let err = if matches!(err, TaskError::NodeCrashed { .. })
                                && suspected[alloc.node as usize]
                                && !crashed[alloc.node as usize]
                            {
                                lock_recover(&thread_cstats).lease_expiries += 1;
                                if tele.enabled() {
                                    let owner = vspans
                                        .get(&id.0)
                                        .map(|v| v.attempt)
                                        .unwrap_or(SpanId::NONE);
                                    tele.instant(
                                        SpanCat::Control,
                                        "lease-expired",
                                        owner,
                                        track::task(id.0),
                                        Stamp::dual(
                                            vt_crash[alloc.node as usize],
                                            at.as_micros(),
                                        ),
                                        &[("node", alloc.node as i64)],
                                    );
                                    tele.count("lease_expiries", 1);
                                }
                                TaskError::LeaseExpired { node: alloc.node }
                            } else {
                                err
                            };
                            // Hedge interplay: if the duplicate already
                            // committed, it owns the task's outcome — this
                            // failure is absorbed and no retry fires.
                            // Otherwise fence the duplicate (it can never
                            // commit past the fence) and wake it, so the
                            // retry ladder below can safely reclaim the
                            // shared work closure.
                            let mut absorbed = false;
                            if let Some(h) = hedges.get(&id.0) {
                                let fenced = {
                                    let mut stm = lock_recover(&thread_statuses);
                                    let s = stm.entry(id.0).or_default();
                                    if s.committed {
                                        absorbed = true;
                                        false
                                    } else {
                                        s.hedge_fenced = true;
                                        true
                                    }
                                };
                                if fenced {
                                    h.token.preempt();
                                }
                            }
                            // Stale incarnation: the crash that evicted this
                            // attempt already closed its intervals and the
                            // drained pool must not see a release.
                            if incarnation == node_incarnation[alloc.node as usize] {
                                lock_recover(&thread_state)
                                    .profiler
                                    .attempt_wasted(&alloc, started, at);
                                scheduler.release(&alloc);
                            }
                            // Virtual failure instant: the modeled attempt
                            // end for injected faults and walltime expiries;
                            // the crash instant for crash evictions.
                            let vs = vspans.get(&id.0).copied();
                            let v_fail = match (&err, vs) {
                                (TaskError::NodeCrashed { node }, Some(v))
                                | (TaskError::LeaseExpired { node }, Some(v)) => {
                                    vt_crash[*node as usize].max(v.start_vt)
                                }
                                (_, Some(v)) => v.end_vt,
                                _ => vt_now(),
                            };
                            if tele.enabled() {
                                let st = Stamp::dual(v_fail, at.as_micros());
                                if let Some(v) = vs {
                                    let fname = match &err {
                                        TaskError::Injected => "fault-injected",
                                        TaskError::TimedOut { .. } => "fault-timeout",
                                        TaskError::NodeCrashed { .. } => "fault-crash",
                                        TaskError::LeaseExpired { .. } => "fault-lease-expired",
                                        _ => "fault",
                                    };
                                    tele.instant(
                                        SpanCat::Fault,
                                        fname,
                                        v.attempt,
                                        track::task(id.0),
                                        st,
                                        &[],
                                    );
                                    tele.end(v.attempt, st);
                                }
                            }
                            if absorbed {
                                // The committed duplicate will deliver; the
                                // spec stays in `executing` for it.
                                continue;
                            }
                            let (mut spec, work) =
                                executing.remove(&id.0).expect("failed task was placed");
                            if cancel_requested(id) {
                                if tele.enabled() {
                                    let st = Stamp::dual(v_fail, at.as_micros());
                                    if let Some(v) = vspans.remove(&id.0) {
                                        tele.instant(
                                            SpanCat::Task,
                                            "canceled",
                                            v.task,
                                            track::task(id.0),
                                            st,
                                            &[],
                                        );
                                        tele.end(v.task, st);
                                    }
                                    tele.count("tasks_canceled", 1);
                                } else {
                                    vspans.remove(&id.0);
                                }
                                deliver(
                                    Completion {
                                        task: id,
                                        name: spec.name,
                                        tag: spec.tag,
                                        result: Err(TaskError::Canceled),
                                        started,
                                        finished: at,
                                        attempts: spec.attempts,
                                        hedged: hedged_tasks.remove(&id.0),
                                    },
                                    v_fail,
                                );
                                continue;
                            }
                            // Quarantine: record the failing node. A task
                            // failing on enough *distinct* nodes is poisoned
                            // — the input, not the hardware, is the likely
                            // culprit, and retrying it elsewhere is waste.
                            let node = alloc.node;
                            let poisoned = match quarantine {
                                Some(q) => {
                                    let nodes = failed_nodes.entry(id.0).or_default();
                                    if !nodes.contains(&node) {
                                        nodes.push(node);
                                    }
                                    nodes.len() as u32 >= q.distinct_nodes
                                }
                                None => false,
                            };
                            if !poisoned && spec.attempts < retry.max_retries {
                                spec.attempts += 1;
                                // Reclaim the shared work closure: the hedge
                                // is fenced (or never existed), so nobody
                                // else can take it now.
                                spec.work = lock_recover(&work).take();
                                lock_recover(&thread_state).profiler.note_retry();
                                if tele.enabled() {
                                    tele.count("retries", 1);
                                }
                                let delay = retry.backoff(spec.attempts, &mut backoff_rng);
                                let fire_at = Instant::now()
                                    + Duration::from_secs_f64(delay.as_secs_f64() * time_scale);
                                timers.push((
                                    fire_at,
                                    Timer::Retry {
                                        id,
                                        spec,
                                        vt: v_fail + delay,
                                    },
                                ));
                            } else {
                                let distinct = failed_nodes
                                    .remove(&id.0)
                                    .map(|v| v.len() as u32)
                                    .unwrap_or(0);
                                let err = if poisoned {
                                    // Poison verdict: bump the shape class's
                                    // breaker count and surface a typed
                                    // terminal error.
                                    let shape = (spec.request.cores, spec.request.gpus);
                                    let count = {
                                        let c = shape_poison.entry(shape).or_insert(0);
                                        *c += 1;
                                        *c
                                    };
                                    if tele.enabled() {
                                        let st = Stamp::dual(v_fail, at.as_micros());
                                        let owner =
                                            vspans.get(&id.0).map(|v| v.task).unwrap_or(SpanId::NONE);
                                        tele.instant(
                                            SpanCat::Quarantine,
                                            "poisoned",
                                            owner,
                                            track::task(id.0),
                                            st,
                                            &[("distinct_nodes", distinct as i64)],
                                        );
                                        if quarantine
                                            .is_some_and(|q| q.shape_trip > 0 && count == q.shape_trip)
                                        {
                                            tele.instant(
                                                SpanCat::Quarantine,
                                                "circuit-open",
                                                SpanId::NONE,
                                                track::FAULT,
                                                st,
                                                &[
                                                    ("cores", shape.0 as i64),
                                                    ("gpus", shape.1 as i64),
                                                ],
                                            );
                                        }
                                        tele.count("tasks_poisoned", 1);
                                    }
                                    TaskError::Poisoned {
                                        distinct_nodes: distinct,
                                    }
                                } else {
                                    err
                                };
                                if tele.enabled() {
                                    let st = Stamp::dual(v_fail, at.as_micros());
                                    if let Some(v) = vspans.remove(&id.0) {
                                        tele.end(v.task, st);
                                    }
                                    tele.count("tasks_failed", 1);
                                } else {
                                    vspans.remove(&id.0);
                                }
                                deliver(
                                    Completion {
                                        task: id,
                                        name: spec.name,
                                        tag: spec.tag,
                                        result: Err(err),
                                        started,
                                        finished: at,
                                        attempts: spec.attempts,
                                        hedged: hedged_tasks.remove(&id.0),
                                    },
                                    v_fail,
                                );
                            }
                        }
                        Some(Msg::HedgeLost {
                            id,
                            alloc,
                            started,
                            incarnation,
                            hedge: was_hedge,
                        }) => {
                            if was_hedge {
                                hedges.remove(&id.0);
                            } else {
                                running.remove(&id.0);
                            }
                            let at = now(epoch);
                            // Stale incarnation: the crash that evicted this
                            // side already booked its occupancy.
                            if incarnation == node_incarnation[alloc.node as usize] {
                                lock_recover(&thread_state)
                                    .profiler
                                    .attempt_hedge_wasted(&alloc, started, at);
                                scheduler.release(&alloc);
                            }
                            if tele.enabled() {
                                let owner =
                                    vspans.get(&id.0).map(|v| v.attempt).unwrap_or(SpanId::NONE);
                                tele.instant(
                                    SpanCat::Hedge,
                                    "hedge-lose",
                                    owner,
                                    track::task(id.0),
                                    Stamp::dual(vt_now(), at.as_micros()),
                                    &[("node", alloc.node as i64)],
                                );
                                tele.count("hedge_losses", 1);
                            }
                        }
                    }
                }
            })
            .expect("spawn scheduler thread");

        ThreadedBackend {
            tx,
            completion_rx,
            state,
            statuses,
            unfinished,
            inflight,
            held,
            epoch,
            next_id: 0,
            scheduler_thread: Some(scheduler_thread),
            node,
            vt_watermark,
            cstats,
            telemetry,
        }
    }

    /// The node this backend schedules over.
    pub fn node(&self) -> &crate::resources::NodeSpec {
        &self.node
    }

}

/// How a worker's commit point resolved.
enum CommitOutcome {
    /// This side owns the outcome and will deliver the result.
    Committed,
    /// A cancel was acknowledged before the commit point.
    Canceled,
    /// The racing duplicate (or a fence) got there first.
    Lost,
}

/// One placed attempt, on its own worker thread: sleep out the (scaled)
/// placement-computed span, realize the fault verdict decided at placement,
/// then — only past the commit point — take and run the shared work closure.
///
/// Both a main attempt and its hedged duplicate run this body; `hedge`
/// selects which side of the commit race this worker is. The work closure
/// lives behind a shared `Mutex<Option<..>>` so exactly one of main, hedge,
/// or the retry ladder can claim it.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    id: TaskId,
    alloc: Allocation,
    started: SimTime,
    incarnation: u64,
    work: Arc<Mutex<Option<TaskWork>>>,
    span: SimDuration,
    fail: Option<TaskError>,
    hedge: bool,
    time_scale: f64,
    token: &SleepToken,
    statuses: &StatusMap,
    done_tx: &Sender<Msg>,
) {
    let preempted = if time_scale > 0.0 {
        !token.sleep(Duration::from_secs_f64(span.as_secs_f64() * time_scale))
    } else {
        false
    };
    if preempted {
        if hedge {
            // A hedge is only ever preempted when it lost the race (fenced
            // by a main failure, beaten by a main commit, or its node
            // crashed — the crash handler books that occupancy itself, and
            // the stale-incarnation guard makes the release a no-op).
            let _ = done_tx.send(Msg::HedgeLost {
                id,
                alloc,
                started,
                incarnation,
                hedge: true,
            });
            return;
        }
        let (canceled, committed) = {
            let st = lock_recover(statuses);
            st.get(&id.0)
                .map(|s| (s.cancel_requested, s.committed))
                .unwrap_or((false, false))
        };
        let msg = if canceled {
            Msg::WorkerCanceled {
                id,
                alloc,
                started,
                incarnation,
            }
        } else if committed {
            // The hedged duplicate won; this main attempt is the loser.
            Msg::HedgeLost {
                id,
                alloc,
                started,
                incarnation,
                hedge: false,
            }
        } else {
            let node = alloc.node;
            Msg::AttemptFailed {
                id,
                alloc,
                started,
                incarnation,
                err: TaskError::NodeCrashed { node },
            }
        };
        let _ = done_tx.send(msg);
        return;
    }
    if let Some(err) = fail {
        let _ = done_tx.send(Msg::AttemptFailed {
            id,
            alloc,
            started,
            incarnation,
            err,
        });
        return;
    }
    // Commit point: past this, the attempt WILL deliver its result, so a
    // concurrent cancel() can no longer be acknowledged with `true` and the
    // racing duplicate (if any) can no longer win.
    let outcome = {
        let mut st = lock_recover(statuses);
        let s = st.entry(id.0).or_default();
        if hedge {
            if s.cancel_requested || s.committed || s.hedge_fenced {
                CommitOutcome::Lost
            } else {
                s.committed = true;
                CommitOutcome::Committed
            }
        } else if s.cancel_requested {
            CommitOutcome::Canceled
        } else if s.committed {
            CommitOutcome::Lost
        } else {
            s.committed = true;
            CommitOutcome::Committed
        }
    };
    match outcome {
        CommitOutcome::Canceled => {
            let _ = done_tx.send(Msg::WorkerCanceled {
                id,
                alloc,
                started,
                incarnation,
            });
            return;
        }
        CommitOutcome::Lost => {
            let _ = done_tx.send(Msg::HedgeLost {
                id,
                alloc,
                started,
                incarnation,
                hedge,
            });
            return;
        }
        CommitOutcome::Committed => {}
    }
    let result = match lock_recover(&work).take() {
        Some(w) => match catch_unwind(AssertUnwindSafe(w)) {
            Ok(out) => Ok(Some(out)),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".to_string());
                Err(TaskError::WorkPanicked(msg))
            }
        },
        None => Ok(None),
    };
    let _ = done_tx.send(Msg::WorkerDone {
        id,
        alloc,
        started,
        incarnation,
        hedge,
        result,
    });
}

impl ExecutionBackend for ThreadedBackend {
    fn submit(&mut self, desc: TaskDescription) -> TaskId {
        assert!(
            desc.request.fits_node(&self.node),
            "request {} can never fit node {}",
            desc.request,
            self.node
        );
        let id = TaskId(self.next_id);
        self.next_id += 1;
        lock_recover(&self.statuses)
            .insert(id.0, TaskStatus::default());
        // Virtual submit instant: the completion watermark. A client that
        // just consumed a completion and submits a follow-up queues it, on
        // the virtual clock, exactly when the simulated backend would.
        let vt_queued = SimTime::from_micros(self.vt_watermark.load(Ordering::SeqCst));
        let (task_span, queue_span) = if self.telemetry.enabled() {
            let st = Stamp::dual(vt_queued, self.now().as_micros());
            let tr = track::task(id.0);
            let task_span = self.telemetry.span(
                SpanCat::Task,
                &desc.name,
                SpanId::NONE,
                tr,
                st,
                &[("task", id.0 as i64), ("priority", desc.priority as i64)],
            );
            let queue_span = self.telemetry.span(
                SpanCat::Queue,
                "queue",
                task_span,
                tr,
                st,
                &[("attempt", 0)],
            );
            self.telemetry.count("tasks_submitted", 1);
            (task_span, queue_span)
        } else {
            (SpanId::NONE, SpanId::NONE)
        };
        self.unfinished.fetch_add(1, Ordering::SeqCst);
        self.inflight.fetch_add(1, Ordering::SeqCst);
        if self.telemetry.enabled() {
            self.telemetry
                .gauge("in_flight", self.inflight.load(Ordering::SeqCst) as f64);
        }
        self.tx
            .send(Msg::Submit {
                id,
                spec: TaskSpec {
                    name: desc.name,
                    tag: desc.tag,
                    request: desc.request,
                    priority: desc.priority,
                    duration: desc.duration,
                    gpu_busy_fraction: desc.gpu_busy_fraction,
                    kind: desc.kind,
                    walltime: desc.walltime,
                    attempts: 0,
                    work: desc.work,
                },
                vt_queued,
                task_span,
                queue_span,
            })
            .expect("scheduler thread alive");
        id
    }

    fn next_completion(&mut self) -> Option<Completion> {
        loop {
            if let Ok(c) = self.completion_rx.try_recv() {
                return Some(c);
            }
            // Held tasks will never complete: once they are all that
            // remains, the drain is finished.
            if self.unfinished.load(Ordering::SeqCst) <= self.held.load(Ordering::SeqCst) {
                return None;
            }
            match self.completion_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(c) => return Some(c),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn in_flight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    fn utilization(&self) -> UtilizationReport {
        lock_recover(&self.state).profiler.report(self.now())
    }

    fn phase_breakdown(&self) -> PhaseBreakdown {
        lock_recover(&self.state).breakdown
    }

    fn held_tasks(&self) -> usize {
        self.held.load(Ordering::SeqCst)
    }

    fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    fn virtual_now(&self) -> SimTime {
        SimTime::from_micros(self.vt_watermark.load(Ordering::SeqCst))
    }

    fn stamp(&self) -> Stamp {
        Stamp::dual(self.virtual_now(), self.now().as_micros())
    }

    fn control_stats(&self) -> ControlStats {
        *lock_recover(&self.cstats)
    }

    fn cancel(&mut self, id: TaskId) -> bool {
        // Set the cancel-requested flag under the same lock the worker's
        // commit point takes: once this returns `true`, no worker can
        // commit, so an `Ok` completion is impossible.
        {
            let mut st = lock_recover(&self.statuses);
            match st.get_mut(&id.0) {
                Some(s) if !s.terminal && !s.committed && !s.cancel_requested => {
                    s.cancel_requested = true;
                }
                _ => return false,
            }
        }
        self.tx.send(Msg::Cancel { id }).is_ok()
    }
}

impl Drop for ThreadedBackend {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(handle) = self.scheduler_thread.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultPlan, RetryPolicy, ScriptedCrash};
    use crate::resources::{NodeSpec, ResourceRequest};
    use crate::scheduler::PlacementPolicy;

    fn config(cores: u32, gpus: u32) -> PilotConfig {
        PilotConfig {
            node: NodeSpec::new(cores, gpus, 64),
            nodes: 1,
            policy: PlacementPolicy::Backfill,
            bootstrap: SimDuration::from_secs(1),
            exec_setup_per_task: SimDuration::ZERO,
            seed: 0,
        }
    }

    fn task(name: &str, cores: u32) -> TaskDescription {
        TaskDescription::new(
            name,
            ResourceRequest::cores(cores),
            SimDuration::from_secs(1),
        )
    }

    fn no_backoff(retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries: retries,
            ..RetryPolicy::none()
        }
    }

    #[test]
    fn work_actually_executes_and_returns() {
        let mut b = ThreadedBackend::new(config(2, 0));
        b.submit(task("t", 1).with_work(|| 6 * 7));
        let c = b.next_completion().unwrap();
        assert_eq!(c.output::<i32>(), 42);
        assert!(b.next_completion().is_none());
    }

    #[test]
    fn all_submissions_complete() {
        let mut b = ThreadedBackend::new(config(4, 0));
        for i in 0..20u64 {
            b.submit(task(&format!("t{i}"), 1).with_work(move || i * 2));
        }
        let mut outs: Vec<u64> = Vec::new();
        while let Some(c) = b.next_completion() {
            outs.push(c.output::<u64>());
        }
        outs.sort_unstable();
        assert_eq!(outs, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn concurrency_is_real() {
        // Two 1-core tasks on a 2-core node, each sleeping 200ms, should
        // overlap: total elapsed well under 400ms.
        let mut b = ThreadedBackend::new(config(2, 0));
        let t0 = Instant::now();
        for _ in 0..2 {
            b.submit(task("sleep", 1).with_work(|| {
                std::thread::sleep(Duration::from_millis(200));
            }));
        }
        while b.next_completion().is_some() {}
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(380),
            "tasks did not overlap: {elapsed:?}"
        );
    }

    #[test]
    fn slot_limits_are_enforced() {
        // Two 1-core sleep tasks on a ONE-core node must serialize.
        let mut b = ThreadedBackend::new(config(1, 0));
        let t0 = Instant::now();
        for _ in 0..2 {
            b.submit(task("sleep", 1).with_work(|| {
                std::thread::sleep(Duration::from_millis(150));
            }));
        }
        while b.next_completion().is_some() {}
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(290),
            "tasks overlapped on one core: {elapsed:?}"
        );
    }

    #[test]
    fn panicking_task_does_not_poison_the_backend() {
        let mut b = ThreadedBackend::new(config(1, 0));
        b.submit(task("boom", 1).with_work(|| -> i32 { panic!("threaded kaboom") }));
        b.submit(task("ok", 1).with_work(|| 5i32));
        let mut saw_err = false;
        let mut saw_ok = false;
        while let Some(c) = b.next_completion() {
            match c.result {
                Err(TaskError::WorkPanicked(ref m)) => {
                    assert!(m.contains("threaded kaboom"));
                    saw_err = true;
                }
                Ok(_) => saw_ok = true,
                Err(ref e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_err && saw_ok);
    }

    #[test]
    fn time_scale_dilates_durations() {
        let cfg = PilotConfig {
            bootstrap: SimDuration::from_secs(1),
            ..config(1, 0)
        };
        let mut b = RuntimeConfig::new(cfg).time_scale(0.05).threaded();
        let t0 = Instant::now();
        b.submit(TaskDescription::new(
            "timed",
            ResourceRequest::cores(1),
            SimDuration::from_secs(2),
        ));
        while b.next_completion().is_some() {}
        // bootstrap 1s + task 2s at 5% scale ≈ 150ms.
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(120), "{elapsed:?}");
        assert!(elapsed < Duration::from_millis(600), "{elapsed:?}");
    }

    #[test]
    fn deadline_holds_overrunning_tasks_and_drains() {
        // At 1% time scale: bootstrap 1s → 10ms, short tasks 3s → 30ms, the
        // long task 100s → 1s. With a 200ms allocation the long task can
        // never fit, while both short ones finish with ample margin.
        let cfg = PilotConfig {
            bootstrap: SimDuration::from_secs(1),
            ..config(1, 0)
        };
        let mut b = RuntimeConfig::new(cfg)
            .time_scale(0.01)
            .deadline(SimTime::from_micros(200_000))
            .threaded();
        b.submit(task("short-a", 1).with_work(|| 1u64));
        b.submit(task("short-b", 1).with_work(|| 2u64));
        b.submit(
            TaskDescription::new("long", ResourceRequest::cores(1), SimDuration::from_secs(100))
                .with_work(|| 3u64),
        );
        let mut done = Vec::new();
        while let Some(c) = b.next_completion() {
            assert!(c.result.is_ok());
            done.push(c.name);
        }
        done.sort();
        assert_eq!(done, vec!["short-a".to_string(), "short-b".into()]);
        assert_eq!(b.held_tasks(), 1);
        assert_eq!(b.in_flight(), 1, "held tasks stay in flight");
    }

    #[test]
    fn expired_deadline_at_zero_time_scale_holds_everything() {
        let mut b = RuntimeConfig::new(config(2, 0)).deadline(SimTime::ZERO).threaded();
        b.submit(task("a", 1).with_work(|| 1u64));
        b.submit(task("b", 1).with_work(|| 2u64));
        assert!(b.next_completion().is_none());
        assert_eq!(b.held_tasks(), 2);
    }

    #[test]
    fn cancel_of_queued_task_delivers_cancelled_completion() {
        // One core: first task occupies it (sleeping), second queues.
        let mut b = ThreadedBackend::new(config(1, 0));
        b.submit(task("holder", 1).with_work(|| {
            std::thread::sleep(Duration::from_millis(150));
        }));
        // Give the scheduler a moment to place the holder.
        std::thread::sleep(Duration::from_millis(30));
        let queued = b.submit(task("victim", 1).with_work(|| ()));
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.cancel(queued));
        let mut cancelled = 0;
        let mut finished = 0;
        while let Some(c) = b.next_completion() {
            match c.result {
                Err(TaskError::Canceled) => {
                    assert_eq!(c.name, "victim");
                    cancelled += 1;
                }
                Ok(_) => finished += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!((cancelled, finished), (1, 1));
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn utilization_is_tracked() {
        let mut b = ThreadedBackend::new(config(2, 0));
        b.submit(task("t", 2).with_work(|| {
            std::thread::sleep(Duration::from_millis(100));
        }));
        while b.next_completion().is_some() {}
        let r = b.utilization();
        assert_eq!(r.tasks, 1);
        assert!(r.cpu > 0.0, "some busy time must be recorded");
    }

    #[test]
    fn acknowledged_cancel_never_yields_an_ok_completion() {
        // Hammer the former race: submit + immediate cancel, many rounds.
        // Whenever cancel() acknowledges with `true`, the task's completion
        // must NOT be Ok — the commit-point flag makes this a guarantee.
        for round in 0..60u64 {
            let mut b = ThreadedBackend::new(config(1, 0));
            let id = b.submit(task("racy", 1).with_work(move || round));
            let acknowledged = b.cancel(id);
            let c = b.next_completion().unwrap();
            assert_eq!(c.task, id);
            if acknowledged {
                assert!(
                    matches!(c.result, Err(TaskError::Canceled)),
                    "round {round}: acknowledged cancel produced {:?}",
                    c.result
                );
            }
            assert!(b.next_completion().is_none());
            assert_eq!(b.in_flight(), 0);
        }
    }

    #[test]
    fn cancel_after_completion_is_refused() {
        let mut b = ThreadedBackend::new(config(1, 0));
        let id = b.submit(task("t", 1).with_work(|| 1u32));
        let c = b.next_completion().unwrap();
        assert!(c.result.is_ok());
        assert!(!b.cancel(id), "terminal task cannot be cancelled");
        assert!(!b.cancel(TaskId(999)), "unknown task cannot be cancelled");
    }

    #[test]
    fn injected_transient_faults_exhaust_the_budget() {
        let plan = FaultPlan::new(
            FaultConfig {
                task_failure_rate: 1.0,
                ..FaultConfig::none()
            },
            1,
        );
        let mut b = RuntimeConfig::new(config(2, 0)).faults(plan, no_backoff(2)).threaded();
        b.submit(task("doomed", 1).with_work(|| 1u32));
        let c = b.next_completion().unwrap();
        assert_eq!(c.attempts, 2);
        assert!(matches!(c.result, Err(TaskError::Injected)));
        let r = b.utilization();
        assert_eq!(r.retries, 2);
        assert_eq!(r.tasks, 0, "no useful execution");
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn retries_recover_partial_fault_rates() {
        let plan = FaultPlan::new(
            FaultConfig {
                task_failure_rate: 0.5,
                ..FaultConfig::none()
            },
            11,
        );
        let mut b = RuntimeConfig::new(config(4, 0)).faults(plan, no_backoff(8)).threaded();
        for i in 0..12u64 {
            b.submit(task(&format!("t{i}"), 1).with_work(move || i));
        }
        let mut oks = 0;
        let mut retried = 0;
        while let Some(c) = b.next_completion() {
            assert!(c.attempts <= 8);
            if c.attempts > 0 {
                retried += 1;
            }
            if c.result.is_ok() {
                oks += 1;
            }
        }
        assert_eq!(oks, 12);
        assert!(retried > 0);
    }

    #[test]
    fn walltime_expiry_times_out_without_running_work() {
        let mut b = ThreadedBackend::new(config(2, 0));
        b.submit(
            TaskDescription::new(
                "straggler",
                ResourceRequest::cores(1),
                SimDuration::from_secs(100),
            )
            .with_walltime(SimDuration::from_secs(50))
            .with_work(|| panic!("work must not run on a timed-out attempt")),
        );
        let c = b.next_completion().unwrap();
        assert_eq!(
            c.result.unwrap_err(),
            TaskError::TimedOut {
                limit: SimDuration::from_secs(50)
            }
        );
    }

    #[test]
    fn scripted_node_crash_requeues_and_completes() {
        // 2 nodes × 4 cores at 1% time scale. Node 0 crashes 30 (virtual)
        // seconds in — mid-sleep of its resident task — and recovers after
        // 40 s; the evicted task retries and the whole workload completes.
        let plan = FaultPlan::new(
            FaultConfig {
                scripted_crashes: vec![ScriptedCrash {
                    node: 0,
                    at: SimTime::from_micros(30_000_000),
                    outage: SimDuration::from_secs(40),
                }],
                ..FaultConfig::none()
            },
            0,
        );
        let cfg = PilotConfig {
            nodes: 2,
            bootstrap: SimDuration::from_secs(1),
            ..config(4, 0)
        };
        let mut b = RuntimeConfig::new(cfg)
            .time_scale(0.01)
            .faults(plan, no_backoff(3))
            .threaded();
        for i in 0..2u64 {
            b.submit(
                TaskDescription::new(
                    format!("t{i}"),
                    ResourceRequest::cores(4),
                    SimDuration::from_secs(100),
                )
                .with_work(move || i),
            );
        }
        let mut completions = Vec::new();
        while let Some(c) = b.next_completion() {
            completions.push(c);
        }
        assert_eq!(completions.len(), 2);
        assert!(
            completions.iter().all(|c| c.result.is_ok()),
            "requeued task must finish: {completions:?}"
        );
        let evicted = completions.iter().filter(|c| c.attempts > 0).count();
        assert_eq!(evicted, 1, "exactly the node-0 resident was evicted");
        let r = b.utilization();
        assert_eq!(r.retries, 1);
        assert!(r.wasted_core_seconds > 0.0);
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn telemetry_records_spans_and_models_the_virtual_clock() {
        use impress_telemetry::{check_nesting, Telemetry};
        let (tele, rec) = Telemetry::recording(4096);
        let cfg = PilotConfig {
            exec_setup_per_task: SimDuration::from_secs(2),
            ..config(1, 0)
        };
        // One core: the two tasks serialize, so the modeled virtual clock
        // is fully determined: bootstrap 1s, then two (2s setup + 5s run)
        // attempts back to back → watermark 15s.
        let mut b = RuntimeConfig::new(cfg).telemetry(tele).threaded();
        for i in 0..2u64 {
            b.submit(
                TaskDescription::new(
                    format!("t{i}"),
                    ResourceRequest::cores(1),
                    SimDuration::from_secs(5),
                )
                .with_work(move || i),
            );
        }
        while b.next_completion().is_some() {}
        assert_eq!(b.virtual_now(), SimTime::from_micros(15_000_000));
        let stamp = b.stamp();
        assert_eq!(stamp.virt, SimTime::from_micros(15_000_000));
        assert!(stamp.wall.is_some(), "threaded stamps carry a wall clock");
        let events = rec.events();
        check_nesting(&events).expect("spans nest");
        assert!(
            events.iter().all(|e| e.stamp().wall.is_some()),
            "every threaded event is dual-stamped"
        );
        let snap = b.telemetry().snapshot();
        assert_eq!(snap.counter("tasks_submitted"), Some(2));
        assert_eq!(snap.counter("tasks_completed"), Some(2));
        assert_eq!(snap.counter("placements"), Some(2));
        let hist = snap.histogram("task_run_seconds").expect("recorded");
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 14.0, "two modeled 7s (setup+run) attempts");
    }

    #[test]
    fn poisoned_sleep_token_still_preempts_and_wakes() {
        let token = Arc::new(SleepToken::new());
        let t2 = token.clone();
        // Poison the token's mutex: a thread panics while holding it.
        let _ = std::thread::spawn(move || {
            let _guard = t2.preempted.lock().unwrap();
            panic!("poison the token");
        })
        .join();
        assert!(token.preempted.is_poisoned());
        // Recovery: preempt() must neither panic nor lose the flag, and a
        // sleeper must still observe the preemption immediately.
        token.preempt();
        assert!(
            !token.sleep(Duration::from_secs(5)),
            "preempt flag was lost to the poisoned lock"
        );
    }

    #[test]
    fn poisoned_status_map_does_not_wedge_the_backend() {
        let mut b = ThreadedBackend::new(config(1, 0));
        let statuses = Arc::clone(&b.statuses);
        let _ = std::thread::spawn(move || {
            let _guard = statuses.lock().unwrap();
            panic!("poison the status map");
        })
        .join();
        assert!(b.statuses.is_poisoned());
        // Submission, execution, commit and delivery all cross the status
        // lock; every site must recover the guard instead of panicking.
        b.submit(task("t", 1).with_work(|| 7i32));
        let c = b.next_completion().expect("completion despite poisoned lock");
        assert!(!c.hedged);
        assert_eq!(c.output::<i32>(), 7);
        assert!(b.next_completion().is_none());
    }

    #[test]
    fn scripted_slowdowns_dilate_the_modeled_clock() {
        use crate::fault::ScriptedSlowdown;
        let fc = FaultConfig {
            scripted_slowdowns: vec![ScriptedSlowdown {
                node: 0,
                at: SimTime::ZERO,
                duration: SimDuration::from_secs(1_000),
                factor: 3.0,
            }],
            ..FaultConfig::none()
        };
        let mut b = RuntimeConfig::new(config(1, 0))
            .faults(FaultPlan::new(fc, 0), RetryPolicy::none())
            .threaded();
        b.submit(task("slow", 1).with_work(|| ()));
        assert!(b.next_completion().unwrap().result.is_ok());
        // Bootstrap 1s, then the 1s nominal span runs 3x slower inside the
        // window: the modeled clock lands on exactly 4s.
        assert_eq!(b.virtual_now(), SimTime::from_micros(4_000_000));
    }

    #[test]
    fn hedged_duplicate_rescues_a_straggler() {
        use crate::fault::{HedgePolicy, ScriptedSlowdown};
        // Two nodes; node 0 degrades 20x right as the warmups finish (v=2s).
        // The victim placed there would run 20s virtual; with k=2 hedging
        // the duplicate lands on the healthy node and wins.
        let fc = FaultConfig {
            scripted_slowdowns: vec![ScriptedSlowdown {
                node: 0,
                at: SimTime::from_micros(2_000_000),
                duration: SimDuration::from_secs(10_000),
                factor: 20.0,
            }],
            ..FaultConfig::none()
        };
        let cfg = PilotConfig {
            nodes: 2,
            ..config(1, 0)
        };
        let mut b = RuntimeConfig::new(cfg)
            .faults(FaultPlan::new(fc, 1), RetryPolicy::none())
            .hedge(HedgePolicy {
                threshold: 2.0,
                min_samples: 1,
            })
            .time_scale(0.01)
            .threaded();
        // Warmups prime the (1 core, 0 gpu) shape estimate at ~1s.
        for i in 0..2u64 {
            b.submit(task(&format!("w{i}"), 1).with_work(move || i));
        }
        for _ in 0..2 {
            assert!(b.next_completion().unwrap().result.is_ok());
        }
        // Two victims, one per node: only the one on the degraded node
        // exceeds 2x the estimate and gets a duplicate.
        for i in 0..2u64 {
            b.submit(task(&format!("v{i}"), 1).with_work(move || i));
        }
        let mut hedged = 0u32;
        for _ in 0..2 {
            let c = b.next_completion().unwrap();
            assert!(c.result.is_ok());
            hedged += c.hedged as u32;
        }
        assert_eq!(hedged, 1, "exactly the straggler is rescued by its hedge");
        assert!(b.next_completion().is_none());
        // The losing main wakes and reports asynchronously; poll for its
        // hedge-waste booking rather than racing it.
        let t0 = Instant::now();
        loop {
            let util = b.utilization();
            if util.hedges == 1 && util.hedge_wasted_core_seconds > 0.0 {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "hedge waste never booked: {util:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn quarantine_poisons_after_distinct_node_failures() {
        use crate::fault::QuarantinePolicy;
        let fc = FaultConfig {
            task_failure_rate: 1.0,
            ..FaultConfig::none()
        };
        let cfg = PilotConfig {
            nodes: 2,
            ..config(1, 0)
        };
        let mut b = RuntimeConfig::new(cfg)
            .faults(FaultPlan::new(fc, 7), no_backoff(5))
            .quarantine(QuarantinePolicy::distinct(2))
            .threaded();
        b.submit(task("poison", 1).with_work(|| ()));
        let c = b.next_completion().unwrap();
        match &c.result {
            Err(TaskError::Poisoned { distinct_nodes }) => assert_eq!(*distinct_nodes, 2),
            Err(e) => panic!("expected a poison verdict, got {e:?}"),
            Ok(_) => panic!("expected a poison verdict, got Ok"),
        }
        assert!(c.result.as_ref().err().unwrap().is_quarantined());
        assert_eq!(
            c.attempts, 1,
            "retry steering reaches the verdict in exactly 2 attempts, \
             not the full retry budget"
        );
        assert!(b.next_completion().is_none());
    }

    #[test]
    fn partition_triggers_suspicion_lease_expiry_and_resync() {
        use crate::fault::ScriptedPartition;
        // Both nodes are partitioned from the coordinator for 8 virtual
        // seconds: their heartbeats vanish, the detector suspects them
        // (timeout 3 s), the running attempt's lease expires and it
        // requeues. The heal delivers heartbeats again, both nodes
        // resync, and the retried attempt completes.
        let fc = FaultConfig {
            link: crate::fault::LinkFaults {
                heartbeat_interval: Some(SimDuration::from_secs(1)),
                heartbeat_timeout: Some(SimDuration::from_secs(3)),
                partitions: vec![ScriptedPartition {
                    first_node: 0,
                    last_node: 1,
                    at: SimTime::ZERO,
                    duration: SimDuration::from_secs(8),
                }],
                ..crate::fault::LinkFaults::none()
            },
            ..FaultConfig::none()
        };
        let cfg = PilotConfig {
            nodes: 2,
            ..config(2, 0)
        };
        let mut b = RuntimeConfig::new(cfg)
            .faults(FaultPlan::new(fc, 3), no_backoff(3))
            .time_scale(1e-3)
            .threaded();
        b.submit(
            TaskDescription::new("long", ResourceRequest::cores(2), SimDuration::from_secs(100))
                .with_work(|| 7i32),
        );
        let c = b.next_completion().unwrap();
        assert_eq!(c.attempts, 1, "the lease expiry consumed one retry");
        assert_eq!(c.output::<i32>(), 7);
        assert!(b.next_completion().is_none());
        let cs = b.control_stats();
        assert!(cs.heartbeats_sent > 0, "chains never ticked: {cs:?}");
        assert!(
            cs.heartbeats_delivered > 0,
            "post-heal heartbeats never arrived: {cs:?}"
        );
        assert!(cs.suspicions >= 1, "partition never suspected: {cs:?}");
        assert!(cs.lease_expiries >= 1, "victim kept its lease: {cs:?}");
        assert!(cs.resyncs >= 1, "heal never resynced: {cs:?}");
    }

    #[test]
    fn control_stats_stay_zero_without_link_faults() {
        let mut b = RuntimeConfig::new(config(2, 0))
            .time_scale(1e-3)
            .threaded();
        b.submit(task("t", 1).with_work(|| 1i32));
        while b.next_completion().is_some() {}
        assert_eq!(b.control_stats(), ControlStats::default());
    }

    #[test]
    fn repeated_create_drop_with_live_timers_shuts_down_cleanly() {
        use crate::fault::HedgePolicy;
        // A backend dropped with heartbeat chains ticking, retry backoffs
        // pending, hedge checks armed and workers mid-sleep must join its
        // scheduler thread promptly instead of hanging or panicking. The
        // in-flight completions are simply never popped.
        for round in 0..12u64 {
            let fc = FaultConfig {
                task_failure_rate: 0.5,
                link: crate::fault::LinkFaults {
                    heartbeat_interval: Some(SimDuration::from_micros(50_000)),
                    heartbeat_timeout: Some(SimDuration::from_micros(200_000)),
                    ..crate::fault::LinkFaults::none()
                },
                ..FaultConfig::none()
            };
            let cfg = PilotConfig {
                nodes: 2,
                seed: round,
                ..config(2, 0)
            };
            let mut b = RuntimeConfig::new(cfg)
                .faults(FaultPlan::new(fc, round), RetryPolicy::retries(3))
                .hedge(HedgePolicy {
                    threshold: 1.2,
                    min_samples: 1,
                })
                .time_scale(1e-3)
                .threaded();
            for i in 0..6u64 {
                b.submit(task(&format!("t{i}"), 1).with_work(move || i));
            }
            if round % 3 == 0 {
                // Sometimes pop one completion first, sometimes drop with
                // everything still in flight.
                let _ = b.next_completion();
            }
            drop(b);
        }
    }
}
