//! # impress-pilot
//!
//! A pilot-job runtime for heterogeneous (CPU + GPU) task execution — the
//! role RADICAL-Pilot plays in the IMPRESS paper (§II-D). A *pilot* acquires
//! a resource allocation (here: a virtual cluster node) once, then schedules
//! many small tasks onto it directly, avoiding per-task batch-queue waits
//! and enabling the concurrent, asynchronous execution the paper's adaptive
//! protocol needs.
//!
//! Components:
//!
//! * [`resources`] — node specification and slot allocations (cores + GPUs).
//! * [`states`] — the task state model (mirrors RP's `NEW → … → DONE`),
//!   with a validated transition table.
//! * [`task`] — task descriptions: resource request, virtual cost, optional
//!   real work closure, bookkeeping tags.
//! * [`scheduler`] — slot pool plus placement policies (strict FIFO vs
//!   backfill).
//! * [`backend`] — execution backends behind one trait:
//!   [`backend::SimulatedBackend`] replays runs in deterministic virtual
//!   time on the `impress-sim` engine (used for every paper figure),
//!   [`backend::ShardedBackend`] replays the identical event stream on a
//!   sharded parallel-DES engine sized for 10k-node campaigns, and
//!   [`backend::ThreadedBackend`] executes task closures on real threads
//!   with the same slot semantics.
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]: transient
//!   task failures, hangs, node crash/recover schedules) and the
//!   [`RetryPolicy`] with which the pilot resubmits faulted attempts.
//! * [`control`] — the seeded control plane: message-layer faults
//!   ([`LinkFaults`]: drops, duplicates, delays, partitions) on
//!   coordinator↔node traffic, plus the counters behind heartbeat failure
//!   detection, lease fencing and idempotent dedup.
//! * [`pilot`] — pilot lifecycle phases (Bootstrap → Exec setup → Running,
//!   the Fig. 5 breakdown) and their timing configuration.
//! * [`profiler`] — per-device utilization accounting, distinguishing *slot
//!   occupancy* (what RP's profiler sees) from *hardware busy* time (what
//!   `nvidia-smi` sees) — the distinction behind the paper's 61% vs 1% GPU
//!   utilization gap.
//! * [`session`] — the user-facing API tying the above together.
//! * [`cluster`] — one backend shared between many consumers:
//!   [`SharedCluster`] hands out [`ClusterLease`]s (each an
//!   [`ExecutionBackend`] scoped to its own tasks, with a priority boost
//!   and a usage meter), the substrate under the multi-tenant campaign
//!   service in `impress-workflow`.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod backend;
pub mod cluster;
pub mod control;
pub mod fault;
pub mod pilot;
pub mod profiler;
pub mod resources;
pub mod runtime;
pub mod scheduler;
pub mod session;
pub mod states;
pub mod sync;
pub mod task;
pub mod timeline;

pub use backend::{Completion, ExecutionBackend, TaskError};
pub use cluster::{ClusterLease, LeaseUsage, SharedCluster};
pub use control::{ControlPlane, ControlStats, Deliveries};
pub use fault::{
    AttemptFault, FaultConfig, FaultPlan, HedgePolicy, LinkFaults, QuarantinePolicy, RetryPolicy,
    ScriptedCrash, ScriptedPartition, ScriptedSlowdown, SlowWindow,
};
pub use pilot::{PhaseBreakdown, PilotConfig, PilotPhase};
pub use profiler::{Profiler, UtilizationReport};
pub use resources::{Allocation, ClusterSpec, NodeSpec, ResourceRequest};
pub use runtime::RuntimeConfig;
pub use scheduler::{PlacementPolicy, Scheduler};
pub use session::{Observation, Session};
pub use states::TaskState;
pub use task::{TaskDescription, TaskId, TaskKind, TaskWork};
pub use timeline::{GanttRow, Timeline};
