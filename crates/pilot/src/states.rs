//! The task state model.
//!
//! Mirrors RADICAL-Pilot's task lifecycle at the granularity the IMPRESS
//! coordinator observes: a task is created (`New`), waits for slots
//! (`Scheduling`), has its execution environment prepared (`ExecSetup` —
//! the per-task sandbox/script phase Fig. 5 itemizes), runs (`Executing`),
//! and ends in exactly one terminal state. The transition table is enforced:
//! an illegal transition is a runtime-bug panic, never silent state
//! corruption.

use impress_json::{json_enum, json_struct};
use std::fmt;

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskState {
    /// Created, not yet submitted to the scheduler.
    New,
    /// Waiting for resource slots.
    Scheduling,
    /// Slots granted; execution environment being prepared.
    ExecSetup,
    /// Running on its allocation.
    Executing,
    /// Finished successfully.
    Done,
    /// Finished with an error (work panicked or reported failure).
    Failed,
    /// Cancelled before completion.
    Canceled,
}
json_enum!(TaskState {
    New,
    Scheduling,
    ExecSetup,
    Executing,
    Done,
    Failed,
    Canceled
});

impl TaskState {
    /// Whether the state is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TaskState::Done | TaskState::Failed | TaskState::Canceled
        )
    }

    /// Whether `self → next` is a legal transition.
    pub fn can_transition_to(self, next: TaskState) -> bool {
        use TaskState::*;
        matches!(
            (self, next),
            (New, Scheduling)
                | (New, Canceled)
                | (Scheduling, ExecSetup)
                | (Scheduling, Canceled)
                | (ExecSetup, Executing)
                | (ExecSetup, Canceled)
                | (Executing, Done)
                | (Executing, Failed)
                | (Executing, Canceled)
                // Requeue: a node crash or injected fault evicts a resident
                // task back to the scheduler queue for another attempt.
                | (Executing, Scheduling)
                // Shed: an open shape circuit breaker fails a task at the
                // placement grant, before its environment is prepared.
                | (Scheduling, Failed)
        )
    }

    /// The canonical forward path, for documentation and tests.
    pub const HAPPY_PATH: [TaskState; 5] = [
        TaskState::New,
        TaskState::Scheduling,
        TaskState::ExecSetup,
        TaskState::Executing,
        TaskState::Done,
    ];
}

impl fmt::Display for TaskState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskState::New => "NEW",
            TaskState::Scheduling => "SCHEDULING",
            TaskState::ExecSetup => "EXEC_SETUP",
            TaskState::Executing => "EXECUTING",
            TaskState::Done => "DONE",
            TaskState::Failed => "FAILED",
            TaskState::Canceled => "CANCELED",
        };
        f.write_str(s)
    }
}

/// A state cell that enforces the transition table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateCell {
    state: TaskState,
}
json_struct!(StateCell { state });

impl Default for StateCell {
    fn default() -> Self {
        StateCell {
            state: TaskState::New,
        }
    }
}

impl StateCell {
    /// A cell in the `New` state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current state.
    pub fn get(&self) -> TaskState {
        self.state
    }

    /// Advance to `next`, panicking on an illegal transition.
    pub fn advance(&mut self, next: TaskState) {
        assert!(
            self.state.can_transition_to(next),
            "illegal task state transition {} → {}",
            self.state,
            next
        );
        self.state = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_is_legal() {
        let mut cell = StateCell::new();
        for &next in &TaskState::HAPPY_PATH[1..] {
            cell.advance(next);
        }
        assert_eq!(cell.get(), TaskState::Done);
    }

    #[test]
    fn terminal_states_are_terminal() {
        use TaskState::*;
        for t in [Done, Failed, Canceled] {
            assert!(t.is_terminal());
            for n in [
                New, Scheduling, ExecSetup, Executing, Done, Failed, Canceled,
            ] {
                assert!(!t.can_transition_to(n), "{t} must not move to {n}");
            }
        }
        for t in [New, Scheduling, ExecSetup, Executing] {
            assert!(!t.is_terminal());
        }
    }

    #[test]
    fn cancellation_is_possible_from_every_live_state() {
        use TaskState::*;
        for t in [New, Scheduling, ExecSetup, Executing] {
            assert!(t.can_transition_to(Canceled), "{t} must be cancellable");
        }
    }

    #[test]
    fn no_skipping_states() {
        use TaskState::*;
        assert!(!New.can_transition_to(Executing));
        assert!(!New.can_transition_to(Done));
        assert!(!Scheduling.can_transition_to(Done));
        assert!(!Scheduling.can_transition_to(Executing));
        assert!(!ExecSetup.can_transition_to(Done));
    }

    #[test]
    fn failure_only_from_executing_or_breaker_shed() {
        use TaskState::*;
        assert!(Executing.can_transition_to(Failed));
        // Quarantine's circuit breaker sheds queued tasks at the placement
        // grant, so Scheduling may fail directly; earlier states cannot.
        assert!(Scheduling.can_transition_to(Failed));
        for t in [New, ExecSetup] {
            assert!(!t.can_transition_to(Failed));
        }
    }

    #[test]
    fn requeue_loops_through_scheduling() {
        use TaskState::*;
        // A crashed-node eviction sends Executing back to Scheduling, and the
        // requeued task can run the normal path again — possibly several times.
        let mut cell = StateCell::new();
        cell.advance(Scheduling);
        for _ in 0..3 {
            cell.advance(ExecSetup);
            cell.advance(Executing);
            cell.advance(Scheduling);
        }
        cell.advance(ExecSetup);
        cell.advance(Executing);
        cell.advance(Done);
        // Requeue is only legal from Executing: ExecSetup has not occupied a
        // node yet, so it has nothing to requeue.
        assert!(!ExecSetup.can_transition_to(Scheduling));
    }

    #[test]
    #[should_panic(expected = "illegal task state transition")]
    fn illegal_transition_panics() {
        let mut cell = StateCell::new();
        cell.advance(TaskState::Done);
    }

    #[test]
    fn display_matches_rp_style() {
        assert_eq!(TaskState::ExecSetup.to_string(), "EXEC_SETUP");
        assert_eq!(TaskState::Done.to_string(), "DONE");
    }
}
