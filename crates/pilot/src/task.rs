//! Task descriptions and identities.
//!
//! A task is the pilot's unit of work: a resource request, a *virtual cost*
//! (how long it occupies its slots in simulated time), an optional *work
//! closure* (the actual computation — surrogate model calls in this
//! reproduction), and bookkeeping tags linking it back to the pipeline and
//! stage that created it.
//!
//! Both backends use the same description: the simulated backend advances
//! virtual time by the cost and runs the closure at the completion instant;
//! the threaded backend runs the closure on a real thread while holding the
//! same slots.

use crate::resources::ResourceRequest;
use impress_json::{json_enum, json_struct};
use impress_sim::SimDuration;
use std::any::Any;
use std::fmt;

/// Unique task identifier within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);
json_struct!(TaskId(u64));

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task.{:06}", self.0)
    }
}

/// What kind of executable the task launches. The paper's runtime "supports
/// different types of tasks, including OpenMP, MPI, and ML tasks"; the kind
/// determines the extra launch overhead the agent pays on top of the
/// per-task exec setup (environment activation, rank wire-up, model
/// loading).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TaskKind {
    /// Single-process executable (scripts, bookkeeping).
    #[default]
    Serial,
    /// Threaded executable pinned to its cores.
    OpenMp,
    /// Multi-rank MPI launch.
    Mpi,
    /// ML inference/training: pays model-load time at launch.
    Ml,
}
json_enum!(TaskKind {
    Serial,
    OpenMp,
    Mpi,
    Ml
});

impl TaskKind {
    /// Additional launch overhead beyond the generic exec setup.
    pub fn launch_overhead(self) -> SimDuration {
        match self {
            TaskKind::Serial => SimDuration::ZERO,
            TaskKind::OpenMp => SimDuration::from_secs(5),
            TaskKind::Mpi => SimDuration::from_secs(30),
            TaskKind::Ml => SimDuration::from_secs(60),
        }
    }
}

/// The output of a task's work closure: any sendable value, downcast by the
/// layer that submitted the task (the workflow stages know their own types).
pub type TaskOutput = Box<dyn Any + Send>;

/// A task's computation.
pub type TaskWork = Box<dyn FnOnce() -> TaskOutput + Send>;

/// Everything needed to schedule and execute one task.
pub struct TaskDescription {
    /// Human-readable name (e.g. `"af2-inference"`).
    pub name: String,
    /// Pipeline/stage tag for bookkeeping and reports.
    pub tag: String,
    /// Slots required.
    pub request: ResourceRequest,
    /// Virtual time the task holds its slots.
    pub duration: SimDuration,
    /// Fraction of `duration` during which GPUs are *actually computing*
    /// (hardware utilization), as opposed to merely allocated. 1.0 for pure
    /// GPU kernels; ≈ 0.33 for AlphaFold inference with its I/O and feature
    /// processing; irrelevant when `request.gpus == 0`.
    pub gpu_busy_fraction: f64,
    /// Scheduling priority: higher places first when slots free up; ties
    /// keep submission order. The protocol uses this to keep speculative
    /// prefetch work from delaying the critical path.
    pub priority: i32,
    /// Executable kind; adds [`TaskKind::launch_overhead`] to exec setup.
    pub kind: TaskKind,
    /// Walltime limit: an attempt still running this long after its slots
    /// were granted is killed with [`crate::backend::TaskError::TimedOut`]
    /// (and retried if the pilot's retry budget allows). `None` = unlimited.
    pub walltime: Option<SimDuration>,
    /// The computation to run, if any. `None` models a pure time cost.
    pub work: Option<TaskWork>,
}

impl fmt::Debug for TaskDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskDescription")
            .field("name", &self.name)
            .field("tag", &self.tag)
            .field("request", &self.request)
            .field("duration", &self.duration.to_string())
            .field("gpu_busy_fraction", &self.gpu_busy_fraction)
            .field("priority", &self.priority)
            .field("has_work", &self.work.is_some())
            .finish()
    }
}

impl TaskDescription {
    /// A task with a name, request and virtual duration (no work closure).
    pub fn new(name: impl Into<String>, request: ResourceRequest, duration: SimDuration) -> Self {
        TaskDescription {
            name: name.into(),
            tag: String::new(),
            request,
            duration,
            gpu_busy_fraction: 1.0,
            priority: 0,
            kind: TaskKind::Serial,
            walltime: None,
            work: None,
        }
    }

    /// Attach a bookkeeping tag (pipeline id, stage number, …).
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }

    /// Attach the computation the task performs.
    pub fn with_work<F, T>(mut self, work: F) -> Self
    where
        F: FnOnce() -> T + Send + 'static,
        T: Any + Send,
    {
        self.work = Some(Box::new(move || Box::new(work()) as TaskOutput));
        self
    }

    /// Set the GPU hardware-busy fraction (clamped to `[0, 1]`).
    pub fn with_gpu_busy_fraction(mut self, f: f64) -> Self {
        self.gpu_busy_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Set the scheduling priority (default 0; higher schedules first).
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Set the executable kind (default [`TaskKind::Serial`]).
    pub fn with_kind(mut self, kind: TaskKind) -> Self {
        self.kind = kind;
        self
    }

    /// Set a walltime limit (default: unlimited).
    pub fn with_walltime(mut self, limit: SimDuration) -> Self {
        self.walltime = Some(limit);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let d = TaskDescription::new(
            "af2-msa",
            ResourceRequest::cores(6),
            SimDuration::from_hours(1),
        )
        .with_tag("pl.0/stage.4")
        .with_gpu_busy_fraction(2.0);
        assert_eq!(d.name, "af2-msa");
        assert_eq!(d.tag, "pl.0/stage.4");
        assert_eq!(d.request.cores, 6);
        assert_eq!(d.gpu_busy_fraction, 1.0, "clamped");
        assert!(d.work.is_none());
    }

    #[test]
    fn work_closure_output_downcasts() {
        let d = TaskDescription::new(
            "compute",
            ResourceRequest::cores(1),
            SimDuration::from_secs(1),
        )
        .with_work(|| 41 + 1);
        let out = (d.work.unwrap())();
        assert_eq!(*out.downcast::<i32>().unwrap(), 42);
    }

    #[test]
    fn kinds_have_ordered_launch_overheads() {
        assert_eq!(TaskKind::Serial.launch_overhead(), SimDuration::ZERO);
        assert!(TaskKind::OpenMp.launch_overhead() < TaskKind::Mpi.launch_overhead());
        assert!(TaskKind::Mpi.launch_overhead() < TaskKind::Ml.launch_overhead());
        let d = TaskDescription::new("t", ResourceRequest::cores(1), SimDuration::from_secs(1))
            .with_kind(TaskKind::Ml);
        assert_eq!(d.kind, TaskKind::Ml);
    }

    #[test]
    fn walltime_defaults_to_unlimited() {
        let d = TaskDescription::new("t", ResourceRequest::cores(1), SimDuration::from_secs(1));
        assert!(d.walltime.is_none());
        let d = d.with_walltime(SimDuration::from_mins(5));
        assert_eq!(d.walltime, Some(SimDuration::from_mins(5)));
    }

    #[test]
    fn task_id_displays_padded() {
        assert_eq!(TaskId(7).to_string(), "task.000007");
    }

    #[test]
    fn debug_omits_work_internals() {
        let d = TaskDescription::new("x", ResourceRequest::cores(1), SimDuration::from_secs(1))
            .with_work(|| ());
        let dbg = format!("{d:?}");
        assert!(dbg.contains("has_work: true"));
    }
}
