//! [`RuntimeConfig`]: one builder for everything a backend can be
//! configured with.
//!
//! Historically each concern grew its own constructor on each backend —
//! `new`, `with_faults`, `with_time_scale`, plus a chained
//! `with_deadline` — and adding telemetry would have doubled the zoo.
//! `RuntimeConfig` collapses them: build one value describing the run
//! (pilot sizing, fault plan + retry policy, walltime deadline, threaded
//! time dilation, telemetry handle), then hand it to either backend. The
//! old constructors shipped as deprecated shims for one release and have
//! since been removed; `RuntimeConfig` is the only way to configure a
//! backend beyond `new`.
//!
//! ```
//! use impress_pilot::{PilotConfig, RuntimeConfig};
//! use impress_sim::SimTime;
//!
//! let backend = RuntimeConfig::new(PilotConfig::with_seed(7))
//!     .deadline(SimTime::from_micros(3_600_000_000))
//!     .simulated();
//! # let _ = backend;
//! ```

use crate::backend::{ShardedBackend, SimulatedBackend, ThreadedBackend};
use crate::fault::{FaultPlan, HedgePolicy, QuarantinePolicy, RetryPolicy};
use crate::pilot::PilotConfig;
use impress_sim::SimTime;
use impress_telemetry::Telemetry;

/// Everything a backend can be configured with, in one builder.
///
/// Knobs that only one backend honors are documented as such and are
/// silently inert on the other (`time_scale` is threaded-only; the
/// simulated backend replays virtual time directly).
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Pilot sizing and timing (node shape, bootstrap, per-task setup,
    /// seed).
    pub pilot: PilotConfig,
    /// Deterministic fault-injection plan (default: no faults).
    pub faults: FaultPlan,
    /// Retry policy for faulted attempts (default: no retries).
    pub retry: RetryPolicy,
    /// Walltime deadline: tasks whose modeled span would cross it are held
    /// instead of launched (default: none).
    pub deadline: Option<SimTime>,
    /// Threaded backend only: factor dilating virtual durations into real
    /// sleeps (`0.0` = sleep only for the work closure itself).
    pub time_scale: f64,
    /// Telemetry handle; the default disabled handle records nothing and
    /// costs one branch per instrumentation point.
    pub telemetry: Telemetry,
    /// Sharded backend only: number of event-queue shards (clamped to at
    /// least 1). Inert on the other backends.
    pub shards: usize,
    /// Sharded backend only: drive the shard queues on worker threads
    /// instead of in-process. The event stream is bit-identical either
    /// way; this only changes who owns the priority queues.
    pub parallel_shards: bool,
    /// Hedged speculative execution policy (default: off). `None` is a
    /// strict no-op: no hedge checks are scheduled and the backend behaves
    /// byte-identically to the pre-hedging engine.
    pub hedge: Option<HedgePolicy>,
    /// Poison-task quarantine policy (default: off). `None` is a strict
    /// no-op: no failed-node bookkeeping, no circuit breaker.
    pub quarantine: Option<QuarantinePolicy>,
}

impl RuntimeConfig {
    /// A fault-free, deadline-free, telemetry-off runtime over `pilot`.
    pub fn new(pilot: PilotConfig) -> Self {
        RuntimeConfig {
            pilot,
            faults: FaultPlan::none(),
            retry: RetryPolicy::none(),
            deadline: None,
            time_scale: 0.0,
            telemetry: Telemetry::disabled(),
            shards: 8,
            parallel_shards: false,
            hedge: None,
            quarantine: None,
        }
    }

    /// Inject `faults`, retrying failed attempts under `retry`.
    pub fn faults(mut self, faults: FaultPlan, retry: RetryPolicy) -> Self {
        self.faults = faults;
        self.retry = retry;
        self
    }

    /// Hold tasks whose modeled span would cross `deadline`.
    pub fn deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Dilate virtual durations into real sleeps (threaded backend only).
    pub fn time_scale(mut self, scale: f64) -> Self {
        self.time_scale = scale;
        self
    }

    /// Record spans and metrics through `telemetry`.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Use `n` event-queue shards in the sharded backend (clamped to at
    /// least 1 at construction).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Drive the shard queues on worker threads (sharded backend only).
    pub fn parallel_shards(mut self, on: bool) -> Self {
        self.parallel_shards = on;
        self
    }

    /// Hedge straggling attempts with speculative duplicates under
    /// `policy`.
    pub fn hedge(mut self, policy: HedgePolicy) -> Self {
        self.hedge = Some(policy);
        self
    }

    /// Quarantine poison tasks under `policy`.
    pub fn quarantine(mut self, policy: QuarantinePolicy) -> Self {
        self.quarantine = Some(policy);
        self
    }

    /// Build a [`SimulatedBackend`] from this configuration.
    pub fn simulated(self) -> SimulatedBackend {
        SimulatedBackend::from_config(self)
    }

    /// Build a [`ShardedBackend`] from this configuration.
    pub fn sharded(self) -> ShardedBackend {
        ShardedBackend::from_config(self)
    }

    /// Build a [`ThreadedBackend`] from this configuration.
    pub fn threaded(self) -> ThreadedBackend {
        ThreadedBackend::from_config(self)
    }
}

impl From<PilotConfig> for RuntimeConfig {
    fn from(pilot: PilotConfig) -> Self {
        RuntimeConfig::new(pilot)
    }
}
