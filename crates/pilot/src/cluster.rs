//! Multiplexing one backend across many independent consumers.
//!
//! The session/coordinator stack assumes it *owns* its
//! [`ExecutionBackend`]: it submits, pumps [`next_completion`], and treats
//! every completion as its own. A multi-tenant campaign service breaks that
//! assumption — many coordinators share one cluster — so this module
//! supplies the adapter: a [`SharedCluster`] wraps a single backend and
//! hands out [`ClusterLease`]s, each of which *is* an `ExecutionBackend`
//! scoped to the tasks submitted through it.
//!
//! Routing works by ownership: the cluster records which lease submitted
//! each task; pumping the shared backend from any lease routes foreign
//! completions into their owners' inboxes and returns only the pumper's
//! own. Completion *order within a lease* is therefore exactly the order
//! the shared backend produced, regardless of which lease did the pumping —
//! the property that makes a campaign's outcome independent of its
//! neighbors' drive pattern (the serial-vs-service determinism tests in
//! `impress-workflow` rest on it).
//!
//! Each lease additionally carries:
//!
//! * a **priority boost** added to every task submitted through it — the
//!   hook a fair-share layer uses to map tenant deficits onto the
//!   scheduler's priority buckets (higher schedules first);
//! * a **usage meter** (core/GPU-seconds of delivered occupancy), booked
//!   at pump time against the *owning* lease, which quota enforcement
//!   reads without trusting tenants to self-report;
//! * a **retired** flag: retiring a lease drops its queued inbox and any
//!   late completions, so a canceled campaign cannot leak memory or
//!   deliver into a dead coordinator.
//!
//! A lease deliberately does *not* expose cluster-global mutation — or
//! even cluster-global *names*. Task ids on a lease are lease-local (dense
//! from 0, translated to the backend's ids at the submit/pump boundary),
//! so a consumer's task-indexed bookkeeping stays sized by its own
//! workload rather than the cluster-wide id space, a tenant cannot observe
//! the global submission counter through its ids, and `cancel`/`preempt`
//! structurally cannot name another lease's work — preemption decisions
//! belong to the service layer, which holds the [`SharedCluster`] itself.

use crate::backend::{Completion, ExecutionBackend};
use crate::pilot::PhaseBreakdown;
use crate::profiler::UtilizationReport;
use crate::task::{TaskDescription, TaskId};
use impress_sim::SimTime;
use impress_telemetry::Telemetry;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// Occupancy delivered to one lease so far: the sum over its completed
/// attempts of `(finished - started) × slots`. Booked when the completion
/// is *pumped* out of the shared backend (not when the owner pops it), so
/// quota checks see usage as soon as the cluster knows about it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LeaseUsage {
    /// Core-seconds of delivered slot occupancy.
    pub core_seconds: f64,
    /// GPU-seconds of delivered slot occupancy.
    pub gpu_seconds: f64,
    /// Terminal completions delivered (success or failure).
    pub completions: u64,
}

/// Per-lease bookkeeping inside the cluster core.
struct LeaseState {
    /// Completions pumped by *other* leases, waiting for this one to pop.
    inbox: VecDeque<Completion>,
    /// Tasks submitted through this lease and not yet *delivered* to it
    /// (an inboxed completion still counts — it has not been observed).
    in_flight: usize,
    /// Priority added to every submission (higher schedules first).
    boost: i32,
    /// Delivered occupancy, for quota/fairness accounting.
    usage: LeaseUsage,
    /// Retired leases take no new submissions and drop late completions.
    retired: bool,
    /// Lease-local task ids, dense from 0: `to_global[local]` is the
    /// shared backend's id. Leases speak *local* ids to their consumer —
    /// a coordinator's task-indexed slabs stay sized by its own workload
    /// instead of the cluster-global id space (with thousands of leases
    /// that difference is quadratic memory), and a tenant cannot observe
    /// the cluster-wide submission counter through its ids.
    to_global: Vec<TaskId>,
}

/// What the cluster knows about one submitted task.
struct TaskRoute {
    owner: u32,
    /// The owner's lease-local id for this task.
    local: u64,
    cores: u32,
    gpus: u32,
}

struct ClusterCore<B: ExecutionBackend> {
    backend: B,
    routes: HashMap<u64, TaskRoute>,
    leases: HashMap<u32, LeaseState>,
    next_lease: u32,
}

impl<B: ExecutionBackend> ClusterCore<B> {
    /// Pump one completion out of the shared backend, booking usage to its
    /// owner. Returns the completion together with its owning lease id, or
    /// `None` when the backend has nothing left to deliver (idle, or a
    /// graceful deadline drain).
    fn pump(&mut self) -> Option<(u32, Completion)> {
        loop {
            let mut c = self.backend.next_completion()?;
            let Some(route) = self.routes.remove(&c.task.0) else {
                // A task submitted around the lease layer (e.g. directly on
                // the backend before it was wrapped). No owner — drop it;
                // leases must only ever see their own traffic.
                continue;
            };
            let span = (c.finished - c.started).as_secs_f64();
            let lease = self
                .leases
                .get_mut(&route.owner)
                .expect("every route points at a lease record");
            lease.usage.core_seconds += span * f64::from(route.cores);
            lease.usage.gpu_seconds += span * f64::from(route.gpus);
            lease.usage.completions += 1;
            if lease.retired {
                // The owner is gone; its in-flight counter died with it.
                continue;
            }
            // Deliver under the owner's local id, not the global one.
            c.task = TaskId(route.local);
            return Some((route.owner, c));
        }
    }
}

/// One execution backend shared between many [`ClusterLease`]s.
///
/// Cheaply cloneable handle (`Rc` inside — the whole stack is
/// single-threaded, like the simulated backend it typically wraps). The
/// service layer keeps one of these for cluster-global reads and
/// lease administration; coordinators only ever see their own lease.
pub struct SharedCluster<B: ExecutionBackend> {
    core: Rc<RefCell<ClusterCore<B>>>,
    telemetry: Telemetry,
}

impl<B: ExecutionBackend> Clone for SharedCluster<B> {
    fn clone(&self) -> Self {
        SharedCluster {
            core: self.core.clone(),
            telemetry: self.telemetry.clone(),
        }
    }
}

impl<B: ExecutionBackend> SharedCluster<B> {
    /// Wrap a backend. All submissions must go through leases from here on:
    /// completions of tasks the cluster has no route for are dropped.
    pub fn new(backend: B) -> Self {
        let telemetry = backend.telemetry().clone();
        SharedCluster {
            core: Rc::new(RefCell::new(ClusterCore {
                backend,
                routes: HashMap::new(),
                leases: HashMap::new(),
                next_lease: 0,
            })),
            telemetry,
        }
    }

    /// Open a new lease with priority boost 0.
    pub fn lease(&self) -> ClusterLease<B> {
        let mut core = self.core.borrow_mut();
        let id = core.next_lease;
        core.next_lease += 1;
        core.leases.insert(
            id,
            LeaseState {
                inbox: VecDeque::new(),
                in_flight: 0,
                boost: 0,
                usage: LeaseUsage::default(),
                retired: false,
                to_global: Vec::new(),
            },
        );
        ClusterLease {
            core: self.core.clone(),
            telemetry: self.telemetry.clone(),
            id,
        }
    }

    /// Delivered occupancy of one lease (`None` for unknown ids). Retired
    /// leases keep their meter: a tenant's spent budget survives campaign
    /// completion.
    pub fn usage_of(&self, lease: u32) -> Option<LeaseUsage> {
        self.core.borrow().leases.get(&lease).map(|l| l.usage)
    }

    /// Pump exactly one completion out of the shared backend — advancing
    /// time to it if necessary — and deliver it into the owning lease's
    /// inbox. Returns the owner's lease id, or `None` when the backend has
    /// nothing left to deliver (idle, or only deadline-held tasks remain).
    ///
    /// This is the *only* clock-advancing primitive a multiplexing driver
    /// needs: step every lease that [`SharedCluster::lease_ready`] says can
    /// make progress at the current instant, and call this once when
    /// nobody can. Pumping from a lease's own
    /// [`next_completion`](ExecutionBackend::next_completion) also works
    /// but advances time until *that* lease is served, serializing
    /// consumers that had work to submit at the current time.
    pub fn pump_one(&self) -> Option<u32> {
        let mut core = self.core.borrow_mut();
        let (owner, c) = core.pump()?;
        core.leases
            .get_mut(&owner)
            .expect("pump only returns live owners")
            .inbox
            .push_back(c);
        Some(owner)
    }

    /// Whether stepping the consumer on `lease` would make progress
    /// *without* advancing time: a completion is queued in its inbox, or it
    /// has nothing in flight at all (its `next_completion` returns `None`
    /// immediately — the idle/terminal transition). `false` means the lease
    /// is blocked waiting on in-flight work, and `false` for unknown ids.
    pub fn lease_ready(&self, lease: u32) -> bool {
        self.core
            .borrow()
            .leases
            .get(&lease)
            .is_some_and(|l| !l.inbox.is_empty() || l.in_flight == 0)
    }

    /// Set a lease's priority boost. Applies to *future* submissions; work
    /// already queued keeps the priority it was enqueued with.
    pub fn set_boost(&self, lease: u32, boost: i32) {
        if let Some(l) = self.core.borrow_mut().leases.get_mut(&lease) {
            l.boost = boost;
        }
    }

    /// Preempt a running task of `lease` (named by its lease-local id) —
    /// the service-layer hook behind priority preemption, which may target
    /// any lease it administers. Returns `false` for unknown ids, tasks
    /// that are not running, or backends without preemption support.
    pub fn preempt(&self, lease: u32, task: TaskId) -> bool {
        let mut core = self.core.borrow_mut();
        let Some(&global) = core
            .leases
            .get(&lease)
            .and_then(|l| l.to_global.get(task.0 as usize))
        else {
            return false;
        };
        if !core.routes.get(&global.0).is_some_and(|r| r.owner == lease) {
            return false;
        }
        core.backend.preempt(global)
    }

    /// Unfinished tasks currently routed to `lease`, as lease-local ids in
    /// submission order — the victim list a preemption sweep walks (and the
    /// ids a cancel sweep feeds back through the lease). Queued and running
    /// tasks are not distinguished here; [`SharedCluster::preempt`] simply
    /// returns `false` for the queued ones.
    pub fn tasks_of(&self, lease: u32) -> Vec<TaskId> {
        let core = self.core.borrow();
        let mut out: Vec<TaskId> = core
            .routes
            .values()
            .filter(|r| r.owner == lease)
            .map(|r| TaskId(r.local))
            .collect();
        out.sort_unstable_by_key(|t| t.0);
        out
    }

    /// Current backend time.
    pub fn now(&self) -> SimTime {
        self.core.borrow().backend.now()
    }

    /// Cluster-wide utilization up to the current time.
    pub fn utilization(&self) -> UtilizationReport {
        self.core.borrow().backend.utilization()
    }

    /// The wrapped backend's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

/// One consumer's view of a [`SharedCluster`]: an [`ExecutionBackend`]
/// scoped to the tasks submitted through it.
///
/// `next_completion` returns only this lease's completions, in shared
/// pump order; foreign completions encountered while pumping are routed to
/// their owners. Task ids are lease-local: `submit` returns ids dense from
/// 0, completions carry them, and `cancel`/`preempt` accept only them —
/// another lease's tasks cannot even be named. Dropping a lease without
/// [`ClusterLease::retire`] leaves it live (another handle may exist);
/// retiring it drops queued and future completions.
pub struct ClusterLease<B: ExecutionBackend> {
    core: Rc<RefCell<ClusterCore<B>>>,
    telemetry: Telemetry,
    id: u32,
}

impl<B: ExecutionBackend> ClusterLease<B> {
    /// This lease's id, the key for [`SharedCluster::usage_of`] /
    /// [`SharedCluster::set_boost`].
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Delivered occupancy so far.
    pub fn usage(&self) -> LeaseUsage {
        self.core.borrow().leases[&self.id].usage
    }

    /// Retire the lease: drop its queued inbox, drop any late completions,
    /// refuse further submissions (they panic — submitting into a retired
    /// lease is a service-layer bug, not a runtime condition). Usage
    /// metering survives.
    pub fn retire(&mut self) {
        let mut core = self.core.borrow_mut();
        let lease = core.leases.get_mut(&self.id).expect("lease exists");
        lease.retired = true;
        lease.inbox.clear();
        lease.in_flight = 0;
    }

    /// Resolve a lease-local id to the shared backend's id, provided the
    /// task is still routed (unfinished) and really belongs to this lease.
    fn resolve(&self, local: TaskId) -> Option<TaskId> {
        let core = self.core.borrow();
        let global = *core.leases[&self.id].to_global.get(local.0 as usize)?;
        core.routes
            .get(&global.0)
            .is_some_and(|r| r.owner == self.id)
            .then_some(global)
    }
}

impl<B: ExecutionBackend> ExecutionBackend for ClusterLease<B> {
    /// Submit through the lease. The returned id is *lease-local* (dense
    /// from 0 per lease); completions and `cancel`/`preempt` on this lease
    /// speak the same local ids.
    fn submit(&mut self, desc: TaskDescription) -> TaskId {
        let mut core = self.core.borrow_mut();
        let core = &mut *core;
        let lease = core.leases.get_mut(&self.id).expect("lease exists");
        assert!(!lease.retired, "submit on a retired lease");
        let boost = lease.boost;
        lease.in_flight += 1;
        let local = TaskId(lease.to_global.len() as u64);
        let (cores, gpus) = (desc.request.cores, desc.request.gpus);
        let priority = desc.priority;
        let id = core.backend.submit(desc.with_priority(priority + boost));
        core.leases
            .get_mut(&self.id)
            .expect("lease exists")
            .to_global
            .push(id);
        core.routes.insert(
            id.0,
            TaskRoute {
                owner: self.id,
                local: local.0,
                cores,
                gpus,
            },
        );
        local
    }

    fn next_completion(&mut self) -> Option<Completion> {
        {
            let mut core = self.core.borrow_mut();
            let lease = core.leases.get_mut(&self.id).expect("lease exists");
            if let Some(c) = lease.inbox.pop_front() {
                lease.in_flight -= 1;
                return Some(c);
            }
            if lease.in_flight == 0 {
                return None;
            }
        }
        loop {
            let mut core = self.core.borrow_mut();
            match core.pump() {
                Some((owner, c)) if owner == self.id => {
                    let lease = core.leases.get_mut(&self.id).expect("lease exists");
                    lease.in_flight -= 1;
                    return Some(c);
                }
                Some((owner, c)) => {
                    let lease = core
                        .leases
                        .get_mut(&owner)
                        .expect("pump only returns live owners");
                    lease.inbox.push_back(c);
                }
                // The backend is out of deliverable completions while this
                // lease still has work in flight: its tasks are held by the
                // walltime deadline — the graceful-drain signal. Surface it
                // exactly like an owned backend would.
                None => return None,
            }
        }
    }

    fn now(&self) -> SimTime {
        self.core.borrow().backend.now()
    }

    /// Tasks submitted through *this lease* and not yet delivered to it.
    fn in_flight(&self) -> usize {
        self.core.borrow().leases[&self.id].in_flight
    }

    /// Cluster-wide utilization: occupancy has no per-lease meaning on
    /// shared hardware (see [`ClusterLease::usage`] for this lease's own
    /// delivered occupancy).
    fn utilization(&self) -> UtilizationReport {
        self.core.borrow().backend.utilization()
    }

    fn phase_breakdown(&self) -> PhaseBreakdown {
        self.core.borrow().backend.phase_breakdown()
    }

    fn cancel(&mut self, id: TaskId) -> bool {
        let Some(global) = self.resolve(id) else {
            return false;
        };
        self.core.borrow_mut().backend.cancel(global)
    }

    fn preempt(&mut self, id: TaskId) -> bool {
        let Some(global) = self.resolve(id) else {
            return false;
        };
        self.core.borrow_mut().backend.preempt(global)
    }

    fn held_tasks(&self) -> usize {
        self.core.borrow().backend.held_tasks()
    }

    /// Pop from this lease's inbox only — never pumps the shared backend,
    /// so polling cannot advance time on behalf of other leases.
    fn poll_completion(&mut self) -> Option<Completion> {
        let mut core = self.core.borrow_mut();
        let lease = core.leases.get_mut(&self.id).expect("lease exists");
        let c = lease.inbox.pop_front()?;
        lease.in_flight -= 1;
        Some(c)
    }

    fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    fn virtual_now(&self) -> SimTime {
        self.core.borrow().backend.virtual_now()
    }

    fn stamp(&self) -> impress_telemetry::Stamp {
        self.core.borrow().backend.stamp()
    }

    fn control_stats(&self) -> crate::control::ControlStats {
        self.core.borrow().backend.control_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimulatedBackend;
    use crate::pilot::PilotConfig;
    use crate::resources::{NodeSpec, ResourceRequest};
    use crate::scheduler::PlacementPolicy;
    use impress_sim::SimDuration;

    fn backend(cores: u32) -> SimulatedBackend {
        SimulatedBackend::new(PilotConfig {
            node: NodeSpec::new(cores, 2, 64),
            nodes: 1,
            policy: PlacementPolicy::Backfill,
            bootstrap: SimDuration::from_secs(1),
            exec_setup_per_task: SimDuration::ZERO,
            seed: 0,
        })
    }

    fn task(name: &str, secs: u64) -> TaskDescription {
        TaskDescription::new(name, ResourceRequest::cores(1), SimDuration::from_secs(secs))
    }

    #[test]
    fn leases_only_see_their_own_completions() {
        let cluster = SharedCluster::new(backend(4));
        let mut a = cluster.lease();
        let mut b = cluster.lease();
        let a1 = a.submit(task("a1", 5));
        let b1 = b.submit(task("b1", 1));
        let a2 = a.submit(task("a2", 3));
        // Pumping from lease A routes B's (earlier) completion to B's inbox.
        let first_a = a.next_completion().expect("a has work");
        assert!(first_a.task == a1 || first_a.task == a2);
        assert_eq!(b.in_flight(), 1, "b's completion waits in its inbox");
        let first_b = b.next_completion().expect("b has work");
        assert_eq!(first_b.task, b1);
        assert_eq!(b.in_flight(), 0);
        assert!(b.next_completion().is_none(), "b is drained");
        let second_a = a.next_completion().expect("a's second task");
        assert_ne!(second_a.task, first_a.task);
        assert!(a.next_completion().is_none());
    }

    #[test]
    fn usage_is_booked_to_the_owning_lease() {
        let cluster = SharedCluster::new(backend(4));
        let mut a = cluster.lease();
        let mut b = cluster.lease();
        a.submit(task("a", 10));
        b.submit(task("b", 2));
        while a.next_completion().is_some() {}
        // Pumping from A booked B's usage too, before B ever popped.
        let ua = cluster.usage_of(a.id()).unwrap();
        let ub = cluster.usage_of(b.id()).unwrap();
        assert!((ua.core_seconds - 10.0).abs() < 1e-9, "{ua:?}");
        assert!((ub.core_seconds - 2.0).abs() < 1e-9, "{ub:?}");
        assert_eq!(ua.completions, 1);
        assert_eq!(ub.completions, 1);
        assert!(b.next_completion().is_some());
    }

    #[test]
    fn boost_reorders_contended_submissions() {
        // One core: whoever holds higher priority jumps the queue once the
        // first occupant finishes.
        let cluster = SharedCluster::new(backend(1));
        let mut low = cluster.lease();
        let mut high = cluster.lease();
        cluster.set_boost(high.id(), 10);
        let _head = low.submit(task("head", 1));
        let l = low.submit(task("low", 1));
        let h = high.submit(task("high", 1));
        let mut order = Vec::new();
        loop {
            let before = order.len();
            if let Some(c) = low.next_completion() {
                order.push(c.task);
            }
            if let Some(c) = high.next_completion() {
                order.push(c.task);
            }
            if order.len() == before {
                break;
            }
        }
        let pos = |t| order.iter().position(|x| *x == t).unwrap();
        assert!(pos(h) < pos(l), "boosted lease schedules first: {order:?}");
    }

    #[test]
    fn retired_leases_drop_their_completions() {
        let cluster = SharedCluster::new(backend(4));
        let mut a = cluster.lease();
        let mut b = cluster.lease();
        a.submit(task("a", 5));
        b.submit(task("b", 1));
        b.retire();
        assert_eq!(b.in_flight(), 0);
        // Draining A pumps B's completion; it is dropped, not queued.
        while a.next_completion().is_some() {}
        assert!(b.next_completion().is_none());
        // Usage is still metered for the retired lease.
        assert_eq!(cluster.usage_of(b.id()).unwrap().completions, 1);
    }

    #[test]
    fn lease_ids_are_local_and_cannot_name_foreign_tasks() {
        let cluster = SharedCluster::new(backend(1));
        let mut a = cluster.lease();
        let mut b = cluster.lease();
        let at = a.submit(task("a", 5));
        let bt = b.submit(task("b", 5));
        // Ids are namespaced per lease: both leases see a dense space
        // starting at 0, so the global submission counter never leaks.
        assert_eq!(at, bt);
        // Ids a lease never issued resolve to nothing…
        assert!(!b.cancel(TaskId(7)), "unknown local id refused");
        assert!(!b.preempt(TaskId(7)), "unknown local id refused");
        // …and its own ids touch only its own work: canceling b's task 0
        // (still queued behind a's on the single core) leaves a's task 0 —
        // a different global task — running to completion.
        assert!(b.cancel(bt), "own queued task cancels fine");
        let got = a.next_completion().expect("a's task survives");
        assert_eq!(got.task, at);
        assert!(a.next_completion().is_none());
        // b's canceled attempt surfaces under b's local id, then b drains.
        let canceled = b.next_completion().expect("cancellation completion");
        assert_eq!(canceled.task, bt);
        assert!(canceled.result.is_err());
        assert!(b.next_completion().is_none());
    }

    #[test]
    fn service_side_preempt_speaks_lease_local_ids() {
        let cluster = SharedCluster::new(backend(1));
        let mut a = cluster.lease();
        let mut b = cluster.lease();
        let _at = a.submit(task("a", 50));
        let bt = b.submit(task("b", 5));
        // b's task is queued (a holds the core): preempt refuses it.
        assert!(!cluster.preempt(b.id(), bt), "queued task not preemptible");
        // Unknown lease or id: refused, never routed to a foreign task.
        assert!(!cluster.preempt(99, bt));
        assert!(!cluster.preempt(b.id(), TaskId(7)));
        assert_eq!(cluster.tasks_of(b.id()), vec![bt]);
        while a.next_completion().is_some() {}
        while b.next_completion().is_some() {}
    }

    #[test]
    fn completion_order_within_a_lease_is_pump_order() {
        // Two identical clusters; in one, lease B drives all the pumping.
        // Lease A must observe its completions in the same order either way.
        let run = |b_pumps_first: bool| -> Vec<u64> {
            let cluster = SharedCluster::new(backend(2));
            let mut a = cluster.lease();
            let mut b = cluster.lease();
            for i in 0..4 {
                a.submit(task(&format!("a{i}"), 3 + i));
                b.submit(task(&format!("b{i}"), 2 + i));
            }
            if b_pumps_first {
                while b.next_completion().is_some() {}
            }
            let mut seen = Vec::new();
            while let Some(c) = a.next_completion() {
                seen.push(c.task.0);
            }
            seen
        };
        assert_eq!(run(false), run(true));
    }
}
