//! Utilization profiling.
//!
//! Records, per device, when tasks occupied it — producing the Fig. 4/5
//! utilization timelines and the Table I CPU%/GPU% cells.
//!
//! Two GPU views are kept, because the paper mixes them:
//!
//! * **slot occupancy** — a GPU counts as used from allocation to release.
//!   This is what a pilot runtime's own profiler reports, and what the
//!   paper's IM-RP numbers (61% GPU) reflect;
//! * **hardware busy** — the GPU counts as used only while kernels actually
//!   run (`gpu_busy_fraction` of the task's running window). This is what
//!   `nvidia-smi` sampling reports, and what the paper's CONT-V numbers
//!   (~1% GPU) reflect, since vanilla AlphaFold leaves the GPU idle during
//!   its CPU-bound phases.
//!
//! CPU slot occupancy and CPU hardware busy coincide in this workload (the
//! CPU phases are genuinely compute/I/O bound), so only one CPU view exists.

use crate::resources::Allocation;
use crate::task::TaskId;
use impress_json::json_struct;
use impress_sim::{SimDuration, SimTime, UtilizationTracker};
use std::collections::HashMap;

/// Per-task execution record.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// The task.
    pub id: u64,
    /// Task name.
    pub name: String,
    /// Bookkeeping tag.
    pub tag: String,
    /// When the task was submitted.
    pub submitted: SimTime,
    /// When slots were granted.
    pub started: SimTime,
    /// When the task released its slots.
    pub finished: SimTime,
    /// Cores held.
    pub cores: u32,
    /// GPUs held.
    pub gpus: u32,
}
json_struct!(TaskRecord {
    id,
    name,
    tag,
    submitted,
    started,
    finished,
    cores,
    gpus
});

impl TaskRecord {
    /// Queue wait time (submission → slot grant).
    pub fn wait(&self) -> SimDuration {
        self.started.since(self.submitted)
    }

    /// Slot-holding time (grant → release).
    pub fn turnaround(&self) -> SimDuration {
        self.finished.since(self.started)
    }
}

/// Aggregate utilization numbers for one run.
#[derive(Debug, Clone, Copy)]
pub struct UtilizationReport {
    /// Mean CPU-core occupancy over the run, 0–1.
    pub cpu: f64,
    /// Mean GPU slot occupancy over the run, 0–1.
    pub gpu_slot: f64,
    /// Mean GPU hardware-busy fraction over the run, 0–1.
    pub gpu_hardware: f64,
    /// Run makespan.
    pub makespan: SimDuration,
    /// Number of tasks completed.
    pub tasks: usize,
    /// Attempts the pilot resubmitted after a retryable fault.
    pub retries: usize,
    /// Core-seconds burnt by attempts that did not complete (faulted,
    /// timed out, or were evicted by a node crash). The occupancy means
    /// above include these seconds — the slots really were held — so this
    /// field is what separates useful from lost work. Always 0 in
    /// fault-free runs.
    pub wasted_core_seconds: f64,
    /// GPU-slot-seconds burnt by attempts that did not complete.
    pub wasted_gpu_seconds: f64,
    /// Hedged speculative duplicates the backend placed.
    pub hedges: usize,
    /// Core-seconds burnt by hedge losers (the duplicate or original that
    /// lost the race). Kept separate from [`wasted_core_seconds`] — hedge
    /// waste is the *price* of straggler mitigation, retry waste is the
    /// price of faults — so studies can weigh one against the other.
    /// Always 0 with hedging off.
    ///
    /// [`wasted_core_seconds`]: UtilizationReport::wasted_core_seconds
    pub hedge_wasted_core_seconds: f64,
    /// GPU-slot-seconds burnt by hedge losers.
    pub hedge_wasted_gpu_seconds: f64,
}
json_struct!(UtilizationReport {
    cpu,
    gpu_slot,
    gpu_hardware,
    makespan,
    tasks,
    retries,
    wasted_core_seconds,
    wasted_gpu_seconds,
    hedges,
    hedge_wasted_core_seconds,
    hedge_wasted_gpu_seconds
});

/// The profiler: device trackers plus per-task records. Multi-node pilots
/// flatten devices into global indices (`node × per-node + local id`).
#[derive(Debug)]
pub struct Profiler {
    cpu: UtilizationTracker,
    gpu_slot: UtilizationTracker,
    gpu_hw: UtilizationTracker,
    cores_per_node: u32,
    gpus_per_node: u32,
    submitted: HashMap<u64, SimTime>,
    records: Vec<TaskRecord>,
    retries: usize,
    wasted_core_seconds: f64,
    wasted_gpu_seconds: f64,
    hedges: usize,
    hedge_wasted_core_seconds: f64,
    hedge_wasted_gpu_seconds: f64,
}

impl Profiler {
    /// A profiler for a single node with `cores` CPUs and `gpus` GPUs.
    ///
    /// Delegates to [`Profiler::new_cluster`] with `nodes = 1`: the
    /// single-node profiler *is* a one-node cluster, so `cores`/`gpus`
    /// become both the per-node shape (used to index device slots from an
    /// [`Allocation`]'s node-relative ids) and the cluster-wide tracker
    /// capacity. Utilization, per-device busy intervals, and waste
    /// accounting are therefore identical whether a caller builds the
    /// profiler through this shorthand or through `new_cluster(c, g, 1)`.
    pub fn new(cores: u32, gpus: u32) -> Self {
        Self::new_cluster(cores, gpus, 1)
    }

    /// A profiler for `nodes` identical nodes.
    pub fn new_cluster(cores: u32, gpus: u32, nodes: u32) -> Self {
        Profiler {
            cpu: UtilizationTracker::new((cores * nodes) as usize),
            gpu_slot: UtilizationTracker::new((gpus * nodes) as usize),
            gpu_hw: UtilizationTracker::new((gpus * nodes) as usize),
            cores_per_node: cores,
            gpus_per_node: gpus,
            submitted: HashMap::new(),
            records: Vec::new(),
            retries: 0,
            wasted_core_seconds: 0.0,
            wasted_gpu_seconds: 0.0,
            hedges: 0,
            hedge_wasted_core_seconds: 0.0,
            hedge_wasted_gpu_seconds: 0.0,
        }
    }

    #[inline]
    fn core_index(&self, alloc_node: u32, id: u32) -> usize {
        (alloc_node * self.cores_per_node + id) as usize
    }

    #[inline]
    fn gpu_index(&self, alloc_node: u32, id: u32) -> usize {
        (alloc_node * self.gpus_per_node + id) as usize
    }

    /// Note a task submission (for wait-time accounting).
    pub fn task_submitted(&mut self, id: TaskId, at: SimTime) {
        self.submitted.insert(id.0, at);
    }

    /// Note that a task received its allocation and begins occupying slots.
    pub fn task_started(&mut self, alloc: &Allocation, at: SimTime) {
        for &c in &alloc.core_ids {
            self.cpu.begin(self.core_index(alloc.node, c), at);
        }
        for &g in &alloc.gpu_ids {
            self.gpu_slot.begin(self.gpu_index(alloc.node, g), at);
        }
    }

    /// Note that a task released its slots. `gpu_busy_fraction` of the
    /// occupancy window is recorded as hardware-busy GPU time (placed at the
    /// end of the window, where inference kernels actually run).
    #[allow(clippy::too_many_arguments)]
    pub fn task_finished(
        &mut self,
        id: TaskId,
        name: &str,
        tag: &str,
        alloc: &Allocation,
        started: SimTime,
        finished: SimTime,
        gpu_busy_fraction: f64,
    ) {
        for &c in &alloc.core_ids {
            self.cpu.end(self.core_index(alloc.node, c), finished);
        }
        let span = finished.since(started);
        let busy = span.mul_f64(gpu_busy_fraction.clamp(0.0, 1.0));
        for &g in &alloc.gpu_ids {
            let gi = self.gpu_index(alloc.node, g);
            self.gpu_slot.end(gi, finished);
            if busy > SimDuration::ZERO {
                let hw_start = started + (span - busy);
                self.gpu_hw.begin(gi, hw_start);
                self.gpu_hw.end(gi, finished);
            }
        }
        let submitted = self.submitted.remove(&id.0).unwrap_or(started);
        self.records.push(TaskRecord {
            id: id.0,
            name: name.to_string(),
            tag: tag.to_string(),
            submitted,
            started,
            finished,
            cores: alloc.core_ids.len() as u32,
            gpus: alloc.gpu_ids.len() as u32,
        });
    }

    /// Note that an attempt ended *without* completing its task: close its
    /// slot-occupancy intervals and book the span as wasted work. No
    /// [`TaskRecord`] is created (records are useful executions) and no
    /// hardware-busy GPU time is booked — a killed attempt never reached
    /// its inference kernels.
    pub fn attempt_wasted(&mut self, alloc: &Allocation, started: SimTime, at: SimTime) {
        for &c in &alloc.core_ids {
            self.cpu.end(self.core_index(alloc.node, c), at);
        }
        for &g in &alloc.gpu_ids {
            self.gpu_slot.end(self.gpu_index(alloc.node, g), at);
        }
        let span = at.since(started).as_secs_f64();
        self.wasted_core_seconds += span * alloc.core_ids.len() as f64;
        self.wasted_gpu_seconds += span * alloc.gpu_ids.len() as f64;
    }

    /// Note a transparent resubmission.
    pub fn note_retry(&mut self) {
        self.retries += 1;
    }

    /// Note a hedged speculative duplicate placement.
    pub fn note_hedge(&mut self) {
        self.hedges += 1;
    }

    /// Note that a hedge *loser* released its slots: close its occupancy
    /// intervals and book the span as hedge waste — the deliberate price
    /// of straggler mitigation, kept apart from fault/retry waste.
    pub fn attempt_hedge_wasted(&mut self, alloc: &Allocation, started: SimTime, at: SimTime) {
        for &c in &alloc.core_ids {
            self.cpu.end(self.core_index(alloc.node, c), at);
        }
        for &g in &alloc.gpu_ids {
            self.gpu_slot.end(self.gpu_index(alloc.node, g), at);
        }
        let span = at.since(started).as_secs_f64();
        self.hedge_wasted_core_seconds += span * alloc.core_ids.len() as f64;
        self.hedge_wasted_gpu_seconds += span * alloc.gpu_ids.len() as f64;
    }

    /// All completed-task records, in completion order.
    pub fn records(&self) -> &[TaskRecord] {
        &self.records
    }

    /// Aggregate report over `[0, end)`.
    pub fn report(&self, end: SimTime) -> UtilizationReport {
        UtilizationReport {
            cpu: self.cpu.mean_utilization(SimTime::ZERO, end),
            gpu_slot: self.gpu_slot.mean_utilization(SimTime::ZERO, end),
            gpu_hardware: self.gpu_hw.mean_utilization(SimTime::ZERO, end),
            makespan: end.since(SimTime::ZERO),
            tasks: self.records.len(),
            retries: self.retries,
            wasted_core_seconds: self.wasted_core_seconds,
            wasted_gpu_seconds: self.wasted_gpu_seconds,
            hedges: self.hedges,
            hedge_wasted_core_seconds: self.hedge_wasted_core_seconds,
            hedge_wasted_gpu_seconds: self.hedge_wasted_gpu_seconds,
        }
    }

    /// Binned CPU-occupancy time series (for plotting Figs. 4–5).
    pub fn cpu_series(&self, end: SimTime, bin: SimDuration) -> Vec<f64> {
        self.cpu.series(end, bin).values
    }

    /// Binned GPU slot-occupancy time series.
    pub fn gpu_slot_series(&self, end: SimTime, bin: SimDuration) -> Vec<f64> {
        self.gpu_slot.series(end, bin).values
    }

    /// Binned GPU hardware-busy time series.
    pub fn gpu_hw_series(&self, end: SimTime, bin: SimDuration) -> Vec<f64> {
        self.gpu_hw.series(end, bin).values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceRequest;

    fn t(s: u64) -> SimTime {
        SimTime::from_micros(s * 1_000_000)
    }

    fn alloc(cores: &[u32], gpus: &[u32]) -> Allocation {
        Allocation {
            node: 0,
            core_ids: cores.to_vec(),
            gpu_ids: gpus.to_vec(),
        }
    }

    #[test]
    fn slot_occupancy_covers_full_window() {
        let mut p = Profiler::new(4, 2);
        let a = alloc(&[0, 1], &[0]);
        p.task_submitted(TaskId(1), t(0));
        p.task_started(&a, t(10));
        p.task_finished(TaskId(1), "x", "", &a, t(10), t(20), 1.0);
        let r = p.report(t(20));
        // 2 of 4 cores busy for half the run → 25%.
        assert!((r.cpu - 0.25).abs() < 1e-9);
        // 1 of 2 GPUs for half the run → 25%.
        assert!((r.gpu_slot - 0.25).abs() < 1e-9);
        assert!((r.gpu_hardware - 0.25).abs() < 1e-9);
        assert_eq!(r.tasks, 1);
    }

    #[test]
    fn hardware_busy_respects_fraction() {
        let mut p = Profiler::new(1, 1);
        let a = alloc(&[0], &[0]);
        p.task_started(&a, t(0));
        p.task_finished(TaskId(1), "af2", "", &a, t(0), t(100), 0.25);
        let r = p.report(t(100));
        assert!((r.gpu_slot - 1.0).abs() < 1e-9);
        assert!((r.gpu_hardware - 0.25).abs() < 1e-9);
    }

    #[test]
    fn wait_and_turnaround_are_recorded() {
        let mut p = Profiler::new(1, 0);
        let a = alloc(&[0], &[]);
        p.task_submitted(TaskId(5), t(2));
        p.task_started(&a, t(7));
        p.task_finished(TaskId(5), "w", "tag", &a, t(7), t(12), 1.0);
        let rec = &p.records()[0];
        assert_eq!(rec.wait(), SimDuration::from_secs(5));
        assert_eq!(rec.turnaround(), SimDuration::from_secs(5));
        assert_eq!(rec.tag, "tag");
    }

    #[test]
    fn sequential_tasks_on_same_device_accumulate() {
        let mut p = Profiler::new(1, 0);
        let a = alloc(&[0], &[]);
        p.task_started(&a, t(0));
        p.task_finished(TaskId(1), "a", "", &a, t(0), t(4), 1.0);
        p.task_started(&a, t(6));
        p.task_finished(TaskId(2), "b", "", &a, t(6), t(10), 1.0);
        let r = p.report(t(10));
        assert!((r.cpu - 0.8).abs() < 1e-9);
    }

    #[test]
    fn series_show_the_load_shape() {
        let mut p = Profiler::new(2, 0);
        let a = alloc(&[0, 1], &[]);
        p.task_started(&a, t(0));
        p.task_finished(TaskId(1), "x", "", &a, t(0), t(5), 1.0);
        let series = p.cpu_series(t(10), SimDuration::from_secs(5));
        assert_eq!(series.len(), 2);
        assert!((series[0] - 1.0).abs() < 1e-9);
        assert!(series[1].abs() < 1e-9);
    }

    #[test]
    fn wasted_attempts_book_lost_seconds_without_records() {
        let mut p = Profiler::new(4, 2);
        let a = alloc(&[0, 1], &[0]);
        p.task_submitted(TaskId(1), t(0));
        p.task_started(&a, t(0));
        p.attempt_wasted(&a, t(0), t(10));
        p.note_retry();
        // The retry occupies the same slots again and succeeds.
        p.task_started(&a, t(10));
        p.task_finished(TaskId(1), "x", "", &a, t(10), t(20), 1.0);
        let r = p.report(t(20));
        assert_eq!(r.retries, 1);
        assert!((r.wasted_core_seconds - 20.0).abs() < 1e-9, "2 cores × 10 s");
        assert!((r.wasted_gpu_seconds - 10.0).abs() < 1e-9, "1 GPU × 10 s");
        assert_eq!(r.tasks, 1, "wasted attempts create no task records");
        // Occupancy still reflects the held slots: 2/4 cores for the whole run.
        assert!((r.cpu - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hedge_waste_is_booked_apart_from_retry_waste() {
        let mut p = Profiler::new(4, 0);
        let main = alloc(&[0, 1], &[]);
        let dup = Allocation {
            node: 0,
            core_ids: vec![2, 3],
            gpu_ids: vec![],
        };
        p.task_submitted(TaskId(1), t(0));
        p.task_started(&main, t(0));
        // A hedge duplicate launches at t=10 and the original wins at t=15.
        p.note_hedge();
        p.task_started(&dup, t(10));
        p.attempt_hedge_wasted(&dup, t(10), t(15));
        p.task_finished(TaskId(1), "x", "", &main, t(0), t(15), 0.0);
        let r = p.report(t(15));
        assert_eq!(r.hedges, 1);
        assert!((r.hedge_wasted_core_seconds - 10.0).abs() < 1e-9, "2 cores × 5 s");
        assert_eq!(r.hedge_wasted_gpu_seconds, 0.0);
        assert_eq!(r.wasted_core_seconds, 0.0, "hedge waste is not retry waste");
        assert_eq!(r.retries, 0);
        assert_eq!(r.tasks, 1, "the loser creates no task record");
    }

    #[test]
    fn fault_free_reports_have_zero_waste() {
        let mut p = Profiler::new(1, 0);
        let a = alloc(&[0], &[]);
        p.task_started(&a, t(0));
        p.task_finished(TaskId(1), "a", "", &a, t(0), t(4), 1.0);
        let r = p.report(t(4));
        assert_eq!(r.retries, 0);
        assert_eq!(r.wasted_core_seconds, 0.0);
        assert_eq!(r.wasted_gpu_seconds, 0.0);
    }

    #[test]
    fn zero_gpu_fraction_records_no_hw_time() {
        let mut p = Profiler::new(1, 1);
        let a = alloc(&[0], &[0]);
        p.task_started(&a, t(0));
        p.task_finished(TaskId(1), "cpu-ish", "", &a, t(0), t(10), 0.0);
        let r = p.report(t(10));
        assert_eq!(r.gpu_hardware, 0.0);
        assert!((r.gpu_slot - 1.0).abs() < 1e-9);
        let _ = ResourceRequest::cores(1);
    }
}
