//! Node specifications, resource requests, and slot allocations.
//!
//! The paper's testbed is a single Amarel node: 28 CPU cores, 4 Nvidia
//! Quadro M6000 GPUs, 128 GB RAM. [`NodeSpec::amarel`] reproduces it; other
//! shapes are available for scaling studies.

use impress_json::json_struct;
use std::fmt;

/// The shape of a compute node the pilot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSpec {
    /// Number of CPU cores.
    pub cores: u32,
    /// Number of GPUs.
    pub gpus: u32,
    /// RAM in gigabytes (bookkeeping only; tasks do not reserve memory).
    pub ram_gb: u32,
}
json_struct!(NodeSpec { cores, gpus, ram_gb });

impl NodeSpec {
    /// The paper's Rutgers Amarel node: 28 cores, 4 × Quadro M6000, 128 GB.
    pub fn amarel() -> NodeSpec {
        NodeSpec {
            cores: 28,
            gpus: 4,
            ram_gb: 128,
        }
    }

    /// An arbitrary node shape.
    pub fn new(cores: u32, gpus: u32, ram_gb: u32) -> NodeSpec {
        assert!(cores > 0, "a node needs at least one core");
        NodeSpec {
            cores,
            gpus,
            ram_gb,
        }
    }
}

impl fmt::Display for NodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cores / {} GPUs / {} GB",
            self.cores, self.gpus, self.ram_gb
        )
    }
}

/// A homogeneous multi-node allocation the pilot holds (the paper's future
/// "scalable platform": one pilot spanning several nodes). Tasks never span
/// nodes — like RP, placement is per-node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Shape of each node.
    pub node: NodeSpec,
    /// Number of identical nodes.
    pub count: u32,
}
json_struct!(ClusterSpec { node, count });

impl ClusterSpec {
    /// A single-node cluster (the paper's testbed).
    pub fn single(node: NodeSpec) -> ClusterSpec {
        ClusterSpec { node, count: 1 }
    }

    /// `count` identical nodes.
    pub fn homogeneous(node: NodeSpec, count: u32) -> ClusterSpec {
        assert!(count > 0, "a cluster needs at least one node");
        ClusterSpec { node, count }
    }

    /// Total CPU cores across the cluster.
    pub fn total_cores(&self) -> u32 {
        self.node.cores * self.count
    }

    /// Total GPUs across the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.node.gpus * self.count
    }
}

impl fmt::Display for ClusterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} × [{}]", self.count, self.node)
    }
}

/// Resources one task asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceRequest {
    /// CPU cores required.
    pub cores: u32,
    /// GPUs required.
    pub gpus: u32,
}
json_struct!(ResourceRequest { cores, gpus });

impl ResourceRequest {
    /// A CPU-only request.
    pub fn cores(n: u32) -> ResourceRequest {
        ResourceRequest { cores: n, gpus: 0 }
    }

    /// A request for cores plus GPUs.
    pub fn with_gpus(cores: u32, gpus: u32) -> ResourceRequest {
        ResourceRequest { cores, gpus }
    }

    /// Whether this request can ever fit on `node`.
    pub fn fits_node(&self, node: &NodeSpec) -> bool {
        self.cores <= node.cores && self.gpus <= node.gpus
    }
}

impl fmt::Display for ResourceRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.gpus > 0 {
            write!(f, "{}c+{}g", self.cores, self.gpus)
        } else {
            write!(f, "{}c", self.cores)
        }
    }
}

/// Concrete slots granted to a task: a node plus which of its cores and
/// GPUs. Device identity matters for per-device utilization traces
/// (Figs. 4–5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Node index within the pilot's cluster (0 on a single-node pilot).
    pub node: u32,
    /// Core ids granted (indices into the node's cores).
    pub core_ids: Vec<u32>,
    /// GPU ids granted (indices into the node's GPUs).
    pub gpu_ids: Vec<u32>,
}
json_struct!(Allocation {
    node,
    core_ids,
    gpu_ids
});

impl Allocation {
    /// Whether this allocation satisfies `request`.
    pub fn satisfies(&self, request: &ResourceRequest) -> bool {
        self.core_ids.len() == request.cores as usize && self.gpu_ids.len() == request.gpus as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amarel_matches_paper() {
        let n = NodeSpec::amarel();
        assert_eq!(n.cores, 28);
        assert_eq!(n.gpus, 4);
        assert_eq!(n.ram_gb, 128);
        assert_eq!(n.to_string(), "28 cores / 4 GPUs / 128 GB");
    }

    #[test]
    fn requests_fit_check() {
        let n = NodeSpec::amarel();
        assert!(ResourceRequest::cores(28).fits_node(&n));
        assert!(!ResourceRequest::cores(29).fits_node(&n));
        assert!(ResourceRequest::with_gpus(2, 4).fits_node(&n));
        assert!(!ResourceRequest::with_gpus(2, 5).fits_node(&n));
    }

    #[test]
    fn allocation_satisfaction() {
        let alloc = Allocation {
            node: 0,
            core_ids: vec![0, 1],
            gpu_ids: vec![3],
        };
        assert!(alloc.satisfies(&ResourceRequest::with_gpus(2, 1)));
        assert!(!alloc.satisfies(&ResourceRequest::with_gpus(2, 0)));
        assert!(!alloc.satisfies(&ResourceRequest::cores(3)));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_node_rejected() {
        NodeSpec::new(0, 1, 1);
    }

    #[test]
    fn request_display_forms() {
        assert_eq!(ResourceRequest::cores(6).to_string(), "6c");
        assert_eq!(ResourceRequest::with_gpus(2, 1).to_string(), "2c+1g");
    }
}
