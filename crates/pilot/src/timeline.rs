//! Execution timelines: Gantt-style views of a run's task records.
//!
//! The paper's Figs. 4–5 aggregate per-device utilization; for debugging
//! scheduling behaviour you usually want the orthogonal view — *which task
//! ran when, on what* — i.e. a Gantt chart. [`Timeline`] builds one from the
//! profiler's [`TaskRecord`]s, renders it as ASCII, and exports it as
//! serializable rows for external plotting.

use crate::profiler::TaskRecord;
use impress_json::json_struct;
use impress_sim::{SimDuration, SimTime};

/// One Gantt row: a task's placement in time and on devices.
#[derive(Debug, Clone)]
pub struct GanttRow {
    /// Task id.
    pub id: u64,
    /// Task name.
    pub name: String,
    /// Bookkeeping tag (pipeline/stage).
    pub tag: String,
    /// Queue wait before the slots were granted.
    pub wait: SimDuration,
    /// Slot-holding window start.
    pub start: SimTime,
    /// Slot-holding window end.
    pub end: SimTime,
    /// Cores held.
    pub cores: u32,
    /// GPUs held.
    pub gpus: u32,
}
json_struct!(GanttRow {
    id,
    name,
    tag,
    wait,
    start,
    end,
    cores,
    gpus
});

/// A run's Gantt chart.
#[derive(Debug, Clone)]
pub struct Timeline {
    rows: Vec<GanttRow>,
    end: SimTime,
}
json_struct!(Timeline { rows, end });

impl Timeline {
    /// Build from completed-task records (start-time order).
    pub fn from_records(records: &[TaskRecord]) -> Timeline {
        let mut rows: Vec<GanttRow> = records
            .iter()
            .map(|r| GanttRow {
                id: r.id,
                name: r.name.clone(),
                tag: r.tag.clone(),
                wait: r.wait(),
                start: r.started,
                end: r.finished,
                cores: r.cores,
                gpus: r.gpus,
            })
            .collect();
        rows.sort_by_key(|r| (r.start, r.id));
        let end = rows.iter().map(|r| r.end).max().unwrap_or(SimTime::ZERO);
        Timeline { rows, end }
    }

    /// The rows, in start order.
    pub fn rows(&self) -> &[GanttRow] {
        &self.rows
    }

    /// Latest task end.
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Mean queue wait across tasks.
    pub fn mean_wait(&self) -> SimDuration {
        if self.rows.is_empty() {
            return SimDuration::ZERO;
        }
        let total: f64 = self.rows.iter().map(|r| r.wait.as_secs_f64()).sum();
        SimDuration::from_secs_f64(total / self.rows.len() as f64)
    }

    /// Render an ASCII Gantt chart, `width` columns wide, at most
    /// `max_rows` rows (longest tasks first beyond that are dropped with a
    /// note). Each row: `name [  ███▒      ]` where `▒` marks queue wait.
    pub fn render(&self, width: usize, max_rows: usize) -> String {
        assert!(width >= 10, "need at least 10 columns");
        if self.rows.is_empty() {
            return "(empty timeline)\n".to_string();
        }
        let span = self.end.as_secs_f64().max(1e-9);
        let col = |t: SimTime| -> usize {
            ((t.as_secs_f64() / span) * (width - 1) as f64).round() as usize
        };
        let mut out = String::new();
        let shown = self.rows.len().min(max_rows);
        for row in &self.rows[..shown] {
            let submit =
                SimTime::from_micros(row.start.as_micros().saturating_sub(row.wait.as_micros()));
            let (s, w, e) = (col(submit), col(row.start), col(row.end));
            let mut bar: Vec<char> = vec![' '; width];
            for c in bar.iter_mut().take(w).skip(s) {
                *c = '\u{2592}'; // ▒ queued
            }
            for c in bar.iter_mut().take(e.max(w + 1)).skip(w) {
                *c = '\u{2588}'; // █ running
            }
            let label: String = format!("{:<18}", row.name).chars().take(18).collect();
            out.push_str(&format!(
                "{label} |{}| {}c{}\n",
                bar.into_iter().collect::<String>(),
                row.cores,
                if row.gpus > 0 {
                    format!("+{}g", row.gpus)
                } else {
                    String::new()
                }
            ));
        }
        if shown < self.rows.len() {
            out.push_str(&format!("… {} more tasks\n", self.rows.len() - shown));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, name: &str, submit: u64, start: u64, end: u64, gpus: u32) -> TaskRecord {
        TaskRecord {
            id,
            name: name.into(),
            tag: format!("pl.{id}"),
            submitted: SimTime::from_micros(submit * 1_000_000),
            started: SimTime::from_micros(start * 1_000_000),
            finished: SimTime::from_micros(end * 1_000_000),
            cores: 2,
            gpus,
        }
    }

    #[test]
    fn rows_sorted_by_start_and_end_found() {
        let tl = Timeline::from_records(&[
            record(2, "later", 5, 10, 20, 0),
            record(1, "early", 0, 1, 5, 1),
        ]);
        assert_eq!(tl.rows()[0].name, "early");
        assert_eq!(tl.end(), SimTime::from_micros(20_000_000));
    }

    #[test]
    fn mean_wait_is_correct() {
        let tl = Timeline::from_records(&[
            record(1, "a", 0, 4, 5, 0), // wait 4
            record(2, "b", 0, 2, 5, 0), // wait 2
        ]);
        assert!((tl.mean_wait().as_secs_f64() - 3.0).abs() < 1e-9);
        assert_eq!(Timeline::from_records(&[]).mean_wait(), SimDuration::ZERO);
    }

    #[test]
    fn render_marks_wait_and_run() {
        let tl = Timeline::from_records(&[record(1, "msa", 0, 50, 100, 0)]);
        let text = tl.render(40, 10);
        assert!(text.contains('\u{2592}'), "wait shading present: {text}");
        assert!(text.contains('\u{2588}'), "run bar present: {text}");
        assert!(text.contains("msa"));
        assert!(text.contains("2c"));
    }

    #[test]
    fn render_truncates_rows() {
        let records: Vec<TaskRecord> = (0..20)
            .map(|i| record(i, &format!("t{i}"), 0, i, i + 1, 0))
            .collect();
        let text = Timeline::from_records(&records).render(30, 5);
        assert!(text.contains("… 15 more tasks"));
        assert_eq!(text.lines().count(), 6);
    }

    #[test]
    fn gpu_suffix_appears() {
        let tl = Timeline::from_records(&[record(1, "inf", 0, 0, 10, 1)]);
        assert!(tl.render(30, 5).contains("2c+1g"));
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        assert_eq!(
            Timeline::from_records(&[]).render(30, 5),
            "(empty timeline)\n"
        );
    }
}
