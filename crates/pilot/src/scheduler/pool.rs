//! The free-slot pool: which cores and GPUs are unallocated right now.
//!
//! Free sets are fixed word-array bitmasks (bit `i` set ⇔ device `i` free).
//! Grants take the lowest set bit first (`trailing_zeros`), preserving the
//! lowest-id-first determinism contract the `BTreeSet` implementation
//! established, while capacity checks are popcount-maintained counters and
//! a whole 64-device word is scanned per instruction rather than per
//! tree node.

use crate::resources::{Allocation, NodeSpec, ResourceRequest};

/// Bitmask words with every bit in `0..total` set.
fn full_words(total: u32) -> Vec<u64> {
    let n = total.div_ceil(64) as usize;
    let mut words = vec![u64::MAX; n];
    if total % 64 != 0 {
        if let Some(last) = words.last_mut() {
            *last = (1u64 << (total % 64)) - 1;
        }
    }
    words
}

/// Clear the `n` lowest set bits of `words`, appending their indices (in
/// ascending order) to `out`. The caller guarantees at least `n` set bits.
fn take_lowest(words: &mut [u64], n: u32, out: &mut Vec<u32>) {
    let mut remaining = n;
    for (w, word) in words.iter_mut().enumerate() {
        while *word != 0 && remaining > 0 {
            let bit = word.trailing_zeros();
            *word &= *word - 1; // clear the lowest set bit
            out.push((w as u32) * 64 + bit);
            remaining -= 1;
        }
        if remaining == 0 {
            break;
        }
    }
    debug_assert_eq!(remaining, 0, "capacity counter out of sync with bitmask");
}

/// Free device sets for one node. Grants are lowest-id-first, so placement
/// is deterministic and device utilization traces are stable across runs.
#[derive(Debug, Clone)]
pub struct SlotPool {
    core_words: Vec<u64>,
    gpu_words: Vec<u64>,
    free_cores: u32,
    free_gpus: u32,
    total_cores: u32,
    total_gpus: u32,
    /// Reclaimed `Allocation` id buffers ([`SlotPool::release_owned`]),
    /// reused by [`SlotPool::try_alloc`] to keep the placement hot path
    /// allocation-free in steady state.
    spare: Vec<Vec<u32>>,
}

impl SlotPool {
    /// A pool with every device of `node` free.
    pub fn new(node: &NodeSpec) -> Self {
        SlotPool {
            core_words: full_words(node.cores),
            gpu_words: full_words(node.gpus),
            free_cores: node.cores,
            free_gpus: node.gpus,
            total_cores: node.cores,
            total_gpus: node.gpus,
            spare: Vec::new(),
        }
    }

    /// An empty, cleared id buffer — recycled if one is spare.
    fn id_buf(&mut self, capacity: u32) -> Vec<u32> {
        let mut buf = self.spare.pop().unwrap_or_default();
        buf.clear();
        buf.reserve(capacity as usize);
        buf
    }

    /// Grant `request` if it fits, taking the lowest-numbered free devices.
    pub fn try_alloc(&mut self, request: &ResourceRequest) -> Option<Allocation> {
        if self.free_cores < request.cores || self.free_gpus < request.gpus {
            return None;
        }
        let mut core_ids = self.id_buf(request.cores);
        let mut gpu_ids = self.id_buf(request.gpus);
        take_lowest(&mut self.core_words, request.cores, &mut core_ids);
        take_lowest(&mut self.gpu_words, request.gpus, &mut gpu_ids);
        self.free_cores -= request.cores;
        self.free_gpus -= request.gpus;
        Some(Allocation {
            node: 0,
            core_ids,
            gpu_ids,
        })
    }

    /// Return an allocation's devices. Panics on double-release — returning
    /// a device that is already free means the accounting is corrupt.
    pub fn release(&mut self, alloc: &Allocation) {
        for &c in &alloc.core_ids {
            assert!(c < self.total_cores, "core id {c} out of range");
            let mask = 1u64 << (c % 64);
            let word = &mut self.core_words[(c / 64) as usize];
            assert!(*word & mask == 0, "double release of core {c}");
            *word |= mask;
        }
        for &g in &alloc.gpu_ids {
            assert!(g < self.total_gpus, "gpu id {g} out of range");
            let mask = 1u64 << (g % 64);
            let word = &mut self.gpu_words[(g / 64) as usize];
            assert!(*word & mask == 0, "double release of gpu {g}");
            *word |= mask;
        }
        self.free_cores += alloc.core_ids.len() as u32;
        self.free_gpus += alloc.gpu_ids.len() as u32;
    }

    /// [`SlotPool::release`], additionally reclaiming the allocation's id
    /// buffers for reuse by future grants.
    pub fn release_owned(&mut self, alloc: Allocation) {
        self.release(&alloc);
        let Allocation {
            core_ids, gpu_ids, ..
        } = alloc;
        // A small cap keeps a burst of releases from hoarding memory.
        if self.spare.len() < 8 {
            self.spare.push(core_ids);
        }
        if self.spare.len() < 8 {
            self.spare.push(gpu_ids);
        }
    }

    /// Free core count.
    pub fn cores_free(&self) -> u32 {
        self.free_cores
    }

    /// Free GPU count.
    pub fn gpus_free(&self) -> u32 {
        self.free_gpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_round_trip() {
        let mut p = SlotPool::new(&NodeSpec::new(4, 2, 1));
        let a = p.try_alloc(&ResourceRequest::with_gpus(3, 1)).unwrap();
        assert_eq!(a.core_ids, vec![0, 1, 2]);
        assert_eq!(a.gpu_ids, vec![0]);
        assert_eq!(p.cores_free(), 1);
        p.release(&a);
        assert_eq!(p.cores_free(), 4);
        assert_eq!(p.gpus_free(), 2);
    }

    #[test]
    fn insufficient_capacity_returns_none_without_partial_grant() {
        let mut p = SlotPool::new(&NodeSpec::new(4, 1, 1));
        assert!(p.try_alloc(&ResourceRequest::with_gpus(2, 2)).is_none());
        // Nothing was taken.
        assert_eq!(p.cores_free(), 4);
        assert_eq!(p.gpus_free(), 1);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut p = SlotPool::new(&NodeSpec::new(2, 0, 1));
        let a = p.try_alloc(&ResourceRequest::cores(1)).unwrap();
        p.release(&a);
        p.release(&a);
    }

    #[test]
    fn grants_reuse_lowest_ids_after_release() {
        let mut p = SlotPool::new(&NodeSpec::new(4, 0, 1));
        let a = p.try_alloc(&ResourceRequest::cores(2)).unwrap(); // 0,1
        let _b = p.try_alloc(&ResourceRequest::cores(2)).unwrap(); // 2,3
        p.release(&a);
        let c = p.try_alloc(&ResourceRequest::cores(1)).unwrap();
        assert_eq!(c.core_ids, vec![0]);
    }

    #[test]
    fn grants_cross_word_boundaries_in_order() {
        // 100 cores spans two mask words; a 70-core grant must walk both.
        let mut p = SlotPool::new(&NodeSpec::new(100, 0, 1));
        let a = p.try_alloc(&ResourceRequest::cores(70)).unwrap();
        assert_eq!(a.core_ids, (0..70).collect::<Vec<u32>>());
        assert_eq!(p.cores_free(), 30);
        let b = p.try_alloc(&ResourceRequest::cores(30)).unwrap();
        assert_eq!(b.core_ids, (70..100).collect::<Vec<u32>>());
        p.release(&a);
        p.release(&b);
        assert_eq!(p.cores_free(), 100);
    }

    #[test]
    fn exact_64_device_node_has_no_phantom_bit() {
        let mut p = SlotPool::new(&NodeSpec::new(64, 0, 1));
        assert_eq!(p.cores_free(), 64);
        let a = p.try_alloc(&ResourceRequest::cores(64)).unwrap();
        assert_eq!(a.core_ids.len(), 64);
        assert!(p.try_alloc(&ResourceRequest::cores(1)).is_none());
    }

    #[test]
    fn release_owned_recycles_buffers() {
        let mut p = SlotPool::new(&NodeSpec::new(8, 0, 1));
        let a = p.try_alloc(&ResourceRequest::cores(4)).unwrap();
        p.release_owned(a);
        assert_eq!(p.spare.len(), 2, "both id buffers reclaimed");
        // The recycled grant is identical to a fresh one.
        let b = p.try_alloc(&ResourceRequest::cores(4)).unwrap();
        assert_eq!(b.core_ids, vec![0, 1, 2, 3]);
        assert!(b.gpu_ids.is_empty());
        assert_eq!(p.spare.len(), 0, "buffers handed back out");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_release_panics() {
        let mut p = SlotPool::new(&NodeSpec::new(4, 0, 1));
        p.release(&Allocation {
            node: 0,
            core_ids: vec![9],
            gpu_ids: vec![],
        });
    }
}
