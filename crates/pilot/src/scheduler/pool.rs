//! The free-slot pool: which cores and GPUs are unallocated right now.

use crate::resources::{Allocation, NodeSpec, ResourceRequest};
use std::collections::BTreeSet;

/// Free device sets for one node. Grants are lowest-id-first, so placement
/// is deterministic and device utilization traces are stable across runs.
#[derive(Debug, Clone)]
pub struct SlotPool {
    free_cores: BTreeSet<u32>,
    free_gpus: BTreeSet<u32>,
    total_cores: u32,
    total_gpus: u32,
}

impl SlotPool {
    /// A pool with every device of `node` free.
    pub fn new(node: &NodeSpec) -> Self {
        SlotPool {
            free_cores: (0..node.cores).collect(),
            free_gpus: (0..node.gpus).collect(),
            total_cores: node.cores,
            total_gpus: node.gpus,
        }
    }

    /// Grant `request` if it fits, taking the lowest-numbered free devices.
    pub fn try_alloc(&mut self, request: &ResourceRequest) -> Option<Allocation> {
        if (self.free_cores.len() as u32) < request.cores
            || (self.free_gpus.len() as u32) < request.gpus
        {
            return None;
        }
        let core_ids: Vec<u32> = self
            .free_cores
            .iter()
            .copied()
            .take(request.cores as usize)
            .collect();
        let gpu_ids: Vec<u32> = self
            .free_gpus
            .iter()
            .copied()
            .take(request.gpus as usize)
            .collect();
        for c in &core_ids {
            self.free_cores.remove(c);
        }
        for g in &gpu_ids {
            self.free_gpus.remove(g);
        }
        Some(Allocation {
            node: 0,
            core_ids,
            gpu_ids,
        })
    }

    /// Return an allocation's devices. Panics on double-release — returning
    /// a device that is already free means the accounting is corrupt.
    pub fn release(&mut self, alloc: &Allocation) {
        for &c in &alloc.core_ids {
            assert!(c < self.total_cores, "core id {c} out of range");
            assert!(self.free_cores.insert(c), "double release of core {c}");
        }
        for &g in &alloc.gpu_ids {
            assert!(g < self.total_gpus, "gpu id {g} out of range");
            assert!(self.free_gpus.insert(g), "double release of gpu {g}");
        }
    }

    /// Free core count.
    pub fn cores_free(&self) -> u32 {
        self.free_cores.len() as u32
    }

    /// Free GPU count.
    pub fn gpus_free(&self) -> u32 {
        self.free_gpus.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_round_trip() {
        let mut p = SlotPool::new(&NodeSpec::new(4, 2, 1));
        let a = p.try_alloc(&ResourceRequest::with_gpus(3, 1)).unwrap();
        assert_eq!(a.core_ids, vec![0, 1, 2]);
        assert_eq!(a.gpu_ids, vec![0]);
        assert_eq!(p.cores_free(), 1);
        p.release(&a);
        assert_eq!(p.cores_free(), 4);
        assert_eq!(p.gpus_free(), 2);
    }

    #[test]
    fn insufficient_capacity_returns_none_without_partial_grant() {
        let mut p = SlotPool::new(&NodeSpec::new(4, 1, 1));
        assert!(p.try_alloc(&ResourceRequest::with_gpus(2, 2)).is_none());
        // Nothing was taken.
        assert_eq!(p.cores_free(), 4);
        assert_eq!(p.gpus_free(), 1);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut p = SlotPool::new(&NodeSpec::new(2, 0, 1));
        let a = p.try_alloc(&ResourceRequest::cores(1)).unwrap();
        p.release(&a);
        p.release(&a);
    }

    #[test]
    fn grants_reuse_lowest_ids_after_release() {
        let mut p = SlotPool::new(&NodeSpec::new(4, 0, 1));
        let a = p.try_alloc(&ResourceRequest::cores(2)).unwrap(); // 0,1
        let _b = p.try_alloc(&ResourceRequest::cores(2)).unwrap(); // 2,3
        p.release(&a);
        let c = p.try_alloc(&ResourceRequest::cores(1)).unwrap();
        assert_eq!(c.core_ids, vec![0]);
    }
}
