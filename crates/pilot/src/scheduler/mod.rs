//! Slot scheduling: the pilot agent's core decision loop.
//!
//! The scheduler owns the node's free core/GPU sets and a queue of waiting
//! tasks, and decides which waiting tasks to place whenever capacity
//! changes. Two placement policies are provided:
//!
//! * [`PlacementPolicy::Fifo`] — strict arrival order; a large task at the
//!   head blocks everything behind it (simple, fair, poor utilization).
//! * [`PlacementPolicy::Backfill`] — RP-style continuous scheduling: any
//!   queued task that fits the current free slots may start, even if an
//!   earlier, larger task is still waiting. This is what lets IMPRESS
//!   "offload newly created pipelines … to the idle resources when
//!   possible" (§III-B) and is the default.
//!
//! Placement is deterministic: free devices are kept in ordered sets and
//! granted lowest-id-first, so identical submission sequences produce
//! identical allocations in both backends.

mod pool;

pub use pool::SlotPool;

use crate::resources::{Allocation, ClusterSpec, NodeSpec, ResourceRequest};
use crate::task::TaskId;
use impress_json::json_enum;
use std::collections::VecDeque;

/// Which waiting task may start when slots are free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Strict arrival order; the queue head blocks.
    Fifo,
    /// Continuous scheduling: any fitting task may start (default).
    Backfill,
}
json_enum!(PlacementPolicy { Fifo, Backfill });

/// The pilot agent's scheduler.
#[derive(Debug)]
pub struct Scheduler {
    pools: Vec<SlotPool>,
    /// `down[i]` — node `i` is drained (crashed) and takes no placements.
    down: Vec<bool>,
    queue: VecDeque<(TaskId, ResourceRequest, i32)>,
    policy: PlacementPolicy,
    cluster: ClusterSpec,
}

impl Scheduler {
    /// A scheduler over a single `node` with the given policy.
    pub fn new(node: NodeSpec, policy: PlacementPolicy) -> Self {
        Self::new_cluster(ClusterSpec::single(node), policy)
    }

    /// A scheduler over a homogeneous multi-node cluster. Tasks are placed
    /// first-fit across nodes and never span nodes.
    pub fn new_cluster(cluster: ClusterSpec, policy: PlacementPolicy) -> Self {
        Scheduler {
            pools: (0..cluster.count)
                .map(|_| SlotPool::new(&cluster.node))
                .collect(),
            down: vec![false; cluster.count as usize],
            queue: VecDeque::new(),
            policy,
            cluster,
        }
    }

    /// The per-node shape this scheduler manages.
    pub fn node(&self) -> &NodeSpec {
        &self.cluster.node
    }

    /// The full cluster shape.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// First-fit placement across the cluster's *up* nodes.
    fn try_alloc(&mut self, req: &ResourceRequest) -> Option<Allocation> {
        for (idx, pool) in self.pools.iter_mut().enumerate() {
            if self.down[idx] {
                continue;
            }
            if let Some(mut alloc) = pool.try_alloc(req) {
                alloc.node = idx as u32;
                return Some(alloc);
            }
        }
        None
    }

    /// Drain a crashed node: its pool is rebuilt empty-of-grants and it takes
    /// no placements until [`Scheduler::recover_node`]. The caller is
    /// responsible for requeueing tasks that were resident on it (their
    /// allocations are implicitly forfeited — do *not* release them).
    pub fn drain_node(&mut self, node: u32) {
        let idx = node as usize;
        assert!(!self.down[idx], "node {node} drained twice");
        self.down[idx] = true;
        self.pools[idx] = SlotPool::new(&self.cluster.node);
    }

    /// Re-admit a recovered node to placement with all slots free.
    pub fn recover_node(&mut self, node: u32) {
        let idx = node as usize;
        assert!(self.down[idx], "node {node} recovered while up");
        self.down[idx] = false;
    }

    /// Whether `node` is currently accepting placements.
    pub fn node_is_up(&self, node: u32) -> bool {
        !self.down[node as usize]
    }

    /// The active placement policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Enqueue a task at default priority. Panics if the request can never
    /// fit the node — accepting it would deadlock the queue.
    pub fn enqueue(&mut self, id: TaskId, request: ResourceRequest) {
        self.enqueue_with_priority(id, request, 0);
    }

    /// Enqueue a task with an explicit priority: higher priorities are
    /// considered first at every placement round; equal priorities keep
    /// submission (FIFO) order.
    pub fn enqueue_with_priority(&mut self, id: TaskId, request: ResourceRequest, priority: i32) {
        assert!(
            request.fits_node(&self.cluster.node),
            "{id}: request {request} can never fit node {}",
            self.cluster.node
        );
        // Stable insert before the first strictly-lower-priority entry.
        let pos = self
            .queue
            .iter()
            .position(|&(_, _, p)| p < priority)
            .unwrap_or(self.queue.len());
        self.queue.insert(pos, (id, request, priority));
    }

    /// Place every task the policy allows right now. Returns the granted
    /// `(task, allocation)` pairs in placement order.
    pub fn place_ready(&mut self) -> Vec<(TaskId, Allocation)> {
        let mut placed = Vec::new();
        match self.policy {
            PlacementPolicy::Fifo => {
                while let Some((_, req, _)) = self.queue.front() {
                    let req = *req;
                    match self.try_alloc(&req) {
                        Some(alloc) => {
                            let (id, _, _) = self.queue.pop_front().expect("front exists");
                            placed.push((id, alloc));
                        }
                        None => break,
                    }
                }
            }
            PlacementPolicy::Backfill => {
                let mut i = 0;
                while i < self.queue.len() {
                    let req = self.queue[i].1;
                    match self.try_alloc(&req) {
                        Some(alloc) => {
                            let (id, _, _) = self.queue.remove(i).expect("index in bounds");
                            placed.push((id, alloc));
                            // do not advance i: the next entry shifted into i
                        }
                        None => i += 1,
                    }
                }
            }
        }
        placed
    }

    /// Return an allocation's slots to its node's pool. The caller should
    /// follow with [`Scheduler::place_ready`]. Panics if the node is
    /// drained: allocations on a crashed node are forfeited, and releasing
    /// one is a backend bookkeeping bug.
    pub fn release(&mut self, alloc: &Allocation) {
        assert!(
            !self.down[alloc.node as usize],
            "release of an allocation on drained node {}",
            alloc.node
        );
        self.pools[alloc.node as usize].release(alloc);
    }

    /// Remove a queued (not yet placed) task. Returns `true` if it was found.
    pub fn cancel_queued(&mut self, id: TaskId) -> bool {
        if let Some(pos) = self.queue.iter().position(|(qid, _, _)| *qid == id) {
            self.queue.remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of tasks waiting for slots.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Free cores right now, across all *up* nodes.
    pub fn cores_free(&self) -> u32 {
        self.pools
            .iter()
            .zip(&self.down)
            .filter(|(_, d)| !**d)
            .map(|(p, _)| p.cores_free())
            .sum()
    }

    /// Free GPUs right now, across all *up* nodes.
    pub fn gpus_free(&self) -> u32 {
        self.pools
            .iter()
            .zip(&self.down)
            .filter(|(_, d)| !**d)
            .map(|(p, _)| p.gpus_free())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(c: u32, g: u32) -> ResourceRequest {
        ResourceRequest::with_gpus(c, g)
    }

    fn ids(placed: &[(TaskId, Allocation)]) -> Vec<u64> {
        placed.iter().map(|(id, _)| id.0).collect()
    }

    #[test]
    fn fifo_blocks_behind_large_head() {
        let mut s = Scheduler::new(NodeSpec::new(8, 0, 1), PlacementPolicy::Fifo);
        s.enqueue(TaskId(0), req(6, 0));
        s.enqueue(TaskId(1), req(6, 0)); // won't fit after task 0
        s.enqueue(TaskId(2), req(2, 0)); // would fit, but FIFO blocks
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![0]);
        assert_eq!(s.queue_len(), 2);
        assert_eq!(s.cores_free(), 2);
    }

    #[test]
    fn backfill_places_fitting_tasks_past_blocked_head() {
        let mut s = Scheduler::new(NodeSpec::new(8, 0, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(6, 0));
        s.enqueue(TaskId(1), req(6, 0));
        s.enqueue(TaskId(2), req(2, 0));
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![0, 2]);
        assert_eq!(s.cores_free(), 0);
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn release_makes_blocked_task_placeable() {
        let mut s = Scheduler::new(NodeSpec::new(8, 0, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(8, 0));
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![0]);
        s.enqueue(TaskId(1), req(4, 0));
        assert!(s.place_ready().is_empty());
        s.release(&placed[0].1);
        let placed2 = s.place_ready();
        assert_eq!(ids(&placed2), vec![1]);
    }

    #[test]
    fn gpus_are_scheduled_independently_of_cores() {
        let mut s = Scheduler::new(NodeSpec::new(28, 4, 128), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(2, 4)); // all GPUs
        s.enqueue(TaskId(1), req(2, 1)); // blocked on GPUs
        s.enqueue(TaskId(2), req(24, 0)); // CPU-only fits
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![0, 2]);
        assert_eq!(s.gpus_free(), 0);
        assert_eq!(s.cores_free(), 2);
    }

    #[test]
    fn allocations_satisfy_requests_and_do_not_overlap() {
        let mut s = Scheduler::new(NodeSpec::new(10, 2, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(4, 1));
        s.enqueue(TaskId(1), req(4, 1));
        let placed = s.place_ready();
        assert_eq!(placed.len(), 2);
        for (i, (_, a)) in placed.iter().enumerate() {
            assert!(a.satisfies(&req(4, 1)), "alloc {i}");
        }
        let mut all_cores: Vec<u32> = placed
            .iter()
            .flat_map(|(_, a)| a.core_ids.iter().copied())
            .collect();
        all_cores.sort_unstable();
        all_cores.dedup();
        assert_eq!(all_cores.len(), 8, "core grants must not overlap");
        assert_ne!(placed[0].1.gpu_ids, placed[1].1.gpu_ids);
    }

    #[test]
    fn release_returns_exactly_the_granted_devices() {
        let mut s = Scheduler::new(NodeSpec::new(4, 2, 1), PlacementPolicy::Fifo);
        s.enqueue(TaskId(0), req(4, 2));
        let placed = s.place_ready();
        assert_eq!(s.cores_free(), 0);
        assert_eq!(s.gpus_free(), 0);
        s.release(&placed[0].1);
        assert_eq!(s.cores_free(), 4);
        assert_eq!(s.gpus_free(), 2);
    }

    #[test]
    fn cancel_queued_removes_waiting_task() {
        let mut s = Scheduler::new(NodeSpec::new(2, 0, 1), PlacementPolicy::Fifo);
        s.enqueue(TaskId(0), req(2, 0));
        s.enqueue(TaskId(1), req(2, 0));
        let _ = s.place_ready();
        assert!(s.cancel_queued(TaskId(1)));
        assert!(!s.cancel_queued(TaskId(1)));
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    #[should_panic(expected = "can never fit")]
    fn impossible_request_is_rejected_at_enqueue() {
        let mut s = Scheduler::new(NodeSpec::new(4, 0, 1), PlacementPolicy::Fifo);
        s.enqueue(TaskId(0), req(5, 0));
    }

    #[test]
    fn higher_priority_tasks_jump_the_queue() {
        let mut s = Scheduler::new(NodeSpec::new(2, 0, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(2, 0)); // occupies everything
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![0]);
        s.enqueue_with_priority(TaskId(1), req(2, 0), 0);
        s.enqueue_with_priority(TaskId(2), req(2, 0), 5); // urgent
        s.enqueue_with_priority(TaskId(3), req(2, 0), 5); // urgent, later
        s.release(&placed[0].1);
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![2], "highest priority first");
        s.release(&placed[0].1);
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![3], "FIFO within a priority class");
        s.release(&placed[0].1);
        assert_eq!(ids(&s.place_ready()), vec![1]);
    }

    #[test]
    fn backfill_still_fills_around_high_priority_blockers() {
        let mut s = Scheduler::new(NodeSpec::new(4, 0, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(3, 0));
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![0]);
        // High-priority task needs 4 cores (blocked); low-priority 1-core
        // task can still backfill the free core.
        s.enqueue_with_priority(TaskId(1), req(4, 0), 9);
        s.enqueue_with_priority(TaskId(2), req(1, 0), -1);
        let placed2 = s.place_ready();
        assert_eq!(ids(&placed2), vec![2], "backfill around the blocked head");
    }

    #[test]
    fn multi_node_spills_to_next_node() {
        let cluster = ClusterSpec::homogeneous(NodeSpec::new(4, 1, 1), 2);
        let mut s = Scheduler::new_cluster(cluster, PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(4, 1)); // fills node 0
        s.enqueue(TaskId(1), req(4, 1)); // must go to node 1
        s.enqueue(TaskId(2), req(1, 0)); // nothing left anywhere
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![0, 1]);
        assert_eq!(placed[0].1.node, 0);
        assert_eq!(placed[1].1.node, 1);
        assert_eq!(s.cores_free(), 0);
        assert_eq!(s.queue_len(), 1);
        // Releasing node 1's allocation frees only node 1.
        s.release(&placed[1].1);
        assert_eq!(s.cores_free(), 4);
        let placed2 = s.place_ready();
        assert_eq!(placed2[0].1.node, 1);
    }

    #[test]
    fn drained_nodes_take_no_placements_until_recovered() {
        let cluster = ClusterSpec::homogeneous(NodeSpec::new(4, 0, 1), 2);
        let mut s = Scheduler::new_cluster(cluster, PlacementPolicy::Backfill);
        s.drain_node(0);
        assert!(!s.node_is_up(0));
        assert_eq!(s.cores_free(), 4, "down node's slots are not capacity");
        s.enqueue(TaskId(0), req(4, 0));
        s.enqueue(TaskId(1), req(4, 0));
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![0], "only node 1 can place");
        assert_eq!(placed[0].1.node, 1);
        s.recover_node(0);
        let placed2 = s.place_ready();
        assert_eq!(ids(&placed2), vec![1]);
        assert_eq!(placed2[0].1.node, 0, "recovered node is first-fit again");
    }

    #[test]
    fn drain_forfeits_resident_allocations() {
        let cluster = ClusterSpec::homogeneous(NodeSpec::new(4, 1, 1), 2);
        let mut s = Scheduler::new_cluster(cluster, PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(4, 1));
        let placed = s.place_ready();
        assert_eq!(placed[0].1.node, 0);
        s.drain_node(0);
        s.recover_node(0);
        // The pool was rebuilt: all slots free again, no double-release trap.
        assert_eq!(s.cores_free(), 8);
        assert_eq!(s.gpus_free(), 2);
    }

    #[test]
    #[should_panic(expected = "release of an allocation on drained node")]
    fn releasing_onto_a_drained_node_panics() {
        let mut s = Scheduler::new(NodeSpec::new(4, 0, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(2, 0));
        let placed = s.place_ready();
        s.drain_node(0);
        s.release(&placed[0].1);
    }

    #[test]
    #[should_panic(expected = "drained twice")]
    fn double_drain_panics() {
        let mut s = Scheduler::new(NodeSpec::new(4, 0, 1), PlacementPolicy::Backfill);
        s.drain_node(0);
        s.drain_node(0);
    }

    #[test]
    fn cluster_totals() {
        let cluster = ClusterSpec::homogeneous(NodeSpec::amarel(), 4);
        assert_eq!(cluster.total_cores(), 112);
        assert_eq!(cluster.total_gpus(), 16);
        let s = Scheduler::new_cluster(cluster, PlacementPolicy::Backfill);
        assert_eq!(s.cores_free(), 112);
        assert_eq!(s.gpus_free(), 16);
    }

    #[test]
    fn deterministic_lowest_id_first_grants() {
        let mut s = Scheduler::new(NodeSpec::new(6, 2, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(2, 1));
        let placed = s.place_ready();
        assert_eq!(placed[0].1.core_ids, vec![0, 1]);
        assert_eq!(placed[0].1.gpu_ids, vec![0]);
    }
}
