//! Slot scheduling: the pilot agent's core decision loop.
//!
//! The scheduler owns the node's free core/GPU sets and a queue of waiting
//! tasks, and decides which waiting tasks to place whenever capacity
//! changes. Two placement policies are provided:
//!
//! * [`PlacementPolicy::Fifo`] — strict arrival order; a large task at the
//!   head blocks everything behind it (simple, fair, poor utilization).
//! * [`PlacementPolicy::Backfill`] — RP-style continuous scheduling: any
//!   queued task that fits the current free slots may start, even if an
//!   earlier, larger task is still waiting. This is what lets IMPRESS
//!   "offload newly created pipelines … to the idle resources when
//!   possible" (§III-B) and is the default.
//!
//! Placement is deterministic: free devices are bitmask sets granted
//! lowest-id-first, so identical submission sequences produce identical
//! allocations in both backends.
//!
//! # Performance shape
//!
//! The waiting queue is a slab of entries threaded through priority
//! buckets (a `BTreeMap` keyed highest-priority-first): enqueue is
//! O(log P) in the number of distinct priorities, dequeue/cancel are O(1)
//! (cancel leaves a tombstone that is compacted away amortized), and no
//! operation shifts a `Vec`. Within a bucket, entries are grouped into
//! **shape classes** — one FIFO deque per distinct `(cores, gpus)`
//! request shape, merged by global arrival `seq` during a scan. Because
//! free capacity only shrinks within a scan, the first member of a shape
//! that fails to fit proves every later member of that shape fails too,
//! so the whole class is retired for the rest of the scan: a no-progress
//! backfill round costs O(distinct shapes), not O(queue length).
//! Placement rounds keep two further caches:
//!
//! * a **capacity/queue epoch** pair — if neither the queue nor free
//!   capacity changed since the last round, the round is provably a no-op
//!   and returns immediately;
//! * a **blocked-shape cache** — the smallest `(cores, gpus)` request that
//!   failed against the current free frontier. Any queued request
//!   dominating it (needing ≥ cores *and* ≥ gpus) cannot fit on any up
//!   node either and is skipped without touching the pools. The cache is
//!   invalidated whenever free capacity can *grow* (release / recover);
//!   placements and drains only shrink the frontier, so it stays valid
//!   across them.
//!
//! All three mechanisms are pure bypasses of work whose outcome is
//! already known: the placement *sequence* is bit-identical to the naive
//! scan-everything scheduler, which survives as the `#[cfg(test)]`
//! [`reference`] oracle that the differential property test replays
//! random workloads against.

mod pool;
#[cfg(test)]
mod reference;

pub use pool::SlotPool;

use crate::resources::{Allocation, ClusterSpec, NodeSpec, ResourceRequest};
use crate::task::TaskId;
use impress_json::json_enum;
use std::cmp::Reverse;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Which waiting task may start when slots are free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Strict arrival order; the queue head blocks.
    Fifo,
    /// Continuous scheduling: any fitting task may start (default).
    Backfill,
}
json_enum!(PlacementPolicy { Fifo, Backfill });

/// A queued task in the slab. `live` is cleared on cancellation; the
/// tombstone stays in its class deque until pruned or compacted so no
/// `VecDeque` ever shifts. `seq` is the global arrival number — the FIFO
/// tie-breaker when merging shape classes within a priority bucket.
#[derive(Debug)]
struct QueueEntry {
    id: TaskId,
    seq: u64,
    live: bool,
}

/// A flat segment tree over the cluster's nodes, keyed by each node's free
/// counters, answering *leftmost node whose free cores/GPUs admit a shape*
/// in O(log nodes) instead of the naive O(nodes) scan. Leaves store
/// `(cores_free, gpus_free, up)` per node (down nodes are stored as
/// never-admitting); internal nodes store the component-wise maxima and an
/// any-up flag. The internal condition is necessary but not sufficient —
/// the max cores and max gpus of a subtree can live on different leaves —
/// so the descent backtracks; the leaf condition is exact because
/// [`SlotPool::try_alloc`] admits precisely on its free counters. The
/// result is therefore always the same node the linear first-fit scan
/// would pick, which the reference-oracle property test replays.
#[derive(Debug)]
struct FitIndex {
    /// Leaf count rounded up to a power of two; node `i`'s leaf is `size + i`.
    size: usize,
    /// Per-subtree max free cores over up nodes.
    cores: Vec<u32>,
    /// Per-subtree max free GPUs over up nodes.
    gpus: Vec<u32>,
    /// Whether any node in the subtree is up.
    up: Vec<bool>,
}

impl FitIndex {
    /// An index over `nodes` identical fully-free up nodes.
    fn new(nodes: usize, node: &NodeSpec) -> Self {
        let size = nodes.next_power_of_two().max(1);
        let mut fit = FitIndex {
            size,
            cores: vec![0; 2 * size],
            gpus: vec![0; 2 * size],
            up: vec![false; 2 * size],
        };
        for i in 0..nodes {
            fit.cores[size + i] = node.cores;
            fit.gpus[size + i] = node.gpus;
            fit.up[size + i] = true;
        }
        for i in (1..size).rev() {
            fit.pull(i);
        }
        fit
    }

    fn pull(&mut self, i: usize) {
        self.cores[i] = self.cores[2 * i].max(self.cores[2 * i + 1]);
        self.gpus[i] = self.gpus[2 * i].max(self.gpus[2 * i + 1]);
        self.up[i] = self.up[2 * i] || self.up[2 * i + 1];
    }

    /// Record `node`'s new free counters (or its death), updating ancestors.
    fn set(&mut self, node: usize, cores: u32, gpus: u32, up: bool) {
        let mut i = self.size + node;
        self.cores[i] = cores;
        self.gpus[i] = gpus;
        self.up[i] = up;
        while i > 1 {
            i /= 2;
            self.pull(i);
        }
    }

    fn admits(&self, i: usize, cores: u32, gpus: u32) -> bool {
        self.up[i] && self.cores[i] >= cores && self.gpus[i] >= gpus
    }

    /// Leftmost up node whose free counters admit `(cores, gpus)`.
    fn first_fit(&self, cores: u32, gpus: u32) -> Option<usize> {
        self.descend(1, cores, gpus)
    }

    fn descend(&self, i: usize, cores: u32, gpus: u32) -> Option<usize> {
        if !self.admits(i, cores, gpus) {
            return None;
        }
        if i >= self.size {
            return Some(i - self.size);
        }
        self.descend(2 * i, cores, gpus)
            .or_else(|| self.descend(2 * i + 1, cores, gpus))
    }
}

/// One priority class: waiting entries grouped by request shape. Each
/// `(cores, gpus)` shape keeps its own FIFO deque of slab indices; a scan
/// merges the class heads by arrival `seq`. The grouping is what lets a
/// scan retire an entire shape in O(1) after its first member fails —
/// identical shapes against a frontier that only shrinks must all fail.
#[derive(Debug, Default)]
struct Bucket {
    classes: HashMap<(u32, u32), VecDeque<u32>>,
    /// Live entries across all classes (tombstones excluded).
    live: usize,
}

/// The pilot agent's scheduler.
#[derive(Debug)]
pub struct Scheduler {
    pools: Vec<SlotPool>,
    /// `down[i]` — node `i` is drained (crashed) and takes no placements.
    down: Vec<bool>,
    /// Segment tree over per-node free counters; kept in lockstep with
    /// `pools`/`down` so placement is O(log nodes).
    fit: FitIndex,
    /// Priority buckets, highest first.
    buckets: BTreeMap<Reverse<i32>, Bucket>,
    slab: Vec<QueueEntry>,
    /// Arrival counter feeding `QueueEntry::seq`.
    next_seq: u64,
    free_slots: Vec<u32>,
    /// Task id → (slab index, priority), for O(log P) cancellation.
    by_task: HashMap<u64, (u32, i32)>,
    /// Live (placeable) entries across all buckets.
    live: usize,
    /// Tombstones still threaded through buckets.
    dead: usize,
    policy: PlacementPolicy,
    cluster: ClusterSpec,
    /// Bumped on every queue mutation (enqueue/cancel).
    queue_epoch: u64,
    /// Bumped whenever free capacity can grow (release/recover).
    capacity_epoch: u64,
    /// Epochs at the end of the last completed placement round; when both
    /// still match, the next round is a provable no-op.
    scanned_queue_epoch: u64,
    scanned_capacity_epoch: u64,
    /// Smallest `(cores, gpus)` shape known not to fit any up node's free
    /// frontier. Valid until capacity grows ([`Scheduler::release`] /
    /// [`Scheduler::recover_node`] clear it).
    blocked_shape: Option<(u32, u32)>,
}

impl Scheduler {
    /// A scheduler over a single `node` with the given policy.
    pub fn new(node: NodeSpec, policy: PlacementPolicy) -> Self {
        Self::new_cluster(ClusterSpec::single(node), policy)
    }

    /// A scheduler over a homogeneous multi-node cluster. Tasks are placed
    /// first-fit across nodes and never span nodes.
    pub fn new_cluster(cluster: ClusterSpec, policy: PlacementPolicy) -> Self {
        Scheduler {
            pools: (0..cluster.count)
                .map(|_| SlotPool::new(&cluster.node))
                .collect(),
            down: vec![false; cluster.count as usize],
            fit: FitIndex::new(cluster.count as usize, &cluster.node),
            buckets: BTreeMap::new(),
            slab: Vec::new(),
            next_seq: 0,
            free_slots: Vec::new(),
            by_task: HashMap::new(),
            live: 0,
            dead: 0,
            policy,
            cluster,
            queue_epoch: 0,
            capacity_epoch: 0,
            scanned_queue_epoch: u64::MAX,
            scanned_capacity_epoch: u64::MAX,
            blocked_shape: None,
        }
    }

    /// The per-node shape this scheduler manages.
    pub fn node(&self) -> &NodeSpec {
        &self.cluster.node
    }

    /// The full cluster shape.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// First-fit placement across the cluster's *up* nodes. The fit index
    /// answers the node query in O(log nodes); down nodes are excluded by
    /// their never-admitting leaves, so no explicit `down` check is needed.
    fn alloc_in(
        pools: &mut [SlotPool],
        fit: &mut FitIndex,
        req: &ResourceRequest,
    ) -> Option<Allocation> {
        let idx = fit.first_fit(req.cores, req.gpus)?;
        let pool = &mut pools[idx];
        let mut alloc = pool
            .try_alloc(req)
            .expect("fit index admitted a node its pool rejects");
        alloc.node = idx as u32;
        fit.set(idx, pool.cores_free(), pool.gpus_free(), true);
        Some(alloc)
    }

    /// Direct first-fit allocation that bypasses the queue and skips the
    /// `avoid`ed nodes: the grant lands on the leftmost *up* node not in
    /// `avoid` whose free slots admit `req`, or nowhere. Used by hedged
    /// duplicates (which must not share the straggler's node) and by
    /// quarantine retry steering (away from nodes a task already failed
    /// on). The avoided nodes are masked out of the fit index for the
    /// single query and restored untouched afterwards; the queue, epochs
    /// and blocked-shape cache are unaffected (an allocation only shrinks
    /// the free frontier, which every cache already tolerates).
    pub fn alloc_avoiding(&mut self, req: &ResourceRequest, avoid: &[u32]) -> Option<Allocation> {
        let mut saved = Vec::with_capacity(avoid.len());
        for &n in avoid {
            let idx = n as usize;
            if idx >= self.pools.len() {
                continue;
            }
            let leaf = self.fit.size + idx;
            saved.push((idx, self.fit.cores[leaf], self.fit.gpus[leaf], self.fit.up[leaf]));
            self.fit.set(idx, 0, 0, false);
        }
        let alloc = Self::alloc_in(&mut self.pools, &mut self.fit, req);
        // Restore in reverse so a node named twice gets its original leaf
        // back last. The granted node (if any) is never in `avoid`, so no
        // restore clobbers the allocation's counter update.
        for (idx, cores, gpus, up) in saved.into_iter().rev() {
            self.fit.set(idx, cores, gpus, up);
        }
        alloc
    }

    /// Drain a crashed node: its pool is rebuilt empty-of-grants and it takes
    /// no placements until [`Scheduler::recover_node`]. The caller is
    /// responsible for requeueing tasks that were resident on it (their
    /// allocations are implicitly forfeited — do *not* release them).
    ///
    /// A drain only shrinks the placeable frontier, so the blocked-shape
    /// cache and round epochs stay valid.
    pub fn drain_node(&mut self, node: u32) {
        let idx = node as usize;
        assert!(!self.down[idx], "node {node} drained twice");
        self.down[idx] = true;
        self.pools[idx] = SlotPool::new(&self.cluster.node);
        self.fit.set(idx, 0, 0, false);
    }

    /// Re-admit a recovered node to placement with all slots free.
    pub fn recover_node(&mut self, node: u32) {
        let idx = node as usize;
        assert!(self.down[idx], "node {node} recovered while up");
        self.down[idx] = false;
        // The pool was rebuilt fully free at drain time.
        self.fit
            .set(idx, self.pools[idx].cores_free(), self.pools[idx].gpus_free(), true);
        self.capacity_epoch += 1;
        self.blocked_shape = None;
    }

    /// Whether `node` is currently accepting placements.
    pub fn node_is_up(&self, node: u32) -> bool {
        !self.down[node as usize]
    }

    /// The active placement policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Enqueue a task at default priority. Panics if the request can never
    /// fit the node — accepting it would deadlock the queue.
    pub fn enqueue(&mut self, id: TaskId, request: ResourceRequest) {
        self.enqueue_with_priority(id, request, 0);
    }

    /// Enqueue a task with an explicit priority: higher priorities are
    /// considered first at every placement round; equal priorities keep
    /// submission (FIFO) order.
    pub fn enqueue_with_priority(&mut self, id: TaskId, request: ResourceRequest, priority: i32) {
        assert!(
            request.fits_node(&self.cluster.node),
            "{id}: request {request} can never fit node {}",
            self.cluster.node
        );
        let entry = QueueEntry {
            id,
            seq: self.next_seq,
            live: true,
        };
        self.next_seq += 1;
        let idx = match self.free_slots.pop() {
            Some(i) => {
                self.slab[i as usize] = entry;
                i
            }
            None => {
                self.slab.push(entry);
                (self.slab.len() - 1) as u32
            }
        };
        let prev = self.by_task.insert(id.0, (idx, priority));
        assert!(prev.is_none(), "{id} enqueued while already queued");
        let bucket = self.buckets.entry(Reverse(priority)).or_default();
        bucket
            .classes
            .entry((request.cores, request.gpus))
            .or_default()
            .push_back(idx);
        bucket.live += 1;
        self.live += 1;
        self.queue_epoch += 1;
    }

    /// Place every task the policy allows right now. Returns the granted
    /// `(task, allocation)` pairs in placement order.
    pub fn place_ready(&mut self) -> Vec<(TaskId, Allocation)> {
        // Nothing enqueued and no capacity growth since the last round ⇒
        // every outcome is already known to be "no placement".
        if self.scanned_queue_epoch == self.queue_epoch
            && self.scanned_capacity_epoch == self.capacity_epoch
        {
            return Vec::new();
        }
        let mut placed = Vec::new();
        match self.policy {
            PlacementPolicy::Fifo => self.place_fifo(&mut placed),
            PlacementPolicy::Backfill => self.place_backfill(&mut placed),
        }
        self.scanned_queue_epoch = self.queue_epoch;
        self.scanned_capacity_epoch = self.capacity_epoch;
        if self.dead > 64 && self.dead >= self.live {
            self.compact();
        }
        placed
    }

    /// The earliest-arrived live head across a bucket's shape classes,
    /// pruning front tombstones along the way. Returns `(seq, shape)`.
    fn min_seq_head(
        slab: &[QueueEntry],
        free_slots: &mut Vec<u32>,
        dead: &mut usize,
        bucket: &mut Bucket,
    ) -> Option<(u64, (u32, u32))> {
        let mut best: Option<(u64, (u32, u32))> = None;
        for (&shape, dq) in bucket.classes.iter_mut() {
            while let Some(&idx) = dq.front() {
                if slab[idx as usize].live {
                    break;
                }
                dq.pop_front();
                free_slots.push(idx);
                *dead -= 1;
            }
            if let Some(&idx) = dq.front() {
                let seq = slab[idx as usize].seq;
                if best.is_none_or(|(s, _)| seq < s) {
                    best = Some((seq, shape));
                }
            }
        }
        best
    }

    /// Pop the front of `shape`'s class deque as a placed entry.
    fn take_head(&mut self, priority_key: Reverse<i32>, shape: (u32, u32)) -> TaskId {
        let bucket = self.buckets.get_mut(&priority_key).expect("bucket exists");
        let dq = bucket.classes.get_mut(&shape).expect("class exists");
        let idx = dq.pop_front().expect("class head exists");
        bucket.live -= 1;
        let entry = &mut self.slab[idx as usize];
        debug_assert!(entry.live, "placed a tombstone");
        entry.live = false;
        let id = entry.id;
        self.by_task.remove(&id.0);
        self.free_slots.push(idx);
        self.live -= 1;
        id
    }

    /// Strict-arrival placement: pop the overall earliest entry of the
    /// highest-priority bucket while it fits; the head blocks everything.
    fn place_fifo(&mut self, placed: &mut Vec<(TaskId, Allocation)>) {
        loop {
            let Some((&key, bucket)) = self.buckets.iter_mut().next() else {
                return;
            };
            let head = Self::min_seq_head(&self.slab, &mut self.free_slots, &mut self.dead, bucket);
            let Some((_, shape)) = head else {
                self.buckets.remove(&key);
                continue;
            };
            let req = ResourceRequest::with_gpus(shape.0, shape.1);
            match Self::alloc_in(&mut self.pools, &mut self.fit, &req) {
                Some(alloc) => {
                    let id = self.take_head(key, shape);
                    placed.push((id, alloc));
                }
                None => return, // FIFO: the head blocks everything behind it
            }
        }
    }

    /// Continuous scheduling: within each priority bucket (highest first),
    /// visit live entries in arrival order by merging the shape-class heads,
    /// placing whatever fits. Two prunes keep a no-progress scan at
    /// O(distinct shapes) instead of O(queue):
    ///
    /// * once a shape fails, its entire class is retired for the rest of
    ///   the scan — identical requests against a frontier that only
    ///   shrinks must fail identically;
    /// * classes dominating the cached blocked shape are skipped outright.
    ///
    /// Both prunes only skip fit tests whose outcome is already known, so
    /// the placement sequence equals the naive full scan's.
    fn place_backfill(&mut self, placed: &mut Vec<(TaskId, Allocation)>) {
        let mut blocked = self.blocked_shape;
        let keys: Vec<Reverse<i32>> = self.buckets.keys().copied().collect();
        let mut failed: Vec<(u32, u32)> = Vec::new();
        for key in keys {
            // Failures carry across buckets too: the frontier never grows
            // during a scan, so a shape that failed at high priority still
            // fails at low priority.
            loop {
                let bucket = self.buckets.get_mut(&key).expect("bucket exists");
                if bucket.live == 0 {
                    break;
                }
                // Earliest live head among classes not yet known to fail.
                let mut best: Option<(u64, (u32, u32))> = None;
                for (&shape, dq) in bucket.classes.iter_mut() {
                    if failed.contains(&shape) {
                        continue;
                    }
                    if let Some((bc, bg)) = blocked {
                        if shape.0 >= bc && shape.1 >= bg {
                            continue; // dominates a shape that fits nowhere
                        }
                    }
                    while let Some(&idx) = dq.front() {
                        if self.slab[idx as usize].live {
                            break;
                        }
                        dq.pop_front();
                        self.free_slots.push(idx);
                        self.dead -= 1;
                    }
                    if let Some(&idx) = dq.front() {
                        let seq = self.slab[idx as usize].seq;
                        if best.is_none_or(|(s, _)| seq < s) {
                            best = Some((seq, shape));
                        }
                    }
                }
                let Some((_, shape)) = best else { break };
                let req = ResourceRequest::with_gpus(shape.0, shape.1);
                match Self::alloc_in(&mut self.pools, &mut self.fit, &req) {
                    Some(alloc) => {
                        let id = self.take_head(key, shape);
                        placed.push((id, alloc));
                    }
                    None => {
                        failed.push(shape);
                        // Keep the smaller failed shape; an incomparable new
                        // failure keeps the existing cache (either is sound).
                        blocked = Some(match blocked {
                            Some((bc, bg)) if !(shape.0 <= bc && shape.1 <= bg) => (bc, bg),
                            _ => shape,
                        });
                    }
                }
            }
        }
        self.blocked_shape = blocked;
    }

    /// Rebuild the buckets without tombstones, reclaiming their slab slots.
    /// Runs when tombstones outnumber live entries, so the O(queue) sweep
    /// amortizes to O(1) per removal.
    fn compact(&mut self) {
        let slab = &self.slab;
        let free_slots = &mut self.free_slots;
        self.buckets.retain(|_, bucket| {
            bucket.classes.retain(|_, dq| {
                dq.retain(|&idx| {
                    if slab[idx as usize].live {
                        true
                    } else {
                        free_slots.push(idx);
                        false
                    }
                });
                !dq.is_empty()
            });
            bucket.live > 0
        });
        self.dead = 0;
    }

    /// Return an allocation's slots to its node's pool. The caller should
    /// follow with [`Scheduler::place_ready`]. Panics if the node is
    /// drained: allocations on a crashed node are forfeited, and releasing
    /// one is a backend bookkeeping bug.
    pub fn release(&mut self, alloc: &Allocation) {
        assert!(
            !self.down[alloc.node as usize],
            "release of an allocation on drained node {}",
            alloc.node
        );
        let idx = alloc.node as usize;
        self.pools[idx].release(alloc);
        self.fit
            .set(idx, self.pools[idx].cores_free(), self.pools[idx].gpus_free(), true);
        self.capacity_epoch += 1;
        self.blocked_shape = None;
    }

    /// [`Scheduler::release`], additionally recycling the allocation's id
    /// buffers into the node's pool for reuse by future grants — the
    /// steady-state place/release cycle then allocates nothing.
    pub fn release_owned(&mut self, alloc: Allocation) {
        assert!(
            !self.down[alloc.node as usize],
            "release of an allocation on drained node {}",
            alloc.node
        );
        let idx = alloc.node as usize;
        self.pools[idx].release_owned(alloc);
        self.fit
            .set(idx, self.pools[idx].cores_free(), self.pools[idx].gpus_free(), true);
        self.capacity_epoch += 1;
        self.blocked_shape = None;
    }

    /// Remove a queued (not yet placed) task. Returns `true` if it was found.
    pub fn cancel_queued(&mut self, id: TaskId) -> bool {
        match self.by_task.remove(&id.0) {
            Some((idx, priority)) => {
                let entry = &mut self.slab[idx as usize];
                debug_assert!(entry.live, "index map pointed at a tombstone");
                entry.live = false;
                self.live -= 1;
                self.dead += 1;
                self.buckets
                    .get_mut(&Reverse(priority))
                    .expect("queued task's bucket exists")
                    .live -= 1;
                // Removing a blocked FIFO head can unblock the next entry,
                // so the next round must not early-exit.
                self.queue_epoch += 1;
                if self.dead > 64 && self.dead >= self.live {
                    self.compact();
                }
                true
            }
            None => false,
        }
    }

    /// Number of tasks waiting for slots.
    pub fn queue_len(&self) -> usize {
        self.live
    }

    /// Free cores right now, across all *up* nodes.
    pub fn cores_free(&self) -> u32 {
        self.pools
            .iter()
            .zip(&self.down)
            .filter(|(_, d)| !**d)
            .map(|(p, _)| p.cores_free())
            .sum()
    }

    /// Free GPUs right now, across all *up* nodes.
    pub fn gpus_free(&self) -> u32 {
        self.pools
            .iter()
            .zip(&self.down)
            .filter(|(_, d)| !**d)
            .map(|(p, _)| p.gpus_free())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::reference::ReferenceScheduler;
    use super::*;
    use impress_sim::props;

    fn req(c: u32, g: u32) -> ResourceRequest {
        ResourceRequest::with_gpus(c, g)
    }

    fn ids(placed: &[(TaskId, Allocation)]) -> Vec<u64> {
        placed.iter().map(|(id, _)| id.0).collect()
    }

    #[test]
    fn fit_index_tracks_counters_and_skips_down_nodes() {
        let node = NodeSpec::new(4, 2, 1);
        let mut fit = FitIndex::new(10, &node);
        // Fully free: everything lands leftmost, padding leaves (10..16)
        // never admit.
        assert_eq!(fit.first_fit(4, 2), Some(0));
        assert_eq!(fit.first_fit(0, 0), Some(0));
        assert_eq!(fit.first_fit(5, 0), None, "no node has five cores");
        // Fill node 0, kill node 1: a full-node request must skip to 2.
        fit.set(0, 0, 0, true);
        fit.set(1, 0, 0, false);
        assert_eq!(fit.first_fit(4, 2), Some(2));
        // A zero request fits the exhausted-but-up node 0, not the down
        // node 1 — the up flag, not the counters, excludes dead nodes.
        assert_eq!(fit.first_fit(0, 0), Some(0));
        fit.set(0, 0, 0, false);
        assert_eq!(fit.first_fit(0, 0), Some(2));
        // Cores on node 3, gpus on node 2 only: the descent must backtrack
        // past subtrees whose maxima come from different leaves.
        for i in 2..10 {
            fit.set(i, 1, 0, true);
        }
        fit.set(2, 1, 2, true);
        fit.set(3, 4, 0, true);
        assert_eq!(fit.first_fit(4, 2), None);
        assert_eq!(fit.first_fit(1, 2), Some(2));
        assert_eq!(fit.first_fit(4, 0), Some(3));
        // Recovery readmits at full capacity.
        fit.set(1, 4, 2, true);
        assert_eq!(fit.first_fit(4, 2), Some(1));
    }

    #[test]
    fn fifo_blocks_behind_large_head() {
        let mut s = Scheduler::new(NodeSpec::new(8, 0, 1), PlacementPolicy::Fifo);
        s.enqueue(TaskId(0), req(6, 0));
        s.enqueue(TaskId(1), req(6, 0)); // won't fit after task 0
        s.enqueue(TaskId(2), req(2, 0)); // would fit, but FIFO blocks
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![0]);
        assert_eq!(s.queue_len(), 2);
        assert_eq!(s.cores_free(), 2);
    }

    #[test]
    fn backfill_places_fitting_tasks_past_blocked_head() {
        let mut s = Scheduler::new(NodeSpec::new(8, 0, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(6, 0));
        s.enqueue(TaskId(1), req(6, 0));
        s.enqueue(TaskId(2), req(2, 0));
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![0, 2]);
        assert_eq!(s.cores_free(), 0);
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn release_makes_blocked_task_placeable() {
        let mut s = Scheduler::new(NodeSpec::new(8, 0, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(8, 0));
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![0]);
        s.enqueue(TaskId(1), req(4, 0));
        assert!(s.place_ready().is_empty());
        s.release(&placed[0].1);
        let placed2 = s.place_ready();
        assert_eq!(ids(&placed2), vec![1]);
    }

    #[test]
    fn gpus_are_scheduled_independently_of_cores() {
        let mut s = Scheduler::new(NodeSpec::new(28, 4, 128), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(2, 4)); // all GPUs
        s.enqueue(TaskId(1), req(2, 1)); // blocked on GPUs
        s.enqueue(TaskId(2), req(24, 0)); // CPU-only fits
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![0, 2]);
        assert_eq!(s.gpus_free(), 0);
        assert_eq!(s.cores_free(), 2);
    }

    #[test]
    fn allocations_satisfy_requests_and_do_not_overlap() {
        let mut s = Scheduler::new(NodeSpec::new(10, 2, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(4, 1));
        s.enqueue(TaskId(1), req(4, 1));
        let placed = s.place_ready();
        assert_eq!(placed.len(), 2);
        for (i, (_, a)) in placed.iter().enumerate() {
            assert!(a.satisfies(&req(4, 1)), "alloc {i}");
        }
        let mut all_cores: Vec<u32> = placed
            .iter()
            .flat_map(|(_, a)| a.core_ids.iter().copied())
            .collect();
        all_cores.sort_unstable();
        all_cores.dedup();
        assert_eq!(all_cores.len(), 8, "core grants must not overlap");
        assert_ne!(placed[0].1.gpu_ids, placed[1].1.gpu_ids);
    }

    #[test]
    fn release_returns_exactly_the_granted_devices() {
        let mut s = Scheduler::new(NodeSpec::new(4, 2, 1), PlacementPolicy::Fifo);
        s.enqueue(TaskId(0), req(4, 2));
        let placed = s.place_ready();
        assert_eq!(s.cores_free(), 0);
        assert_eq!(s.gpus_free(), 0);
        s.release(&placed[0].1);
        assert_eq!(s.cores_free(), 4);
        assert_eq!(s.gpus_free(), 2);
    }

    #[test]
    fn cancel_queued_removes_waiting_task() {
        let mut s = Scheduler::new(NodeSpec::new(2, 0, 1), PlacementPolicy::Fifo);
        s.enqueue(TaskId(0), req(2, 0));
        s.enqueue(TaskId(1), req(2, 0));
        let _ = s.place_ready();
        assert!(s.cancel_queued(TaskId(1)));
        assert!(!s.cancel_queued(TaskId(1)));
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    #[should_panic(expected = "can never fit")]
    fn impossible_request_is_rejected_at_enqueue() {
        let mut s = Scheduler::new(NodeSpec::new(4, 0, 1), PlacementPolicy::Fifo);
        s.enqueue(TaskId(0), req(5, 0));
    }

    #[test]
    fn higher_priority_tasks_jump_the_queue() {
        let mut s = Scheduler::new(NodeSpec::new(2, 0, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(2, 0)); // occupies everything
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![0]);
        s.enqueue_with_priority(TaskId(1), req(2, 0), 0);
        s.enqueue_with_priority(TaskId(2), req(2, 0), 5); // urgent
        s.enqueue_with_priority(TaskId(3), req(2, 0), 5); // urgent, later
        s.release(&placed[0].1);
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![2], "highest priority first");
        s.release(&placed[0].1);
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![3], "FIFO within a priority class");
        s.release(&placed[0].1);
        assert_eq!(ids(&s.place_ready()), vec![1]);
    }

    #[test]
    fn backfill_still_fills_around_high_priority_blockers() {
        let mut s = Scheduler::new(NodeSpec::new(4, 0, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(3, 0));
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![0]);
        // High-priority task needs 4 cores (blocked); low-priority 1-core
        // task can still backfill the free core.
        s.enqueue_with_priority(TaskId(1), req(4, 0), 9);
        s.enqueue_with_priority(TaskId(2), req(1, 0), -1);
        let placed2 = s.place_ready();
        assert_eq!(ids(&placed2), vec![2], "backfill around the blocked head");
    }

    #[test]
    fn multi_node_spills_to_next_node() {
        let cluster = ClusterSpec::homogeneous(NodeSpec::new(4, 1, 1), 2);
        let mut s = Scheduler::new_cluster(cluster, PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(4, 1)); // fills node 0
        s.enqueue(TaskId(1), req(4, 1)); // must go to node 1
        s.enqueue(TaskId(2), req(1, 0)); // nothing left anywhere
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![0, 1]);
        assert_eq!(placed[0].1.node, 0);
        assert_eq!(placed[1].1.node, 1);
        assert_eq!(s.cores_free(), 0);
        assert_eq!(s.queue_len(), 1);
        // Releasing node 1's allocation frees only node 1.
        s.release(&placed[1].1);
        assert_eq!(s.cores_free(), 4);
        let placed2 = s.place_ready();
        assert_eq!(placed2[0].1.node, 1);
    }

    #[test]
    fn drained_nodes_take_no_placements_until_recovered() {
        let cluster = ClusterSpec::homogeneous(NodeSpec::new(4, 0, 1), 2);
        let mut s = Scheduler::new_cluster(cluster, PlacementPolicy::Backfill);
        s.drain_node(0);
        assert!(!s.node_is_up(0));
        assert_eq!(s.cores_free(), 4, "down node's slots are not capacity");
        s.enqueue(TaskId(0), req(4, 0));
        s.enqueue(TaskId(1), req(4, 0));
        let placed = s.place_ready();
        assert_eq!(ids(&placed), vec![0], "only node 1 can place");
        assert_eq!(placed[0].1.node, 1);
        s.recover_node(0);
        let placed2 = s.place_ready();
        assert_eq!(ids(&placed2), vec![1]);
        assert_eq!(placed2[0].1.node, 0, "recovered node is first-fit again");
    }

    #[test]
    fn drain_forfeits_resident_allocations() {
        let cluster = ClusterSpec::homogeneous(NodeSpec::new(4, 1, 1), 2);
        let mut s = Scheduler::new_cluster(cluster, PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(4, 1));
        let placed = s.place_ready();
        assert_eq!(placed[0].1.node, 0);
        s.drain_node(0);
        s.recover_node(0);
        // The pool was rebuilt: all slots free again, no double-release trap.
        assert_eq!(s.cores_free(), 8);
        assert_eq!(s.gpus_free(), 2);
    }

    #[test]
    #[should_panic(expected = "release of an allocation on drained node")]
    fn releasing_onto_a_drained_node_panics() {
        let mut s = Scheduler::new(NodeSpec::new(4, 0, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(2, 0));
        let placed = s.place_ready();
        s.drain_node(0);
        s.release(&placed[0].1);
    }

    #[test]
    #[should_panic(expected = "drained twice")]
    fn double_drain_panics() {
        let mut s = Scheduler::new(NodeSpec::new(4, 0, 1), PlacementPolicy::Backfill);
        s.drain_node(0);
        s.drain_node(0);
    }

    #[test]
    fn cluster_totals() {
        let cluster = ClusterSpec::homogeneous(NodeSpec::amarel(), 4);
        assert_eq!(cluster.total_cores(), 112);
        assert_eq!(cluster.total_gpus(), 16);
        let s = Scheduler::new_cluster(cluster, PlacementPolicy::Backfill);
        assert_eq!(s.cores_free(), 112);
        assert_eq!(s.gpus_free(), 16);
    }

    #[test]
    fn deterministic_lowest_id_first_grants() {
        let mut s = Scheduler::new(NodeSpec::new(6, 2, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(2, 1));
        let placed = s.place_ready();
        assert_eq!(placed[0].1.core_ids, vec![0, 1]);
        assert_eq!(placed[0].1.gpu_ids, vec![0]);
    }

    #[test]
    fn repeated_noop_rounds_early_exit_without_a_scan() {
        let mut s = Scheduler::new(NodeSpec::new(4, 0, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(4, 0));
        s.enqueue(TaskId(1), req(4, 0));
        assert_eq!(ids(&s.place_ready()), vec![0]);
        // Nothing changed: the next rounds must both be empty (and are
        // epoch-level no-ops internally).
        assert!(s.place_ready().is_empty());
        assert!(s.place_ready().is_empty());
        // A queue mutation re-arms the round.
        s.enqueue(TaskId(2), req(1, 0));
        assert!(s.place_ready().is_empty(), "still no capacity");
        let before = s.queue_len();
        assert!(s.cancel_queued(TaskId(2)));
        assert_eq!(s.queue_len(), before - 1);
    }

    #[test]
    fn canceling_a_blocked_head_is_not_masked_by_the_epoch_cache() {
        let mut s = Scheduler::new(NodeSpec::new(4, 0, 1), PlacementPolicy::Fifo);
        s.enqueue(TaskId(0), req(2, 0));
        assert_eq!(ids(&s.place_ready()), vec![0]); // 2 cores stay free
        s.enqueue(TaskId(1), req(4, 0)); // head: blocked (only 2 free)
        s.enqueue(TaskId(2), req(2, 0)); // would fit, FIFO-blocked behind it
        assert!(s.place_ready().is_empty());
        // Capacity never changed, so only the cancel's queue-epoch bump can
        // re-arm the round; if it didn't, task 2 would be lost here.
        assert!(s.cancel_queued(TaskId(1)));
        assert_eq!(ids(&s.place_ready()), vec![2]);
    }

    #[test]
    fn tombstone_floods_are_compacted() {
        let mut s = Scheduler::new(NodeSpec::new(2, 0, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(10_000), req(2, 0));
        let placed = s.place_ready();
        for i in 0..500u64 {
            s.enqueue(TaskId(i), req(1, 0));
        }
        for i in 0..500u64 {
            assert!(s.cancel_queued(TaskId(i)));
        }
        assert_eq!(s.queue_len(), 0);
        assert!(s.dead <= 64, "mass cancellation must compact: {}", s.dead);
        s.release(&placed[0].1);
        assert!(s.place_ready().is_empty());
        // The slab slots are reusable.
        s.enqueue(TaskId(600), req(1, 0));
        assert_eq!(ids(&s.place_ready()), vec![600]);
    }

    #[test]
    fn alloc_avoiding_skips_named_nodes_and_restores_the_index() {
        let cluster = ClusterSpec::homogeneous(NodeSpec::new(4, 0, 1), 3);
        let mut s = Scheduler::new_cluster(cluster, PlacementPolicy::Backfill);
        // A direct grant avoiding node 0 lands on node 1.
        let a = s.alloc_avoiding(&req(4, 0), &[0]).expect("node 1 fits");
        assert_eq!(a.node, 1);
        // Avoiding every node with capacity yields nothing.
        assert!(s.alloc_avoiding(&req(4, 0), &[0, 2]).is_none());
        // The masks were restored: a queued placement still sees node 0
        // first, exactly as if alloc_avoiding had never run.
        s.enqueue(TaskId(0), req(4, 0));
        let placed = s.place_ready();
        assert_eq!(placed[0].1.node, 0);
        s.release_owned(a); // node 1 free again; node 0 still occupied
        s.drain_node(2);
        assert!(
            s.alloc_avoiding(&req(1, 0), &[1]).is_none(),
            "node 0 is full and node 2 is down"
        );
        let b = s.alloc_avoiding(&req(4, 0), &[0]).expect("node 1 fits");
        assert_eq!(b.node, 1);
        // Out-of-range avoid entries are ignored, not a panic.
        s.release_owned(b);
        assert!(s.alloc_avoiding(&req(4, 0), &[7]).is_some());
    }

    #[test]
    fn blocked_shape_cache_clears_when_capacity_grows() {
        let mut s = Scheduler::new(NodeSpec::new(8, 0, 1), PlacementPolicy::Backfill);
        s.enqueue(TaskId(0), req(6, 0));
        let placed = s.place_ready();
        s.enqueue(TaskId(1), req(4, 0)); // fails: 2 free
        s.enqueue(TaskId(2), req(5, 0)); // dominated by (4,0): skipped
        assert!(s.place_ready().is_empty());
        assert_eq!(s.blocked_shape, Some((4, 0)));
        s.release(&placed[0].1);
        assert_eq!(s.blocked_shape, None, "release invalidates the cache");
        assert_eq!(ids(&s.place_ready()), vec![1], "6 free places only task 1");
    }

    props! {
        /// Differential determinism oracle: random workloads replayed
        /// through the optimized scheduler and the naive pre-optimization
        /// reference must produce *identical* placement sequences (ids,
        /// device grants, node assignments), queue lengths, and free
        /// counters — under both policies, priorities, cancels, drains and
        /// recoveries. This is the property that guarantees every pinned
        /// artifact regenerates byte-for-byte.
        fn optimized_scheduler_matches_reference_oracle(rng, cases = 256) {
            let cores = 1 + rng.below(32) as u32;
            let gpus = rng.below(5) as u32;
            let nodes = 1 + rng.below(12) as u32;
            let cluster = ClusterSpec::homogeneous(NodeSpec::new(cores, gpus, 64), nodes);
            let policy = if rng.below(2) == 0 {
                PlacementPolicy::Fifo
            } else {
                PlacementPolicy::Backfill
            };
            let mut opt = Scheduler::new_cluster(cluster, policy);
            let mut oracle = ReferenceScheduler::new_cluster(cluster, policy);
            let mut outstanding: Vec<Allocation> = Vec::new();
            let mut queued: Vec<TaskId> = Vec::new();
            let mut next_id = 0u64;

            let ops = 30 + rng.below(60);
            for _ in 0..ops {
                match rng.below(100) {
                    0..=39 => {
                        let r = ResourceRequest::with_gpus(
                            1 + rng.below(cores as usize) as u32,
                            rng.below(gpus as usize + 1) as u32,
                        );
                        let prio = rng.below(7) as i32 - 3;
                        let id = TaskId(next_id);
                        next_id += 1;
                        opt.enqueue_with_priority(id, r, prio);
                        oracle.enqueue_with_priority(id, r, prio);
                        queued.push(id);
                    }
                    40..=64 => {
                        let a = opt.place_ready();
                        let b = oracle.place_ready();
                        assert_eq!(a, b, "placement sequences diverged");
                        for (id, alloc) in a {
                            queued.retain(|q| *q != id);
                            outstanding.push(alloc);
                        }
                    }
                    65..=79 => {
                        if outstanding.is_empty() {
                            continue;
                        }
                        let alloc = outstanding.swap_remove(rng.below(outstanding.len()));
                        opt.release(&alloc);
                        oracle.release(&alloc);
                    }
                    80..=89 => {
                        // Cancel a random queued id — or a bogus one, which
                        // both sides must report as not-found.
                        let id = if queued.is_empty() || rng.below(4) == 0 {
                            TaskId(next_id + 1_000_000)
                        } else {
                            queued[rng.below(queued.len())]
                        };
                        assert_eq!(opt.cancel_queued(id), oracle.cancel_queued(id));
                        queued.retain(|q| *q != id);
                    }
                    90..=94 => {
                        let up: Vec<u32> =
                            (0..nodes).filter(|&n| opt.node_is_up(n)).collect();
                        if up.is_empty() {
                            continue;
                        }
                        let node = up[rng.below(up.len())];
                        opt.drain_node(node);
                        oracle.drain_node(node);
                        // Resident allocations are forfeited, never released.
                        outstanding.retain(|a| a.node != node);
                    }
                    _ => {
                        let down: Vec<u32> =
                            (0..nodes).filter(|&n| !opt.node_is_up(n)).collect();
                        if down.is_empty() {
                            continue;
                        }
                        let node = down[rng.below(down.len())];
                        opt.recover_node(node);
                        oracle.recover_node(node);
                    }
                }
                assert_eq!(opt.queue_len(), oracle.queue_len());
                assert_eq!(opt.cores_free(), oracle.cores_free());
                assert_eq!(opt.gpus_free(), oracle.gpus_free());
            }

            // Drain to quiescence: recover every node, then alternate
            // placement rounds with immediate releases until the queue is
            // empty — the whole tail must stay in lock-step too.
            for node in 0..nodes {
                if !opt.node_is_up(node) {
                    opt.recover_node(node);
                    oracle.recover_node(node);
                }
            }
            for alloc in outstanding.drain(..) {
                opt.release(&alloc);
                oracle.release(&alloc);
            }
            loop {
                let a = opt.place_ready();
                let b = oracle.place_ready();
                assert_eq!(a, b, "drain-phase placement sequences diverged");
                if a.is_empty() {
                    break;
                }
                for (_, alloc) in &a {
                    opt.release(alloc);
                    oracle.release(alloc);
                }
            }
            assert_eq!(opt.queue_len(), oracle.queue_len());
        }
    }
}
