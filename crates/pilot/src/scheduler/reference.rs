//! The pre-optimization scheduler, kept verbatim as a test-only oracle.
//!
//! This is the naive implementation the optimized [`super::Scheduler`]
//! replaced: `BTreeSet` free sets granted lowest-id-first, a single
//! `VecDeque` queue with linear-scan priority insertion, `Vec::remove`
//! shifting on backfill placement, and a full rescan of everything on every
//! placement round. It is deliberately simple enough to be obviously
//! correct; the differential property test in `super::tests` replays random
//! workloads through both implementations and asserts identical placement
//! sequences, queue lengths and free counters, which is what lets the
//! optimized code claim bit-identical artifacts.
//!
//! Do not "improve" this module — its value is that it does not share
//! structure (or therefore bugs) with the fast path.

use crate::resources::{Allocation, ClusterSpec, NodeSpec, ResourceRequest};
use crate::task::TaskId;
use std::collections::{BTreeSet, VecDeque};

/// Naive free-device sets for one node (the old `SlotPool`).
#[derive(Debug, Clone)]
struct ReferencePool {
    free_cores: BTreeSet<u32>,
    free_gpus: BTreeSet<u32>,
}

impl ReferencePool {
    fn new(node: &NodeSpec) -> Self {
        ReferencePool {
            free_cores: (0..node.cores).collect(),
            free_gpus: (0..node.gpus).collect(),
        }
    }

    fn try_alloc(&mut self, request: &ResourceRequest) -> Option<Allocation> {
        if (self.free_cores.len() as u32) < request.cores
            || (self.free_gpus.len() as u32) < request.gpus
        {
            return None;
        }
        let core_ids: Vec<u32> = self
            .free_cores
            .iter()
            .copied()
            .take(request.cores as usize)
            .collect();
        let gpu_ids: Vec<u32> = self
            .free_gpus
            .iter()
            .copied()
            .take(request.gpus as usize)
            .collect();
        for c in &core_ids {
            self.free_cores.remove(c);
        }
        for g in &gpu_ids {
            self.free_gpus.remove(g);
        }
        Some(Allocation {
            node: 0,
            core_ids,
            gpu_ids,
        })
    }

    fn release(&mut self, alloc: &Allocation) {
        for &c in &alloc.core_ids {
            assert!(self.free_cores.insert(c), "oracle: double release of core {c}");
        }
        for &g in &alloc.gpu_ids {
            assert!(self.free_gpus.insert(g), "oracle: double release of gpu {g}");
        }
    }
}

/// The old scan-everything scheduler, API-compatible with the subset the
/// differential test drives.
#[derive(Debug)]
pub struct ReferenceScheduler {
    pools: Vec<ReferencePool>,
    down: Vec<bool>,
    queue: VecDeque<(TaskId, ResourceRequest, i32)>,
    policy: super::PlacementPolicy,
    cluster: ClusterSpec,
}

impl ReferenceScheduler {
    pub fn new_cluster(cluster: ClusterSpec, policy: super::PlacementPolicy) -> Self {
        ReferenceScheduler {
            pools: (0..cluster.count)
                .map(|_| ReferencePool::new(&cluster.node))
                .collect(),
            down: vec![false; cluster.count as usize],
            queue: VecDeque::new(),
            policy,
            cluster,
        }
    }

    fn try_alloc(&mut self, req: &ResourceRequest) -> Option<Allocation> {
        for (idx, pool) in self.pools.iter_mut().enumerate() {
            if self.down[idx] {
                continue;
            }
            if let Some(mut alloc) = pool.try_alloc(req) {
                alloc.node = idx as u32;
                return Some(alloc);
            }
        }
        None
    }

    pub fn drain_node(&mut self, node: u32) {
        let idx = node as usize;
        assert!(!self.down[idx], "node {node} drained twice");
        self.down[idx] = true;
        self.pools[idx] = ReferencePool::new(&self.cluster.node);
    }

    pub fn recover_node(&mut self, node: u32) {
        let idx = node as usize;
        assert!(self.down[idx], "node {node} recovered while up");
        self.down[idx] = false;
    }

    pub fn enqueue_with_priority(&mut self, id: TaskId, request: ResourceRequest, priority: i32) {
        assert!(request.fits_node(&self.cluster.node));
        // Stable insert before the first strictly-lower-priority entry.
        let pos = self
            .queue
            .iter()
            .position(|&(_, _, p)| p < priority)
            .unwrap_or(self.queue.len());
        self.queue.insert(pos, (id, request, priority));
    }

    pub fn place_ready(&mut self) -> Vec<(TaskId, Allocation)> {
        let mut placed = Vec::new();
        match self.policy {
            super::PlacementPolicy::Fifo => {
                while let Some((_, req, _)) = self.queue.front() {
                    let req = *req;
                    match self.try_alloc(&req) {
                        Some(alloc) => {
                            let (id, _, _) = self.queue.pop_front().expect("front exists");
                            placed.push((id, alloc));
                        }
                        None => break,
                    }
                }
            }
            super::PlacementPolicy::Backfill => {
                let mut i = 0;
                while i < self.queue.len() {
                    let req = self.queue[i].1;
                    match self.try_alloc(&req) {
                        Some(alloc) => {
                            let (id, _, _) = self.queue.remove(i).expect("index in bounds");
                            placed.push((id, alloc));
                            // do not advance i: the next entry shifted into i
                        }
                        None => i += 1,
                    }
                }
            }
        }
        placed
    }

    pub fn release(&mut self, alloc: &Allocation) {
        assert!(
            !self.down[alloc.node as usize],
            "oracle: release of an allocation on drained node {}",
            alloc.node
        );
        self.pools[alloc.node as usize].release(alloc);
    }

    pub fn cancel_queued(&mut self, id: TaskId) -> bool {
        if let Some(pos) = self.queue.iter().position(|(qid, _, _)| *qid == id) {
            self.queue.remove(pos);
            true
        } else {
            false
        }
    }

    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    pub fn cores_free(&self) -> u32 {
        self.pools
            .iter()
            .zip(&self.down)
            .filter(|(_, d)| !**d)
            .map(|(p, _)| p.free_cores.len() as u32)
            .sum()
    }

    pub fn gpus_free(&self) -> u32 {
        self.pools
            .iter()
            .zip(&self.down)
            .filter(|(_, d)| !**d)
            .map(|(p, _)| p.free_gpus.len() as u32)
            .sum()
    }
}
