//! The seeded control plane: a message-layer fault model for
//! coordinator↔node traffic.
//!
//! The paper's middleware splits the design loop (client) from the pilot
//! runtime (agent) across a real network; every control message — task
//! submission, cancellation, completion reports, retry verdicts,
//! heartbeats — can be dropped, duplicated, delayed or reordered, and a
//! partition can sever the coordinator from a whole node group for
//! minutes. [`ControlPlane`] realizes a [`LinkFaults`] config as *pure,
//! seeded per-message verdicts*: given a stable message identity (a label
//! plus a numeric key), it answers "when does this message arrive, and
//! does it arrive twice?" deterministically, independent of call order.
//! All three backends route their control traffic through one of these,
//! so a single seed produces the same message history everywhere.
//!
//! Two delivery disciplines:
//!
//! * [`ControlPlane::deliveries`] — at-least-once: a dropped or
//!   partitioned transmission retransmits every
//!   [`LinkFaults::retransmit_timeout`] until one gets through (messages
//!   are never lost, only late — the dedup layer above makes the *effects*
//!   exactly-once). Used for submits, completion reports, cancels and
//!   retry verdicts.
//! * [`ControlPlane::best_effort`] — fire-and-forget: a dropped or
//!   partitioned heartbeat is simply gone. That silence is the signal the
//!   failure detector thrives on.
//!
//! Determinism: each message forks the plane's RNG on
//! `(label, key)` — never on the order backends happen to ask — so the
//! simulated and sharded engines (and the threaded backend's modeled
//! virtual clock) draw identical verdicts for identical traffic.

use crate::fault::{FaultPlan, LinkFaults};
use impress_sim::{SimDuration, SimRng, SimTime};

/// Upper bound on modeled transmissions per message: a backstop against a
/// partition window that never heals combining with a saturated drop rate.
/// At the default 1 s retransmit timeout this forces delivery within ~68
/// virtual minutes.
const MAX_TRANSMISSIONS: u32 = 4096;

/// Control-plane resilience counters, exposed via
/// [`crate::backend::ExecutionBackend::control_stats`]. All-zero when link
/// faults are disabled — the counters both feed the partition study and
/// prove (in tests) that the disabled path never engages the machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Messages routed through at-least-once delivery.
    pub messages: u64,
    /// Extra transmissions beyond the first (drops + partition stalls).
    pub retransmits: u64,
    /// Messages that arrived twice (duplicate deliveries scheduled).
    pub duplicates: u64,
    /// Heartbeats emitted by live nodes.
    pub heartbeats_sent: u64,
    /// Heartbeats that reached the coordinator.
    pub heartbeats_delivered: u64,
    /// Nodes declared suspect by the failure detector.
    pub suspicions: u64,
    /// False suspicions healed by a late heartbeat (partition heal resync).
    pub resyncs: u64,
    /// Running attempts evicted because their lease expired under
    /// suspicion (each consumed one retry).
    pub lease_expiries: u64,
    /// Late completions from old lease-holders fenced out by their epoch.
    pub fenced_completions: u64,
    /// Duplicate message arrivals suppressed by idempotent dedup.
    pub dedup_hits: u64,
}

/// A message's resolved delivery schedule under at-least-once routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deliveries {
    /// When the first successful transmission arrives.
    pub primary: SimTime,
    /// A second arrival of the same message, if it was duplicated.
    pub duplicate: Option<SimTime>,
    /// Total transmissions modeled (1 = got through first try).
    pub transmissions: u32,
}

/// A seeded realization of [`LinkFaults`]: pure per-message delivery
/// verdicts. See the module docs for the determinism contract.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    link: LinkFaults,
    rng: SimRng,
}

impl ControlPlane {
    /// Realize `link` under an explicit RNG root.
    pub fn new(link: LinkFaults, rng: SimRng) -> Self {
        ControlPlane { link, rng }
    }

    /// The control plane a fault plan calls for: `Some` exactly when the
    /// plan's [`LinkFaults`] section models anything. `None` is the strict
    /// no-op contract — backends route directly, schedule no control
    /// events, and stay byte-identical to the pre-control-plane engine.
    pub fn from_plan(plan: &FaultPlan) -> Option<Self> {
        let link = plan.config().link.clone();
        if link.is_none() {
            return None;
        }
        Some(ControlPlane::new(link, plan.control_rng()))
    }

    /// The link config this plane realizes.
    pub fn link(&self) -> &LinkFaults {
        &self.link
    }

    /// Whether a message to/from `node` at instant `t` is inside a
    /// scripted partition window.
    pub fn partitioned(&self, node: u32, t: SimTime) -> bool {
        self.link.partitions.iter().any(|p| p.blocks(node, t))
    }

    /// The RNG for one message, keyed on its stable identity.
    fn message_rng(&self, label: &str, key: u64) -> SimRng {
        self.rng.fork(label).fork_idx("msg", key)
    }

    /// One-way latency draw: base delay, plus uniform jitter, plus (with
    /// probability [`LinkFaults::reorder_rate`]) a second jitter span that
    /// lets later sends overtake this message.
    fn latency(&self, rng: &mut SimRng) -> SimDuration {
        let mut l = self.link.delay;
        if self.link.jitter > SimDuration::ZERO {
            l = l.saturating_add(self.link.jitter.mul_f64(rng.uniform()));
        }
        if self.link.reorder_rate > 0.0 && rng.uniform() < self.link.reorder_rate {
            let span = if self.link.jitter > SimDuration::ZERO {
                self.link.jitter
            } else {
                self.link.delay
            };
            l = l.saturating_add(span.mul_f64(rng.uniform()));
        }
        l
    }

    /// At-least-once delivery of the message `(label, key)` sent at
    /// `sent`. `node` selects the partitionable coordinator↔node link;
    /// `None` is the hub link (client↔coordinator), which drops and delays
    /// but never partitions. Transmissions blocked by a partition or a
    /// drop draw retransmit after [`LinkFaults::retransmit_timeout`];
    /// the first one through fixes the arrival.
    pub fn deliveries(&self, label: &str, key: u64, node: Option<u32>, sent: SimTime) -> Deliveries {
        let mut rng = self.message_rng(label, key);
        // A saturated drop rate would make the retransmit loop the whole
        // story; clamp so every message still terminates quickly.
        let drop = self.link.drop_rate.clamp(0.0, 0.95);
        let rto = self
            .link
            .retransmit_timeout
            .max(SimDuration::from_micros(1));
        let mut t = sent;
        let mut transmissions = 0u32;
        let through = loop {
            transmissions += 1;
            let blocked = node.is_some_and(|n| self.partitioned(n, t));
            let dropped = drop > 0.0 && rng.uniform() < drop;
            if (!blocked && !dropped) || transmissions >= MAX_TRANSMISSIONS {
                break t;
            }
            t = t + rto;
        };
        let primary = through + self.latency(&mut rng);
        let duplicate = if self.link.duplicate_rate > 0.0
            && rng.uniform() < self.link.duplicate_rate
        {
            Some(through + self.latency(&mut rng))
        } else {
            None
        };
        Deliveries {
            primary,
            duplicate,
            transmissions,
        }
    }

    /// Fire-and-forget delivery (heartbeats): `Some(arrival)` if the
    /// single transmission gets through, `None` if it is partitioned away
    /// or dropped.
    pub fn best_effort(&self, label: &str, key: u64, node: u32, sent: SimTime) -> Option<SimTime> {
        let mut rng = self.message_rng(label, key);
        if self.partitioned(node, sent) {
            return None;
        }
        let drop = self.link.drop_rate.clamp(0.0, 0.95);
        if drop > 0.0 && rng.uniform() < drop {
            return None;
        }
        Some(sent + self.latency(&mut rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, ScriptedPartition};

    fn lossy() -> LinkFaults {
        LinkFaults {
            drop_rate: 0.3,
            duplicate_rate: 0.2,
            delay: SimDuration::from_micros(50_000),
            jitter: SimDuration::from_micros(20_000),
            reorder_rate: 0.1,
            ..LinkFaults::none()
        }
    }

    fn plane(link: LinkFaults, seed: u64) -> ControlPlane {
        ControlPlane::new(link, SimRng::from_seed(seed).fork("control-plane"))
    }

    #[test]
    fn verdicts_are_keyed_not_order_dependent() {
        let p = plane(lossy(), 7);
        let a1 = p.deliveries("done", 42, Some(1), SimTime::from_micros(1_000));
        let _ = p.deliveries("done", 99, Some(2), SimTime::from_micros(5));
        let _ = p.best_effort("hb", 3, 0, SimTime::ZERO);
        let a2 = p.deliveries("done", 42, Some(1), SimTime::from_micros(1_000));
        assert_eq!(a1, a2, "same message identity, same verdict");
        let b = p.deliveries("retry", 42, Some(1), SimTime::from_micros(1_000));
        assert_ne!(a1, b, "labels separate the streams");
    }

    #[test]
    fn delivery_is_at_least_once_even_at_saturated_drop() {
        let p = plane(
            LinkFaults {
                drop_rate: 1.0, // clamped to 0.95
                ..LinkFaults::none()
            },
            3,
        );
        for key in 0..64 {
            let d = p.deliveries("m", key, None, SimTime::ZERO);
            assert!(d.transmissions < MAX_TRANSMISSIONS);
            assert!(d.primary >= SimTime::ZERO);
        }
    }

    #[test]
    fn partition_stalls_node_traffic_until_heal_but_not_hub_traffic() {
        let heal = SimTime::from_micros(60_000_000);
        let p = plane(
            LinkFaults {
                partitions: vec![ScriptedPartition {
                    first_node: 0,
                    last_node: 3,
                    at: SimTime::ZERO,
                    duration: SimDuration::from_micros(60_000_000),
                }],
                retransmit_timeout: SimDuration::from_secs(1),
                ..LinkFaults::none()
            },
            9,
        );
        let node = p.deliveries("done", 1, Some(2), SimTime::from_micros(10));
        assert!(node.primary >= heal, "partitioned message waits for heal");
        assert!(node.transmissions > 1);
        let outside = p.deliveries("done", 1, Some(7), SimTime::from_micros(10));
        assert_eq!(outside.transmissions, 1, "node outside the window is fine");
        let hub = p.deliveries("submit", 1, None, SimTime::from_micros(10));
        assert_eq!(hub.transmissions, 1, "hub link never partitions");
        assert!(p.best_effort("hb", 5, 2, SimTime::from_micros(10)).is_none());
        assert!(p.best_effort("hb", 5, 2, heal + SimDuration::from_micros(1)).is_some());
    }

    #[test]
    fn disabled_link_yields_no_plane() {
        let plan = FaultPlan::new(FaultConfig::none(), 11);
        assert!(ControlPlane::from_plan(&plan).is_none());
        let mut on = FaultConfig::none();
        on.link.drop_rate = 0.1;
        assert!(ControlPlane::from_plan(&FaultPlan::new(on, 11)).is_some());
    }

    #[test]
    fn lossless_plane_adds_only_configured_delay() {
        let p = plane(
            LinkFaults {
                delay: SimDuration::from_micros(1_000),
                ..LinkFaults::none()
            },
            5,
        );
        let d = p.deliveries("m", 0, Some(0), SimTime::from_micros(500));
        assert_eq!(d.primary, SimTime::from_micros(1_500));
        assert_eq!(d.duplicate, None);
        assert_eq!(d.transmissions, 1);
    }
}
