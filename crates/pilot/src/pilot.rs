//! Pilot lifecycle: configuration and phase accounting.
//!
//! Fig. 5 of the paper decomposes the IM-RP run into three phases:
//! *Bootstrap* (RP startup), *Exec setup* (per-task script creation and
//! sandbox setup, "time varies depending on the file system"), and *Running*
//! (task execution on assigned resources). [`PilotConfig`] carries the
//! timing model for the first two; the backends account all three into a
//! [`PhaseBreakdown`] the Fig. 5 harness prints.

use crate::resources::NodeSpec;
use crate::scheduler::PlacementPolicy;
use impress_json::{json_enum, json_struct};
use impress_sim::SimDuration;

/// A pilot lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PilotPhase {
    /// Runtime startup: agent launch, resource acquisition.
    Bootstrap,
    /// Per-task execution preparation (scripts, sandboxes).
    ExecSetup,
    /// Task execution on assigned resources.
    Running,
}
json_enum!(PilotPhase {
    Bootstrap,
    ExecSetup,
    Running
});

/// Pilot configuration: node shape, placement policy, phase timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PilotConfig {
    /// The node shape the pilot holds.
    pub node: NodeSpec,
    /// Number of identical nodes (1 = the paper's testbed; more for the
    /// scaling studies the paper lists as future work).
    pub nodes: u32,
    /// Scheduling policy.
    pub policy: PlacementPolicy,
    /// One-off runtime startup cost.
    pub bootstrap: SimDuration,
    /// Per-task execution-setup cost (filesystem dependent).
    pub exec_setup_per_task: SimDuration,
    /// Master seed for any stochastic timing jitter in the backends.
    pub seed: u64,
}
json_struct!(PilotConfig {
    node,
    nodes,
    policy,
    bootstrap,
    exec_setup_per_task,
    seed
});

impl Default for PilotConfig {
    fn default() -> Self {
        PilotConfig {
            node: NodeSpec::amarel(),
            nodes: 1,
            policy: PlacementPolicy::Backfill,
            // RP bootstrap on Amarel is minutes; exec setup tens of seconds
            // on the shared filesystem.
            bootstrap: SimDuration::from_secs(180),
            exec_setup_per_task: SimDuration::from_secs(25),
            seed: 0,
        }
    }
}

impl PilotConfig {
    /// Default configuration with a specific seed.
    pub fn with_seed(seed: u64) -> Self {
        PilotConfig {
            seed,
            ..Default::default()
        }
    }

    /// The full cluster shape this pilot holds.
    pub fn cluster(&self) -> crate::resources::ClusterSpec {
        crate::resources::ClusterSpec::homogeneous(self.node, self.nodes)
    }
}

/// Aggregate time spent in each pilot phase (the Fig. 5 breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// One-off bootstrap time.
    pub bootstrap: SimDuration,
    /// Total exec-setup time across all tasks (task-parallel, so this can
    /// exceed the makespan contribution).
    pub exec_setup_total: SimDuration,
    /// Total running time across all tasks (sum of task durations).
    pub running_total: SimDuration,
    /// Number of tasks that reached execution.
    pub tasks_executed: usize,
}
json_struct!(PhaseBreakdown {
    bootstrap,
    exec_setup_total,
    running_total,
    tasks_executed
});

impl PhaseBreakdown {
    /// Record one executed task's setup and run times.
    pub fn record_task(&mut self, setup: SimDuration, running: SimDuration) {
        self.exec_setup_total += setup;
        self.running_total += running;
        self.tasks_executed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_amarel_and_backfill() {
        let c = PilotConfig::default();
        assert_eq!(c.node, NodeSpec::amarel());
        assert_eq!(c.policy, PlacementPolicy::Backfill);
        assert!(c.bootstrap > SimDuration::ZERO);
        assert!(c.exec_setup_per_task > SimDuration::ZERO);
    }

    #[test]
    fn breakdown_accumulates() {
        let mut b = PhaseBreakdown::default();
        b.record_task(SimDuration::from_secs(20), SimDuration::from_secs(100));
        b.record_task(SimDuration::from_secs(30), SimDuration::from_secs(200));
        assert_eq!(b.exec_setup_total, SimDuration::from_secs(50));
        assert_eq!(b.running_total, SimDuration::from_secs(300));
        assert_eq!(b.tasks_executed, 2);
    }

    #[test]
    fn with_seed_only_changes_seed() {
        let c = PilotConfig::with_seed(7);
        assert_eq!(c.seed, 7);
        assert_eq!(c.node, NodeSpec::amarel());
    }
}
