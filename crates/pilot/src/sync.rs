//! An mpsc channel built on `std::sync::{Mutex, Condvar}`.
//!
//! Replaces `crossbeam::channel` in the hermetic build. Only the surface the
//! threaded backend needs is provided: an unbounded multi-producer
//! single-consumer queue with blocking, non-blocking, and timed receives,
//! and disconnection detection on both ends.
//!
//! Semantics match `std::sync::mpsc` (and crossbeam's unbounded channel):
//!
//! * `send` never blocks; it fails only once the receiver is dropped.
//! * `recv` blocks until a message arrives or every sender is dropped; a
//!   disconnected channel still drains buffered messages before reporting
//!   [`RecvError`].
//! * `recv_timeout` is the bounded-wait variant the backend's completion
//!   loop polls with.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The receiver disconnected; the message is handed back.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    // No `T: Debug` bound: callers `.expect()` sends of non-Debug payloads
    // (e.g. boxed work closures).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Every sender disconnected and the queue is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Outcome of a non-blocking receive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message buffered right now.
    Empty,
    /// Every sender disconnected and the queue is drained.
    Disconnected,
}

/// Outcome of a timed receive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// Every sender disconnected and the queue is drained.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<ChannelState<T>>,
    ready: Condvar,
}

struct ChannelState<T> {
    buf: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

/// The sending half; clone freely across threads.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half (single consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// An unbounded channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(ChannelState {
            buf: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue a message; fails (returning it) if the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().expect("channel lock");
        if !state.receiver_alive {
            return Err(SendError(value));
        }
        state.buf.push_back(value);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().expect("channel lock").senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.senders -= 1;
            state.senders
        };
        if remaining == 0 {
            // Wake a receiver blocked in recv()/recv_timeout() so it can
            // observe the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.queue.lock().expect("channel lock");
        match state.buf.pop_front() {
            Some(v) => Ok(v),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Block until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.queue.lock().expect("channel lock");
        loop {
            if let Some(v) = state.buf.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.ready.wait(state).expect("channel lock");
        }
    }

    /// Block up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.queue.lock().expect("channel lock");
        loop {
            if let Some(v) = state.buf.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _result) = self
                .shared
                .ready
                .wait_timeout(state, deadline - now)
                .expect("channel lock");
            state = guard;
            // Loop re-checks buffer, disconnect, and deadline — spurious
            // wakeups and timeouts are both handled by the same re-check.
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.queue.lock().expect("channel lock").receiver_alive = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn messages_arrive_in_order() {
        let (tx, rx) = channel();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = channel::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = channel();
        let h = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(30));
        tx.send(42).unwrap();
        assert_eq!(h.join().unwrap(), Ok(42));
    }

    #[test]
    fn recv_unblocks_on_disconnect() {
        let (tx, rx) = channel::<u8>();
        let h = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(30));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out_and_still_receives() {
        let (tx, rx) = channel();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(1).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok(1));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn buffered_messages_survive_disconnect() {
        let (tx, rx) = channel();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = channel();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = channel();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100u32 {
                        tx.send(t * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, (0..800).collect::<Vec<_>>());
    }
}
