//! The user-facing session API.
//!
//! A [`Session`] owns an execution backend and offers the ergonomic
//! operations the workflow layer and the examples use: submit, wait,
//! drain-all, and typed batch execution. It corresponds to RP's
//! `Session`/`TaskManager` pair at the granularity IMPRESS needs.

use crate::backend::{Completion, ExecutionBackend};
use crate::pilot::PhaseBreakdown;
use crate::profiler::UtilizationReport;
use crate::resources::ResourceRequest;
use crate::task::{TaskDescription, TaskId};
use impress_sim::{SimDuration, SimTime};
use impress_telemetry::{MetricsSnapshot, Stamp, Telemetry};
use std::collections::HashMap;

/// A consistent point-in-time view of a running session.
///
/// One [`Session::observe`] call replaces the old quintet of ad-hoc
/// probes (`utilization`, `phase_breakdown`, `held_tasks`, `in_flight`,
/// plus fishing metrics out of the backend): every field is read at the
/// same backend instant, so the numbers are mutually consistent, and the
/// live telemetry [`MetricsSnapshot`] rides along.
#[derive(Debug, Clone)]
pub struct Observation {
    at: SimTime,
    utilization: UtilizationReport,
    phases: PhaseBreakdown,
    in_flight: usize,
    held: usize,
    metrics: MetricsSnapshot,
}

impl Observation {
    /// Backend time at which this observation was taken.
    pub fn at(&self) -> SimTime {
        self.at
    }

    /// Utilization report up to [`Observation::at`].
    pub fn utilization(&self) -> &UtilizationReport {
        &self.utilization
    }

    /// Pilot phase breakdown so far.
    pub fn phase_breakdown(&self) -> &PhaseBreakdown {
        &self.phases
    }

    /// Tasks held back by the backend's walltime deadline (they will never
    /// launch; a graceful drain is in progress).
    pub fn held_tasks(&self) -> usize {
        self.held
    }

    /// Tasks submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Live telemetry metrics at observation time. Empty when the session's
    /// backend runs with telemetry disabled.
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }
}

/// A pilot session over some backend.
pub struct Session<B: ExecutionBackend> {
    backend: B,
}

impl<B: ExecutionBackend> Session<B> {
    /// Wrap a backend.
    pub fn new(backend: B) -> Self {
        Session { backend }
    }

    /// Submit one task.
    pub fn submit(&mut self, desc: TaskDescription) -> TaskId {
        self.backend.submit(desc)
    }

    /// Wait for the next completion (advancing time), if any task remains.
    pub fn wait_next(&mut self) -> Option<Completion> {
        self.backend.next_completion()
    }

    /// Deliver a completion already available without waiting (see
    /// [`ExecutionBackend::poll_completion`]); `None` if progress would
    /// require a [`Session::wait_next`].
    pub fn poll_next(&mut self) -> Option<Completion> {
        self.backend.poll_completion()
    }

    /// Best-effort cancellation of a queued task (see
    /// [`crate::backend::ExecutionBackend::cancel`]).
    pub fn cancel(&mut self, id: TaskId) -> bool {
        self.backend.cancel(id)
    }

    /// Run every submitted task to completion, returning completions in
    /// completion order.
    pub fn drain(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(c) = self.backend.next_completion() {
            out.push(c);
        }
        out
    }

    /// Execute a batch of homogeneous work closures concurrently and return
    /// their typed outputs **in submission order**.
    pub fn execute_batch<T, F>(
        &mut self,
        name: &str,
        request: ResourceRequest,
        duration: SimDuration,
        works: Vec<F>,
    ) -> Vec<T>
    where
        T: 'static + Send,
        F: FnOnce() -> T + Send + 'static,
    {
        let ids: Vec<TaskId> = works
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                self.submit(
                    TaskDescription::new(format!("{name}[{i}]"), request, duration).with_work(w),
                )
            })
            .collect();
        let mut by_id: HashMap<TaskId, T> = HashMap::new();
        while by_id.len() < ids.len() {
            let Some(c) = self.backend.next_completion() else {
                // Reachable when a walltime deadline holds part of the
                // batch: the backend drains what it can and then reports
                // no further completions. The blocking batch API cannot
                // return partial results, so name the cause instead of
                // claiming an impossibility.
                panic!(
                    "batch stalled with {} of {} tasks unfinished ({} held by the \
                     walltime deadline); execute_batch cannot run under a draining \
                     allocation — drive the coordinator instead",
                    ids.len() - by_id.len(),
                    ids.len(),
                    self.backend.held_tasks()
                );
            };
            if ids.contains(&c.task) {
                let id = c.task;
                by_id.insert(id, c.output::<T>());
            }
        }
        ids.into_iter()
            .map(|id| by_id.remove(&id).expect("completed"))
            .collect()
    }

    /// Current backend time.
    pub fn now(&self) -> SimTime {
        self.backend.now()
    }

    /// A consistent point-in-time snapshot of the session: time,
    /// utilization, phase breakdown, queue/hold counts, and live
    /// telemetry metrics, all read at the same backend instant.
    pub fn observe(&self) -> Observation {
        Observation {
            at: self.backend.now(),
            utilization: self.backend.utilization(),
            phases: self.backend.phase_breakdown(),
            in_flight: self.backend.in_flight(),
            held: self.backend.held_tasks(),
            metrics: self.backend.telemetry().snapshot(),
        }
    }

    /// The backend's telemetry handle (disabled unless the backend was
    /// built with [`crate::RuntimeConfig::telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        self.backend.telemetry()
    }

    /// Control-plane message statistics (heartbeats, suspicions, lease
    /// expiries, dedup hits). All-zero unless link faults are configured —
    /// see [`crate::ControlStats`].
    pub fn control_stats(&self) -> crate::ControlStats {
        self.backend.control_stats()
    }

    /// A dual-clock stamp at the current instant (virtual time always;
    /// wall time when the backend runs on real threads). Useful for
    /// recording application-level spans against the backend's clocks.
    pub fn stamp(&self) -> Stamp {
        self.backend.stamp()
    }

    /// Borrow the backend (e.g. for simulated-backend-specific series).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutably borrow the backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimulatedBackend;
    use crate::pilot::PilotConfig;
    use crate::resources::NodeSpec;
    use crate::scheduler::PlacementPolicy;

    fn session(cores: u32) -> Session<SimulatedBackend> {
        Session::new(SimulatedBackend::new(PilotConfig {
            node: NodeSpec::new(cores, 2, 64),
            nodes: 1,
            policy: PlacementPolicy::Backfill,
            bootstrap: SimDuration::from_secs(10),
            exec_setup_per_task: SimDuration::from_secs(1),
            seed: 0,
        }))
    }

    #[test]
    fn batch_outputs_preserve_submission_order() {
        let mut s = session(4);
        let works: Vec<_> = (0..10u64).map(|i| move || i * i).collect();
        let outs = s.execute_batch(
            "sq",
            ResourceRequest::cores(1),
            SimDuration::from_secs(5),
            works,
        );
        assert_eq!(outs, (0..10).map(|i| i * i).collect::<Vec<u64>>());
    }

    #[test]
    fn drain_returns_everything() {
        let mut s = session(2);
        for i in 0..5 {
            s.submit(
                TaskDescription::new(
                    format!("t{i}"),
                    ResourceRequest::cores(1),
                    SimDuration::from_secs(i + 1),
                )
                .with_work(move || i),
            );
        }
        let out = s.drain();
        assert_eq!(out.len(), 5);
        assert_eq!(s.observe().in_flight(), 0);
        assert!(s.wait_next().is_none());
    }

    #[test]
    fn session_reports_time_and_utilization() {
        let mut s = session(1);
        s.submit(TaskDescription::new(
            "t",
            ResourceRequest::cores(1),
            SimDuration::from_secs(100),
        ));
        let _ = s.drain();
        assert!(s.now() >= SimTime::from_micros(111_000_000)); // 10+1+100 s
        let obs = s.observe();
        assert_eq!(obs.at(), s.now());
        assert_eq!(obs.utilization().tasks, 1);
        assert!(obs.utilization().cpu > 0.0);
        assert_eq!(obs.phase_breakdown().tasks_executed, 1);
        assert_eq!(obs.held_tasks(), 0);
        // Telemetry is off by default: the metrics snapshot is empty.
        assert!(obs.metrics().counters.is_empty());
        assert!(!s.telemetry().enabled());
    }

}
