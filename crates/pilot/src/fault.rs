//! Deterministic fault injection and retry policy.
//!
//! Long campaigns on real clusters face three failure classes the paper's
//! Amarel runs had to survive: transient task failures (OOM kills, flaky
//! filesystems), task hangs (stragglers), and node crash/recover cycles
//! (drains, hardware faults). This module models all three behind a
//! [`FaultPlan`] that both backends consult, plus a [`RetryPolicy`] the
//! pilot applies transparently before surfacing a failure to the workflow
//! layer.
//!
//! Beyond the binary crash model, the plan also expresses *gray* failures:
//! per-node slowdown windows ([`FaultPlan::slowdown_windows`]) during which
//! every attempt hosted by the node runs [`SlowWindow::factor`] × slower —
//! the degraded-NIC/thermal-throttle/shared-filesystem-contention class of
//! fault that never shows up as a crash. Backends counter them with two
//! policies configured on the runtime: [`HedgePolicy`] (speculative
//! duplicate attempts for stragglers) and [`QuarantinePolicy`]
//! (distinct-node poison verdicts plus a per-shape circuit breaker).
//!
//! Determinism: every decision is drawn from a labelled [`SimRng`] fork
//! keyed on stable identities — `(task id, attempt)` for per-attempt faults,
//! node index for crash schedules — never on the order in which the backend
//! happens to ask. Forking is position-independent, so the same plan with
//! the same seed produces the same fault sequence on both backends and
//! across runs. A [`FaultPlan::none`] plan draws no randomness at all and is
//! a strict no-op: backends constructed with it behave byte-identically to
//! backends without fault support.

use impress_sim::{SimDuration, SimRng, SimTime};

/// The fault class an attempt draws from the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptFault {
    /// No injected fault: the attempt runs normally.
    None,
    /// Transient failure: the attempt occupies its slots for the full
    /// declared duration and then fails (OOM kill at the end of a long
    /// computation — the expensive kind).
    Transient,
    /// Hang: the attempt runs [`FaultConfig::hang_factor`] × its declared
    /// duration. With a walltime limit set, this surfaces as
    /// [`crate::backend::TaskError::TimedOut`]; without one it is a
    /// straggler that still terminates.
    Hang,
}

/// A scripted node outage, for tests and reproducible scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedCrash {
    /// Which node crashes.
    pub node: u32,
    /// When it crashes (virtual time).
    pub at: SimTime,
    /// How long it stays down before recovering.
    pub outage: SimDuration,
}

/// A scripted node slowdown, the gray analogue of [`ScriptedCrash`]: the
/// node stays up and keeps its residents, but every attempt it hosts runs
/// `factor` × slower for the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScriptedSlowdown {
    /// Which node degrades.
    pub node: u32,
    /// When the degradation starts (virtual time).
    pub at: SimTime,
    /// How long it lasts.
    pub duration: SimDuration,
    /// Runtime multiplier while degraded (clamped to ≥ 1 at realization).
    pub factor: f64,
}

/// One realized slowdown window on a node: attempts overlapping
/// `[start, end)` make progress at `1/factor` of their nominal rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowWindow {
    /// Window start.
    pub start: SimTime,
    /// Window end.
    pub end: SimTime,
    /// Runtime multiplier inside the window (≥ 1).
    pub factor: f64,
}

/// A scripted control-plane partition window: messages between the
/// coordinator side and nodes `first_node..=last_node` are dropped for the
/// window's duration (retransmissions deliver them after it heals). Hub
/// traffic (submit, cancel, retry verdicts) never partitions — partitions
/// model the coordinator↔agent network split of the paper's client/agent
/// architecture, not a client outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedPartition {
    /// First node (inclusive) on the far side of the partition.
    pub first_node: u32,
    /// Last node (inclusive) on the far side of the partition.
    pub last_node: u32,
    /// When the partition opens (virtual time).
    pub at: SimTime,
    /// How long it lasts before healing.
    pub duration: SimDuration,
}

impl ScriptedPartition {
    /// Whether a message to/from `node` sent at `t` falls inside the window.
    pub fn blocks(&self, node: u32, t: SimTime) -> bool {
        node >= self.first_node && node <= self.last_node && t >= self.at && t < self.at + self.duration
    }
}

/// Message-layer fault model for the control plane: per-message drop,
/// duplication, delay and reorder probabilities, scripted partition
/// windows, and the heartbeat failure-detector knobs. All control traffic
/// (submit, cancel, completion reports, retry verdicts, heartbeats) is
/// routed through a seeded [`crate::control::ControlPlane`] realizing this
/// config; [`LinkFaults::none`] routes nothing, draws no randomness, and
/// leaves every backend byte-identical to the pre-control-plane engine.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaults {
    /// Per-transmission probability a message is dropped (clamped below 1;
    /// delivery is at-least-once — dropped transmissions retransmit after
    /// [`LinkFaults::retransmit_timeout`]).
    pub drop_rate: f64,
    /// Per-message probability the delivered message arrives twice.
    pub duplicate_rate: f64,
    /// Base one-way latency added to every delivered message.
    pub delay: SimDuration,
    /// Uniform extra latency in `[0, jitter]` per delivered message.
    pub jitter: SimDuration,
    /// Per-message probability of a reorder penalty: the message draws a
    /// second jitter span on top, letting later sends overtake it.
    pub reorder_rate: f64,
    /// Sender retransmission interval for undelivered messages.
    pub retransmit_timeout: SimDuration,
    /// Scripted coordinator↔node-group partition windows.
    pub partitions: Vec<ScriptedPartition>,
    /// Node heartbeat period (`None` disables the failure detector).
    pub heartbeat_interval: Option<SimDuration>,
    /// Silence span after which a node is suspected (must exceed the
    /// worst-case heartbeat latency or healthy nodes get suspected).
    pub heartbeat_timeout: Option<SimDuration>,
}

impl LinkFaults {
    /// The lossless link: nothing is routed, no randomness is drawn.
    pub fn none() -> Self {
        LinkFaults {
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            delay: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            reorder_rate: 0.0,
            retransmit_timeout: SimDuration::from_secs(1),
            partitions: Vec::new(),
            heartbeat_interval: None,
            heartbeat_timeout: None,
        }
    }

    /// Whether this link config models nothing at all.
    pub fn is_none(&self) -> bool {
        self.drop_rate <= 0.0
            && self.duplicate_rate <= 0.0
            && self.delay == SimDuration::ZERO
            && self.jitter == SimDuration::ZERO
            && self.reorder_rate <= 0.0
            && self.partitions.is_empty()
            && self.heartbeat_interval.is_none()
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        Self::none()
    }
}

/// Configuration of the injected fault environment.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Per-attempt probability of a transient failure.
    pub task_failure_rate: f64,
    /// Per-attempt probability of a hang.
    pub task_hang_rate: f64,
    /// Duration multiplier applied to hung attempts.
    pub hang_factor: f64,
    /// Mean time between node failures (exponential inter-crash gaps).
    /// `None` disables stochastic node crashes.
    pub node_mtbf: Option<SimDuration>,
    /// Downtime of a crashed node before it recovers.
    pub node_outage: SimDuration,
    /// Upper bound on stochastic crashes sampled per node (keeps the crash
    /// schedule finite and rules out requeue livelock).
    pub max_crashes_per_node: u32,
    /// Explicit outages injected in addition to the stochastic schedule.
    pub scripted_crashes: Vec<ScriptedCrash>,
    /// Mean time between node *slowdown* onsets (exponential gaps).
    /// `None` disables stochastic slowdowns.
    pub node_slowdown_mtbf: Option<SimDuration>,
    /// Length of each stochastic slowdown window.
    pub slowdown_duration: SimDuration,
    /// Runtime multiplier inside stochastic slowdown windows.
    pub slowdown_factor: f64,
    /// Upper bound on stochastic slowdowns sampled per node.
    pub max_slowdowns_per_node: u32,
    /// Explicit slowdowns injected in addition to the stochastic schedule.
    pub scripted_slowdowns: Vec<ScriptedSlowdown>,
    /// Message-layer faults on the coordinator↔node control plane.
    pub link: LinkFaults,
}

impl FaultConfig {
    /// The fault-free environment (the default for both backends).
    pub fn none() -> Self {
        FaultConfig {
            task_failure_rate: 0.0,
            task_hang_rate: 0.0,
            hang_factor: 8.0,
            node_mtbf: None,
            node_outage: SimDuration::from_mins(10),
            max_crashes_per_node: 8,
            scripted_crashes: Vec::new(),
            node_slowdown_mtbf: None,
            slowdown_duration: SimDuration::from_mins(30),
            slowdown_factor: 10.0,
            max_slowdowns_per_node: 4,
            scripted_slowdowns: Vec::new(),
            link: LinkFaults::none(),
        }
    }

    /// Whether this configuration injects nothing.
    pub fn is_none(&self) -> bool {
        self.task_failure_rate <= 0.0
            && self.task_hang_rate <= 0.0
            && self.node_mtbf.is_none()
            && self.scripted_crashes.is_empty()
            && !self.has_slowdowns()
            && self.link.is_none()
    }

    /// Whether any gray (slowdown) injection is configured.
    pub fn has_slowdowns(&self) -> bool {
        self.node_slowdown_mtbf.is_some() || !self.scripted_slowdowns.is_empty()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// A deterministic, seeded realization of a [`FaultConfig`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: SimRng,
}

impl FaultPlan {
    /// Realize `config` under `seed`.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        FaultPlan {
            config,
            rng: SimRng::from_seed(seed).fork("fault-plan"),
        }
    }

    /// The fault-free plan: injects nothing, draws no randomness.
    pub fn none() -> Self {
        Self::new(FaultConfig::none(), 0)
    }

    /// Whether this plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.config.is_none()
    }

    /// The configuration this plan realizes.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The seeded RNG root for this plan's control plane. A labelled fork
    /// of the plan's own RNG, so one seed governs the whole fault
    /// environment and the link-fault stream is independent of the
    /// task/node fault streams.
    pub fn control_rng(&self) -> SimRng {
        self.rng.fork("control-plane")
    }

    /// The fault drawn by attempt `attempt` (0-based) of task `task`.
    /// Deterministic in `(task, attempt)`; independent of call order.
    pub fn attempt_fault(&self, task: u64, attempt: u32) -> AttemptFault {
        let c = &self.config;
        if c.task_failure_rate <= 0.0 && c.task_hang_rate <= 0.0 {
            return AttemptFault::None;
        }
        let mut rng = self
            .rng
            .fork_idx("attempt", task.wrapping_mul(0x1_0000).wrapping_add(attempt as u64));
        let u = rng.uniform();
        if u < c.task_failure_rate {
            AttemptFault::Transient
        } else if u < c.task_failure_rate + c.task_hang_rate {
            AttemptFault::Hang
        } else {
            AttemptFault::None
        }
    }

    /// The `(crash, recover)` windows for `node`, sorted and merged so they
    /// never overlap: scripted outages plus up to
    /// [`FaultConfig::max_crashes_per_node`] stochastic ones with
    /// exponential inter-crash gaps of mean [`FaultConfig::node_mtbf`].
    pub fn crash_windows(&self, node: u32) -> Vec<(SimTime, SimTime)> {
        let mut windows: Vec<(SimTime, SimTime)> = self
            .config
            .scripted_crashes
            .iter()
            .filter(|s| s.node == node)
            .map(|s| (s.at, s.at + s.outage))
            .collect();
        if let Some(mtbf) = self.config.node_mtbf {
            let mut rng = self.rng.fork_idx("node-crash", node as u64);
            let mut t = SimTime::ZERO;
            for _ in 0..self.config.max_crashes_per_node {
                // Inverse-CDF exponential draw; uniform() < 1 keeps ln finite.
                let gap = mtbf.mul_f64(-(1.0 - rng.uniform()).ln());
                t = t + gap;
                let end = t + self.config.node_outage;
                windows.push((t, end));
                t = end;
            }
        }
        windows.sort();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(windows.len());
        for (start, end) in windows {
            match merged.last_mut() {
                Some((_, prev_end)) if start <= *prev_end => {
                    *prev_end = (*prev_end).max(end);
                }
                _ => merged.push((start, end)),
            }
        }
        merged
    }

    /// The slowdown windows for `node`, sorted and clipped so they never
    /// overlap: scripted slowdowns plus up to
    /// [`FaultConfig::max_slowdowns_per_node`] stochastic ones with
    /// exponential inter-onset gaps of mean
    /// [`FaultConfig::node_slowdown_mtbf`]. Unlike crash windows the
    /// factors can differ per window, so overlapping windows are clipped
    /// (earlier window wins the overlap) rather than merged. Draws no
    /// randomness when no stochastic slowdowns are configured, and returns
    /// an empty schedule — a strict no-op under [`dilate_span`] — when the
    /// config has no slowdowns at all.
    pub fn slowdown_windows(&self, node: u32) -> Vec<SlowWindow> {
        let mut windows: Vec<SlowWindow> = self
            .config
            .scripted_slowdowns
            .iter()
            .filter(|s| s.node == node)
            .map(|s| SlowWindow {
                start: s.at,
                end: s.at + s.duration,
                factor: s.factor.max(1.0),
            })
            .collect();
        if let Some(mtbf) = self.config.node_slowdown_mtbf {
            let mut rng = self.rng.fork_idx("node-slow", node as u64);
            let mut t = SimTime::ZERO;
            for _ in 0..self.config.max_slowdowns_per_node {
                let gap = mtbf.mul_f64(-(1.0 - rng.uniform()).ln());
                t = t + gap;
                let end = t + self.config.slowdown_duration;
                windows.push(SlowWindow {
                    start: t,
                    end,
                    factor: self.config.slowdown_factor.max(1.0),
                });
                t = end;
            }
        }
        windows.sort_by_key(|w| (w.start, w.end));
        let mut clipped: Vec<SlowWindow> = Vec::with_capacity(windows.len());
        for mut w in windows {
            if let Some(prev) = clipped.last() {
                if w.start < prev.end {
                    w.start = prev.end;
                }
            }
            if w.start < w.end {
                clipped.push(w);
            }
        }
        clipped
    }
}

/// How long a span of `nominal` work takes on a node with the given
/// slowdown schedule, starting at `start`: progress accrues at the nominal
/// rate outside windows and at `1/factor` inside them. With an empty
/// schedule the result is exactly `nominal` — the disabled path is a
/// strict no-op, which is what keeps gray-failure-free runs byte-identical
/// to the pre-slowdown engine. Deterministic integer-microsecond
/// arithmetic; all three backends share this one function.
pub fn dilate_span(windows: &[SlowWindow], start: SimTime, nominal: SimDuration) -> SimDuration {
    if windows.is_empty() || nominal == SimDuration::ZERO {
        return nominal;
    }
    let mut t = start;
    let mut remaining = nominal.as_micros();
    for w in windows {
        if remaining == 0 {
            break;
        }
        if w.end <= t {
            continue;
        }
        if w.start > t {
            // Full-speed segment before the window opens.
            let free = w.start.since(t).as_micros();
            if remaining <= free {
                t = t + SimDuration::from_micros(remaining);
                return t.since(start);
            }
            remaining -= free;
            t = w.start;
        }
        // Degraded segment: real time stretches by the window's factor.
        let span_us = w.end.since(t).as_micros();
        let need = (remaining as f64 * w.factor).round();
        if need <= span_us as f64 {
            t = t + SimDuration::from_micros(need as u64);
            return t.since(start);
        }
        let done = (span_us as f64 / w.factor).floor() as u64;
        remaining = remaining.saturating_sub(done);
        t = w.end;
    }
    (t + SimDuration::from_micros(remaining)).since(start)
}

/// Hedged speculative execution policy: when a running attempt exceeds
/// `threshold` × the running estimate of its shape-class runtime, the
/// backend places a duplicate attempt on a *different* node; the first
/// completion wins and the loser's occupancy is booked as hedge waste
/// (separately from retry waste). Until `min_samples` completions of the
/// shape class have been observed, the attempt's own nominal modeled span
/// stands in for the estimate. Disabled (`None` on the runtime config) the
/// backends schedule no hedge checks and behave byte-identically to the
/// pre-hedging engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Straggler threshold `k`: hedge when elapsed ≥ k × estimate.
    pub threshold: f64,
    /// Shape-class completions required before the running estimate
    /// replaces the nominal span.
    pub min_samples: u32,
}

impl HedgePolicy {
    /// The conventional policy: hedge at `k` × the shape-class estimate,
    /// trusting the estimate after 4 completions.
    pub fn k(threshold: f64) -> Self {
        HedgePolicy {
            threshold: threshold.max(1.0),
            min_samples: 4,
        }
    }
}

/// Poison-task quarantine policy: a task whose retryable attempts have
/// failed on `distinct_nodes` *distinct* nodes is classified poisoned and
/// quarantined — surfaced as [`crate::backend::TaskError::Poisoned`]
/// instead of burning the rest of its retry budget. A per-shape circuit
/// breaker trips after `shape_trip` poisoned lineages of one `(cores,
/// gpus)` shape class (0 = breaker disabled) and sheds subsequent tasks of
/// that shape with [`crate::backend::TaskError::ShapeCircuitOpen`].
/// While quarantine is active, retries are steered away from nodes the
/// task already failed on, so the verdict is reached in exactly
/// `distinct_nodes` attempts when capacity allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinePolicy {
    /// Distinct failed nodes that prove a task poisoned (min 2).
    pub distinct_nodes: u32,
    /// Poisoned lineages of one shape class before the breaker opens
    /// (0 = breaker disabled).
    pub shape_trip: u32,
}

impl QuarantinePolicy {
    /// Quarantine after failures on `n` distinct nodes, breaker disabled.
    pub fn distinct(n: u32) -> Self {
        QuarantinePolicy {
            distinct_nodes: n.max(2),
            shape_trip: 0,
        }
    }

    /// Trip the per-shape breaker after `n` poisoned lineages.
    pub fn with_shape_trip(mut self, n: u32) -> Self {
        self.shape_trip = n;
        self
    }
}

/// How the pilot resubmits attempts that fail before their work ran:
/// injected transient faults, walltime expiries, and node-crash preemptions.
/// (A work closure that panicked is never retried — the closure is consumed
/// by running it, and a deterministic panic would recur anyway.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Resubmission budget per task: total attempts = `1 + max_retries`.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff_base: SimDuration,
    /// Exponential growth factor per additional retry.
    pub backoff_multiplier: f64,
    /// Backoff ceiling (`ZERO` = uncapped).
    pub backoff_cap: SimDuration,
    /// Multiplicative jitter half-width as a fraction of the delay
    /// (`0.25` → delay scaled by a uniform factor in `[0.875, 1.125]`).
    pub jitter: f64,
}

impl RetryPolicy {
    /// No retries: every failed attempt surfaces immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base: SimDuration::ZERO,
            backoff_multiplier: 2.0,
            backoff_cap: SimDuration::ZERO,
            jitter: 0.0,
        }
    }

    /// A sensible default budget: `n` retries, 30 s base backoff doubling
    /// to a 30 min cap, ±12.5 % jitter.
    pub fn retries(n: u32) -> Self {
        RetryPolicy {
            max_retries: n,
            backoff_base: SimDuration::from_secs(30),
            backoff_multiplier: 2.0,
            backoff_cap: SimDuration::from_mins(30),
            jitter: 0.25,
        }
    }

    /// The delay before resubmitting attempt `attempt` (1-based: the first
    /// retry is attempt 1). Draws jitter from `rng` only when both the base
    /// delay and the jitter are non-zero.
    pub fn backoff(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        if self.backoff_base == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        let exp = self
            .backoff_multiplier
            .powi(attempt.saturating_sub(1).min(63) as i32);
        // Cap *before* multiplying: multiplier^63 can exceed f64 range
        // (`powi` → +inf), and `SimDuration::mul_f64` clamps non-finite
        // products to ZERO — which would collapse the largest backoffs to
        // no delay at all. Comparing the exponent against the cap/base
        // ratio short-circuits to the ceiling without ever forming the
        // overflowing product; the in-range path is arithmetically
        // unchanged.
        let cap_micros = if self.backoff_cap > SimDuration::ZERO {
            self.backoff_cap.as_micros()
        } else {
            u64::MAX
        };
        let mut delay = if !exp.is_finite()
            || self.backoff_base.as_micros() as f64 * exp >= cap_micros as f64
        {
            SimDuration::from_micros(cap_micros)
        } else {
            let d = self.backoff_base.mul_f64(exp);
            if self.backoff_cap > SimDuration::ZERO && d > self.backoff_cap {
                self.backoff_cap
            } else {
                d
            }
        };
        if self.jitter > 0.0 {
            delay = delay.mul_f64(1.0 + self.jitter * (rng.uniform() - 0.5));
        }
        delay
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        for t in 0..100u64 {
            assert_eq!(plan.attempt_fault(t, 0), AttemptFault::None);
        }
        assert!(plan.crash_windows(0).is_empty());
    }

    #[test]
    fn attempt_faults_are_deterministic_and_attempt_sensitive() {
        let cfg = FaultConfig {
            task_failure_rate: 0.3,
            task_hang_rate: 0.2,
            ..FaultConfig::none()
        };
        let a = FaultPlan::new(cfg.clone(), 42);
        let b = FaultPlan::new(cfg, 42);
        let mut differs_by_attempt = false;
        for t in 0..200u64 {
            assert_eq!(a.attempt_fault(t, 0), b.attempt_fault(t, 0));
            assert_eq!(a.attempt_fault(t, 1), b.attempt_fault(t, 1));
            if a.attempt_fault(t, 0) != a.attempt_fault(t, 1) {
                differs_by_attempt = true;
            }
        }
        assert!(differs_by_attempt, "retries must draw fresh faults");
    }

    #[test]
    fn fault_rates_are_roughly_honored() {
        let plan = FaultPlan::new(
            FaultConfig {
                task_failure_rate: 0.25,
                ..FaultConfig::none()
            },
            7,
        );
        let fails = (0..2000u64)
            .filter(|&t| plan.attempt_fault(t, 0) == AttemptFault::Transient)
            .count();
        assert!((400..600).contains(&fails), "~25% expected, got {fails}/2000");
    }

    #[test]
    fn crash_windows_are_sorted_disjoint_and_bounded() {
        let plan = FaultPlan::new(
            FaultConfig {
                node_mtbf: Some(SimDuration::from_hours(4)),
                node_outage: SimDuration::from_mins(15),
                max_crashes_per_node: 5,
                ..FaultConfig::none()
            },
            3,
        );
        let w = plan.crash_windows(0);
        assert!(!w.is_empty() && w.len() <= 5);
        for pair in w.windows(2) {
            assert!(pair[0].1 < pair[1].0, "windows must not overlap");
        }
        assert_ne!(plan.crash_windows(0), plan.crash_windows(1), "per-node schedules");
        assert_eq!(w, plan.crash_windows(0), "deterministic");
    }

    #[test]
    fn scripted_crashes_merge_with_stochastic_ones() {
        let plan = FaultPlan::new(
            FaultConfig {
                scripted_crashes: vec![
                    ScriptedCrash {
                        node: 0,
                        at: SimTime::from_micros(5_000_000),
                        outage: SimDuration::from_secs(10),
                    },
                    ScriptedCrash {
                        node: 0,
                        at: SimTime::from_micros(20_000_000),
                        outage: SimDuration::from_secs(10),
                    },
                    ScriptedCrash {
                        node: 1,
                        at: SimTime::from_micros(1_000_000),
                        outage: SimDuration::from_secs(1),
                    },
                ],
                ..FaultConfig::none()
            },
            0,
        );
        assert_eq!(plan.crash_windows(0).len(), 2);
        assert_eq!(plan.crash_windows(1).len(), 1);
        assert!(plan.crash_windows(2).is_empty());
    }

    #[test]
    fn overlapping_windows_are_merged() {
        let plan = FaultPlan::new(
            FaultConfig {
                scripted_crashes: vec![
                    ScriptedCrash {
                        node: 0,
                        at: SimTime::from_micros(1_000_000),
                        outage: SimDuration::from_secs(10),
                    },
                    ScriptedCrash {
                        node: 0,
                        at: SimTime::from_micros(5_000_000),
                        outage: SimDuration::from_secs(10),
                    },
                ],
                ..FaultConfig::none()
            },
            0,
        );
        let w = plan.crash_windows(0);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].0, SimTime::from_micros(1_000_000));
        assert_eq!(w[0].1, SimTime::from_micros(15_000_000));
    }

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::retries(10)
        };
        let mut rng = SimRng::from_seed(0);
        let d1 = p.backoff(1, &mut rng);
        let d2 = p.backoff(2, &mut rng);
        let d3 = p.backoff(3, &mut rng);
        assert_eq!(d1, SimDuration::from_secs(30));
        assert_eq!(d2, SimDuration::from_secs(60));
        assert_eq!(d3, SimDuration::from_secs(120));
        assert_eq!(p.backoff(40, &mut rng), SimDuration::from_mins(30), "capped");
    }

    #[test]
    fn none_policy_never_delays_or_draws() {
        let p = RetryPolicy::none();
        let mut rng = SimRng::from_seed(1);
        let before = rng.clone().next_u64();
        assert_eq!(p.backoff(1, &mut rng), SimDuration::ZERO);
        assert_eq!(rng.next_u64(), before, "no randomness consumed");
    }

    #[test]
    fn backoff_is_monotone_then_capped_for_all_small_attempts() {
        // Property: with jitter off, delay(attempt) is non-decreasing for
        // attempts 0..64 and pinned at the cap once reached — including
        // multipliers whose powi overflows f64 to +inf.
        for &mult in &[1.5, 2.0, 10.0, 1e6] {
            let p = RetryPolicy {
                max_retries: 64,
                backoff_base: SimDuration::from_secs(30),
                backoff_multiplier: mult,
                backoff_cap: SimDuration::from_mins(30),
                jitter: 0.0,
            };
            let mut rng = SimRng::from_seed(0);
            let mut prev = SimDuration::ZERO;
            let mut capped = false;
            for attempt in 0..64u32 {
                let d = p.backoff(attempt, &mut rng);
                assert!(d >= prev, "mult {mult} attempt {attempt}: {d} < {prev}");
                assert!(d <= p.backoff_cap, "mult {mult} attempt {attempt}: over cap");
                if capped {
                    assert_eq!(d, p.backoff_cap, "once capped, stays capped");
                }
                capped = d == p.backoff_cap;
                prev = d;
            }
            assert!(capped, "mult {mult}: 64 attempts must reach the cap");
        }
    }

    #[test]
    fn uncapped_backoff_saturates_instead_of_collapsing_to_zero() {
        // multiplier^62 = inf at mult 1e6; before the overflow guard this
        // fed SimDuration::mul_f64(inf) which clamps to ZERO.
        let p = RetryPolicy {
            max_retries: 64,
            backoff_base: SimDuration::from_secs(30),
            backoff_multiplier: 1e6,
            backoff_cap: SimDuration::ZERO,
            jitter: 0.0,
        };
        let mut rng = SimRng::from_seed(0);
        let mut prev = SimDuration::ZERO;
        for attempt in 0..64u32 {
            let d = p.backoff(attempt, &mut rng);
            assert!(d >= prev, "attempt {attempt}: {d} < {prev} (overflow collapse)");
            prev = d;
        }
        assert_eq!(prev, SimDuration::from_micros(u64::MAX), "saturated");
    }

    #[test]
    fn slowdown_windows_are_deterministic_per_node_and_clipped() {
        let plan = FaultPlan::new(
            FaultConfig {
                node_slowdown_mtbf: Some(SimDuration::from_hours(2)),
                slowdown_duration: SimDuration::from_mins(20),
                slowdown_factor: 10.0,
                max_slowdowns_per_node: 4,
                ..FaultConfig::none()
            },
            11,
        );
        let w = plan.slowdown_windows(0);
        assert!(!w.is_empty() && w.len() <= 4);
        for pair in w.windows(2) {
            assert!(pair[0].end <= pair[1].start, "windows must not overlap");
        }
        assert_ne!(plan.slowdown_windows(0), plan.slowdown_windows(1));
        assert_eq!(w, plan.slowdown_windows(0), "deterministic");
        assert!(w.iter().all(|x| x.factor >= 1.0));
    }

    #[test]
    fn scripted_slowdowns_clip_overlaps_keeping_the_earlier_factor() {
        let plan = FaultPlan::new(
            FaultConfig {
                scripted_slowdowns: vec![
                    ScriptedSlowdown {
                        node: 0,
                        at: SimTime::from_micros(1_000_000),
                        duration: SimDuration::from_secs(10),
                        factor: 4.0,
                    },
                    ScriptedSlowdown {
                        node: 0,
                        at: SimTime::from_micros(5_000_000),
                        duration: SimDuration::from_secs(10),
                        factor: 2.0,
                    },
                ],
                ..FaultConfig::none()
            },
            0,
        );
        let w = plan.slowdown_windows(0);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].end, SimTime::from_micros(11_000_000));
        assert_eq!(w[1].start, SimTime::from_micros(11_000_000), "clipped");
        assert_eq!(w[1].end, SimTime::from_micros(15_000_000));
        assert!(plan.slowdown_windows(1).is_empty());
        assert!(!plan.is_none(), "slowdowns make the config non-trivial");
    }

    #[test]
    fn dilate_span_is_exact_identity_without_windows() {
        let d = SimDuration::from_secs(50);
        assert_eq!(dilate_span(&[], SimTime::ZERO, d), d);
        assert_eq!(dilate_span(&[], SimTime::from_micros(123), SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn dilate_span_stretches_work_inside_windows() {
        let w = [SlowWindow {
            start: SimTime::from_micros(10_000_000),
            end: SimTime::from_micros(30_000_000),
            factor: 10.0,
        }];
        // Entirely before the window: untouched.
        assert_eq!(
            dilate_span(&w, SimTime::ZERO, SimDuration::from_secs(10)),
            SimDuration::from_secs(10)
        );
        // Entirely inside: 1 s of work takes 10 s.
        assert_eq!(
            dilate_span(&w, SimTime::from_micros(10_000_000), SimDuration::from_secs(1)),
            SimDuration::from_secs(10)
        );
        // Straddling: 5 s free + 15 s of work; 2 s of it fits in the
        // window (20 s real), the last 13 s run after it ends.
        assert_eq!(
            dilate_span(&w, SimTime::from_micros(5_000_000), SimDuration::from_secs(20)),
            SimDuration::from_secs(5 + 20 + 13)
        );
        // Work starting after the window is untouched.
        assert_eq!(
            dilate_span(&w, SimTime::from_micros(30_000_000), SimDuration::from_secs(7)),
            SimDuration::from_secs(7)
        );
    }

    #[test]
    fn dilate_span_walks_multiple_windows() {
        let w = [
            SlowWindow {
                start: SimTime::from_micros(0),
                end: SimTime::from_micros(10_000_000),
                factor: 2.0,
            },
            SlowWindow {
                start: SimTime::from_micros(20_000_000),
                end: SimTime::from_micros(30_000_000),
                factor: 5.0,
            },
        ];
        // 20 s of work from t=0: 5 s done in window 1 (10 s real), 10 s
        // free (10 s done), window 2 opens with 5 s left → 25 s real, but
        // only 2 s of work fits in its 10 s → 3 s left after t=30 s.
        assert_eq!(
            dilate_span(&w, SimTime::ZERO, SimDuration::from_secs(20)),
            SimDuration::from_secs(10 + 10 + 10 + 3)
        );
    }

    #[test]
    fn hedge_and_quarantine_policies_clamp_sensibly() {
        let h = HedgePolicy::k(0.5);
        assert_eq!(h.threshold, 1.0, "threshold below 1 would hedge instantly");
        let q = QuarantinePolicy::distinct(1).with_shape_trip(3);
        assert_eq!(q.distinct_nodes, 2, "one node can never be distinct evidence");
        assert_eq!(q.shape_trip, 3);
    }

    #[test]
    fn jitter_stays_within_the_advertised_band() {
        let p = RetryPolicy::retries(3);
        let mut rng = SimRng::from_seed(9);
        for _ in 0..100 {
            let d = p.backoff(1, &mut rng).as_secs_f64();
            assert!((30.0 * 0.875..=30.0 * 1.125).contains(&d), "{d}");
        }
    }
}
