//! Deterministic fault injection and retry policy.
//!
//! Long campaigns on real clusters face three failure classes the paper's
//! Amarel runs had to survive: transient task failures (OOM kills, flaky
//! filesystems), task hangs (stragglers), and node crash/recover cycles
//! (drains, hardware faults). This module models all three behind a
//! [`FaultPlan`] that both backends consult, plus a [`RetryPolicy`] the
//! pilot applies transparently before surfacing a failure to the workflow
//! layer.
//!
//! Determinism: every decision is drawn from a labelled [`SimRng`] fork
//! keyed on stable identities — `(task id, attempt)` for per-attempt faults,
//! node index for crash schedules — never on the order in which the backend
//! happens to ask. Forking is position-independent, so the same plan with
//! the same seed produces the same fault sequence on both backends and
//! across runs. A [`FaultPlan::none`] plan draws no randomness at all and is
//! a strict no-op: backends constructed with it behave byte-identically to
//! backends without fault support.

use impress_sim::{SimDuration, SimRng, SimTime};

/// The fault class an attempt draws from the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptFault {
    /// No injected fault: the attempt runs normally.
    None,
    /// Transient failure: the attempt occupies its slots for the full
    /// declared duration and then fails (OOM kill at the end of a long
    /// computation — the expensive kind).
    Transient,
    /// Hang: the attempt runs [`FaultConfig::hang_factor`] × its declared
    /// duration. With a walltime limit set, this surfaces as
    /// [`crate::backend::TaskError::TimedOut`]; without one it is a
    /// straggler that still terminates.
    Hang,
}

/// A scripted node outage, for tests and reproducible scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedCrash {
    /// Which node crashes.
    pub node: u32,
    /// When it crashes (virtual time).
    pub at: SimTime,
    /// How long it stays down before recovering.
    pub outage: SimDuration,
}

/// Configuration of the injected fault environment.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Per-attempt probability of a transient failure.
    pub task_failure_rate: f64,
    /// Per-attempt probability of a hang.
    pub task_hang_rate: f64,
    /// Duration multiplier applied to hung attempts.
    pub hang_factor: f64,
    /// Mean time between node failures (exponential inter-crash gaps).
    /// `None` disables stochastic node crashes.
    pub node_mtbf: Option<SimDuration>,
    /// Downtime of a crashed node before it recovers.
    pub node_outage: SimDuration,
    /// Upper bound on stochastic crashes sampled per node (keeps the crash
    /// schedule finite and rules out requeue livelock).
    pub max_crashes_per_node: u32,
    /// Explicit outages injected in addition to the stochastic schedule.
    pub scripted_crashes: Vec<ScriptedCrash>,
}

impl FaultConfig {
    /// The fault-free environment (the default for both backends).
    pub fn none() -> Self {
        FaultConfig {
            task_failure_rate: 0.0,
            task_hang_rate: 0.0,
            hang_factor: 8.0,
            node_mtbf: None,
            node_outage: SimDuration::from_mins(10),
            max_crashes_per_node: 8,
            scripted_crashes: Vec::new(),
        }
    }

    /// Whether this configuration injects nothing.
    pub fn is_none(&self) -> bool {
        self.task_failure_rate <= 0.0
            && self.task_hang_rate <= 0.0
            && self.node_mtbf.is_none()
            && self.scripted_crashes.is_empty()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// A deterministic, seeded realization of a [`FaultConfig`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: SimRng,
}

impl FaultPlan {
    /// Realize `config` under `seed`.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        FaultPlan {
            config,
            rng: SimRng::from_seed(seed).fork("fault-plan"),
        }
    }

    /// The fault-free plan: injects nothing, draws no randomness.
    pub fn none() -> Self {
        Self::new(FaultConfig::none(), 0)
    }

    /// Whether this plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.config.is_none()
    }

    /// The configuration this plan realizes.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The fault drawn by attempt `attempt` (0-based) of task `task`.
    /// Deterministic in `(task, attempt)`; independent of call order.
    pub fn attempt_fault(&self, task: u64, attempt: u32) -> AttemptFault {
        let c = &self.config;
        if c.task_failure_rate <= 0.0 && c.task_hang_rate <= 0.0 {
            return AttemptFault::None;
        }
        let mut rng = self
            .rng
            .fork_idx("attempt", task.wrapping_mul(0x1_0000).wrapping_add(attempt as u64));
        let u = rng.uniform();
        if u < c.task_failure_rate {
            AttemptFault::Transient
        } else if u < c.task_failure_rate + c.task_hang_rate {
            AttemptFault::Hang
        } else {
            AttemptFault::None
        }
    }

    /// The `(crash, recover)` windows for `node`, sorted and merged so they
    /// never overlap: scripted outages plus up to
    /// [`FaultConfig::max_crashes_per_node`] stochastic ones with
    /// exponential inter-crash gaps of mean [`FaultConfig::node_mtbf`].
    pub fn crash_windows(&self, node: u32) -> Vec<(SimTime, SimTime)> {
        let mut windows: Vec<(SimTime, SimTime)> = self
            .config
            .scripted_crashes
            .iter()
            .filter(|s| s.node == node)
            .map(|s| (s.at, s.at + s.outage))
            .collect();
        if let Some(mtbf) = self.config.node_mtbf {
            let mut rng = self.rng.fork_idx("node-crash", node as u64);
            let mut t = SimTime::ZERO;
            for _ in 0..self.config.max_crashes_per_node {
                // Inverse-CDF exponential draw; uniform() < 1 keeps ln finite.
                let gap = mtbf.mul_f64(-(1.0 - rng.uniform()).ln());
                t = t + gap;
                let end = t + self.config.node_outage;
                windows.push((t, end));
                t = end;
            }
        }
        windows.sort();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(windows.len());
        for (start, end) in windows {
            match merged.last_mut() {
                Some((_, prev_end)) if start <= *prev_end => {
                    *prev_end = (*prev_end).max(end);
                }
                _ => merged.push((start, end)),
            }
        }
        merged
    }
}

/// How the pilot resubmits attempts that fail before their work ran:
/// injected transient faults, walltime expiries, and node-crash preemptions.
/// (A work closure that panicked is never retried — the closure is consumed
/// by running it, and a deterministic panic would recur anyway.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Resubmission budget per task: total attempts = `1 + max_retries`.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff_base: SimDuration,
    /// Exponential growth factor per additional retry.
    pub backoff_multiplier: f64,
    /// Backoff ceiling (`ZERO` = uncapped).
    pub backoff_cap: SimDuration,
    /// Multiplicative jitter half-width as a fraction of the delay
    /// (`0.25` → delay scaled by a uniform factor in `[0.875, 1.125]`).
    pub jitter: f64,
}

impl RetryPolicy {
    /// No retries: every failed attempt surfaces immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base: SimDuration::ZERO,
            backoff_multiplier: 2.0,
            backoff_cap: SimDuration::ZERO,
            jitter: 0.0,
        }
    }

    /// A sensible default budget: `n` retries, 30 s base backoff doubling
    /// to a 30 min cap, ±12.5 % jitter.
    pub fn retries(n: u32) -> Self {
        RetryPolicy {
            max_retries: n,
            backoff_base: SimDuration::from_secs(30),
            backoff_multiplier: 2.0,
            backoff_cap: SimDuration::from_mins(30),
            jitter: 0.25,
        }
    }

    /// The delay before resubmitting attempt `attempt` (1-based: the first
    /// retry is attempt 1). Draws jitter from `rng` only when both the base
    /// delay and the jitter are non-zero.
    pub fn backoff(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        if self.backoff_base == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        let exp = self
            .backoff_multiplier
            .powi(attempt.saturating_sub(1).min(63) as i32);
        let mut delay = self.backoff_base.mul_f64(exp);
        if self.backoff_cap > SimDuration::ZERO && delay > self.backoff_cap {
            delay = self.backoff_cap;
        }
        if self.jitter > 0.0 {
            delay = delay.mul_f64(1.0 + self.jitter * (rng.uniform() - 0.5));
        }
        delay
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        for t in 0..100u64 {
            assert_eq!(plan.attempt_fault(t, 0), AttemptFault::None);
        }
        assert!(plan.crash_windows(0).is_empty());
    }

    #[test]
    fn attempt_faults_are_deterministic_and_attempt_sensitive() {
        let cfg = FaultConfig {
            task_failure_rate: 0.3,
            task_hang_rate: 0.2,
            ..FaultConfig::none()
        };
        let a = FaultPlan::new(cfg.clone(), 42);
        let b = FaultPlan::new(cfg, 42);
        let mut differs_by_attempt = false;
        for t in 0..200u64 {
            assert_eq!(a.attempt_fault(t, 0), b.attempt_fault(t, 0));
            assert_eq!(a.attempt_fault(t, 1), b.attempt_fault(t, 1));
            if a.attempt_fault(t, 0) != a.attempt_fault(t, 1) {
                differs_by_attempt = true;
            }
        }
        assert!(differs_by_attempt, "retries must draw fresh faults");
    }

    #[test]
    fn fault_rates_are_roughly_honored() {
        let plan = FaultPlan::new(
            FaultConfig {
                task_failure_rate: 0.25,
                ..FaultConfig::none()
            },
            7,
        );
        let fails = (0..2000u64)
            .filter(|&t| plan.attempt_fault(t, 0) == AttemptFault::Transient)
            .count();
        assert!((400..600).contains(&fails), "~25% expected, got {fails}/2000");
    }

    #[test]
    fn crash_windows_are_sorted_disjoint_and_bounded() {
        let plan = FaultPlan::new(
            FaultConfig {
                node_mtbf: Some(SimDuration::from_hours(4)),
                node_outage: SimDuration::from_mins(15),
                max_crashes_per_node: 5,
                ..FaultConfig::none()
            },
            3,
        );
        let w = plan.crash_windows(0);
        assert!(!w.is_empty() && w.len() <= 5);
        for pair in w.windows(2) {
            assert!(pair[0].1 < pair[1].0, "windows must not overlap");
        }
        assert_ne!(plan.crash_windows(0), plan.crash_windows(1), "per-node schedules");
        assert_eq!(w, plan.crash_windows(0), "deterministic");
    }

    #[test]
    fn scripted_crashes_merge_with_stochastic_ones() {
        let plan = FaultPlan::new(
            FaultConfig {
                scripted_crashes: vec![
                    ScriptedCrash {
                        node: 0,
                        at: SimTime::from_micros(5_000_000),
                        outage: SimDuration::from_secs(10),
                    },
                    ScriptedCrash {
                        node: 0,
                        at: SimTime::from_micros(20_000_000),
                        outage: SimDuration::from_secs(10),
                    },
                    ScriptedCrash {
                        node: 1,
                        at: SimTime::from_micros(1_000_000),
                        outage: SimDuration::from_secs(1),
                    },
                ],
                ..FaultConfig::none()
            },
            0,
        );
        assert_eq!(plan.crash_windows(0).len(), 2);
        assert_eq!(plan.crash_windows(1).len(), 1);
        assert!(plan.crash_windows(2).is_empty());
    }

    #[test]
    fn overlapping_windows_are_merged() {
        let plan = FaultPlan::new(
            FaultConfig {
                scripted_crashes: vec![
                    ScriptedCrash {
                        node: 0,
                        at: SimTime::from_micros(1_000_000),
                        outage: SimDuration::from_secs(10),
                    },
                    ScriptedCrash {
                        node: 0,
                        at: SimTime::from_micros(5_000_000),
                        outage: SimDuration::from_secs(10),
                    },
                ],
                ..FaultConfig::none()
            },
            0,
        );
        let w = plan.crash_windows(0);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].0, SimTime::from_micros(1_000_000));
        assert_eq!(w[0].1, SimTime::from_micros(15_000_000));
    }

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::retries(10)
        };
        let mut rng = SimRng::from_seed(0);
        let d1 = p.backoff(1, &mut rng);
        let d2 = p.backoff(2, &mut rng);
        let d3 = p.backoff(3, &mut rng);
        assert_eq!(d1, SimDuration::from_secs(30));
        assert_eq!(d2, SimDuration::from_secs(60));
        assert_eq!(d3, SimDuration::from_secs(120));
        assert_eq!(p.backoff(40, &mut rng), SimDuration::from_mins(30), "capped");
    }

    #[test]
    fn none_policy_never_delays_or_draws() {
        let p = RetryPolicy::none();
        let mut rng = SimRng::from_seed(1);
        let before = rng.clone().next_u64();
        assert_eq!(p.backoff(1, &mut rng), SimDuration::ZERO);
        assert_eq!(rng.next_u64(), before, "no randomness consumed");
    }

    #[test]
    fn jitter_stays_within_the_advertised_band() {
        let p = RetryPolicy::retries(3);
        let mut rng = SimRng::from_seed(9);
        for _ in 0..100 {
            let d = p.backoff(1, &mut rng).as_secs_f64();
            assert!((30.0 * 0.875..=30.0 * 1.125).contains(&d), "{d}");
        }
    }
}
