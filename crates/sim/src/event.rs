//! The deterministic event queue.
//!
//! Events are ordered by `(time, sequence number)`: ties at the same virtual
//! instant fire in scheduling order. This makes every simulation replayable —
//! the queue never consults wall-clock time, thread identity, or hash order.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Monotonically increasing identifier assigned to every scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

/// An entry in the event queue: a firing time plus an opaque payload.
///
/// The engine stores continuations as payloads; tests may use plain values.
pub struct ScheduledEvent<T> {
    /// When the event fires.
    pub at: SimTime,
    /// Queue-unique identifier; also the deterministic tie-breaker.
    pub id: EventId,
    /// The payload delivered when the event fires.
    pub payload: T,
}

impl<T> PartialEq for ScheduledEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl<T> Eq for ScheduledEvent<T> {}

impl<T> PartialOrd for ScheduledEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for ScheduledEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, id) pops first.
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

/// A min-queue of timed events with deterministic FIFO tie-breaking.
///
/// Cancellation is lazy (a tombstone in the heap, skipped when popped) but
/// *exact*: the queue also tracks the set of scheduled-and-not-yet-fired
/// ids, so [`EventQueue::cancel`] reports precisely whether it removed a
/// live event and [`EventQueue::len`] is always the true live count. When
/// tombstones dominate the heap it is compacted in one O(n) rebuild, so
/// mass cancellations (a node crash evicting thousands of completions)
/// cannot degrade every later pop.
pub struct EventQueue<T> {
    heap: BinaryHeap<ScheduledEvent<T>>,
    next_id: u64,
    /// Ids scheduled and not yet fired, cancelled, or pruned.
    pending: std::collections::HashSet<u64>,
    /// Tombstones still physically in the heap (always a subset of it).
    cancelled: std::collections::HashSet<u64>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_id: 0,
            pending: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Schedule `payload` to fire at `at`. Returns the event's id, usable
    /// with [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, payload: T) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.pending.insert(id.0);
        self.heap.push(ScheduledEvent { at, id, payload });
        id
    }

    /// Schedule a burst of events in one queue operation. Ids are assigned
    /// in iteration order; the batch occupies the contiguous id range
    /// `first.0 .. first.0 + count` of the returned `(first, count)` pair,
    /// so callers that track per-event ids (for later [`EventQueue::cancel`])
    /// can reconstruct them without a per-event allocation. The heap is
    /// extended in bulk, so a submission burst of N events costs one
    /// amortized rebuild instead of N sift-ups.
    pub fn schedule_batch(&mut self, items: impl IntoIterator<Item = (SimTime, T)>) -> (EventId, usize) {
        let first = EventId(self.next_id);
        let pending = &mut self.pending;
        let next_id = &mut self.next_id;
        self.heap.extend(items.into_iter().map(|(at, payload)| {
            let id = EventId(*next_id);
            *next_id += 1;
            pending.insert(id.0);
            ScheduledEvent { at, id, payload }
        }));
        (first, (self.next_id - first.0) as usize)
    }

    /// Cancel a previously scheduled event. Cancellation is lazy: the entry
    /// stays in the heap but is skipped when popped. Returns `true` only if
    /// the event was still live — `false` if it already fired or was
    /// already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.pending.remove(&id.0) {
            return false;
        }
        self.cancelled.insert(id.0);
        self.maybe_compact();
        true
    }

    /// Remove and return the earliest non-cancelled event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.id.0) {
                continue;
            }
            self.pending.remove(&ev.id.0);
            return Some(ev);
        }
        None
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled entries from the top so the peek is accurate.
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.id.0) {
                let ev = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&ev.id.0);
            } else {
                return Some(top.at);
            }
        }
        None
    }

    /// Number of live (scheduled, unfired, uncancelled) events. Exact:
    /// tombstones are never counted.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Rebuild the heap without tombstones once they outnumber live
    /// entries. The threshold keeps small queues untouched and makes the
    /// O(n) sweep amortized O(1) per cancellation.
    fn maybe_compact(&mut self) {
        if self.cancelled.len() > 64 && self.cancelled.len() * 2 > self.heap.len() {
            let cancelled = std::mem::take(&mut self.cancelled);
            let heap = std::mem::take(&mut self.heap);
            self.heap = heap
                .into_iter()
                .filter(|ev| !cancelled.contains(&ev.id.0))
                .collect();
        }
    }

    /// Whether no live events remain. (Takes `&mut self` because it prunes
    /// lazily-cancelled entries to give an exact answer.)
    #[allow(clippy::wrong_self_convention)]
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "c");
        q.schedule(t(1), "a");
        q.schedule(t(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_ignores_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(9)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop().map(|e| e.at), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn cancel_after_fire_reports_false_and_len_stays_exact() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.len(), 1);
        // `a` already fired: cancelling it must be a no-op, not a future
        // skip of an unrelated event or a phantom decrement of len().
        assert!(!q.cancel(a), "cancel of a fired event reports false");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
        assert_eq!(q.len(), 0, "cancel-then-len is exact");
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0, "cancel-then-pop-then-len is exact");
    }

    #[test]
    fn mass_cancellation_compacts_the_heap() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..1000).map(|i| q.schedule(t(i), i)).collect();
        let keep = q.schedule(t(5000), 5000);
        for id in &ids {
            assert!(q.cancel(*id));
        }
        assert_eq!(q.len(), 1);
        assert!(
            q.heap.len() < 1001,
            "tombstone-dominated heap must compact: {}",
            q.heap.len()
        );
        assert_eq!(q.pop().unwrap().id, keep);
        assert!(q.is_empty());
        assert!(!q.cancel(keep), "fired after compaction still reports false");
    }

    #[test]
    fn schedule_batch_assigns_sequential_ids_and_bulk_inserts() {
        let mut q = EventQueue::new();
        q.schedule(t(50), 0u64);
        let (first, count) = q.schedule_batch((0..10u64).map(|i| (t(10 - i), i + 1)));
        assert_eq!(first, EventId(1));
        assert_eq!(count, 10);
        assert_eq!(q.len(), 11);
        // Cancel one batch member through its reconstructed id.
        assert!(q.cancel(EventId(first.0 + 3)));
        let popped: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        // Batch fired in time order (descending payload = ascending time),
        // minus the cancelled member (payload 4), with the t(50) tail last.
        assert_eq!(popped, vec![10, 9, 8, 7, 6, 5, 3, 2, 1, 0]);
        let (first2, count2) = q.schedule_batch(std::iter::empty());
        assert_eq!((first2, count2), (EventId(11), 0), "empty batch is a no-op");
    }

    /// Satellite audit: `len()`/`cancel` stay exact under lazy-cancel heap
    /// compaction, including when a cancel races a pop of the same id in
    /// one tick. A naive Vec-of-states model is the oracle; every
    /// interleaving of push / batch-push / pop / cancel must agree on pop
    /// order, cancel return values, peeks, and exact live counts.
    mod queue_model {
        use super::*;
        use crate::props;

        #[derive(Clone, Copy, PartialEq)]
        enum St {
            Live,
            Cancelled,
            Fired,
        }

        struct Model {
            events: Vec<(SimTime, u64, St)>,
        }

        impl Model {
            fn push(&mut self, at: SimTime) -> u64 {
                let id = self.events.len() as u64;
                self.events.push((at, id, St::Live));
                id
            }
            fn live(&self) -> impl Iterator<Item = &(SimTime, u64, St)> {
                self.events.iter().filter(|(_, _, st)| *st == St::Live)
            }
            fn pop(&mut self) -> Option<(SimTime, u64)> {
                let &(at, id, _) = self.live().min_by_key(|&&(at, id, _)| (at, id))?;
                self.events[id as usize].2 = St::Fired;
                Some((at, id))
            }
            fn cancel(&mut self, id: u64) -> bool {
                match self.events.get_mut(id as usize) {
                    Some(slot) if slot.2 == St::Live => {
                        slot.2 = St::Cancelled;
                        true
                    }
                    _ => false,
                }
            }
        }

        props! {
            /// 256 random interleavings of push/batch/pop/cancel against the
            /// naive model: ids, order, len, and peeks all stay exact.
            fn queue_matches_naive_model_under_push_pop_cancel(rng, cases = 256) {
                let mut q = EventQueue::new();
                let mut model = Model { events: Vec::new() };
                let ops = 30 + rng.below(120);
                for _ in 0..ops {
                    match rng.below(10) {
                        0..=3 => {
                            let at = t(rng.below(40) as u64);
                            let id = q.schedule(at, ());
                            assert_eq!(id.0, model.push(at));
                        }
                        4 => {
                            let n = rng.below(5) as u64;
                            let ats: Vec<SimTime> =
                                (0..n).map(|_| t(rng.below(40) as u64)).collect();
                            let (first, count) =
                                q.schedule_batch(ats.iter().map(|&at| (at, ())));
                            assert_eq!(count as u64, n);
                            for (i, &at) in ats.iter().enumerate() {
                                assert_eq!(first.0 + i as u64, model.push(at));
                            }
                        }
                        5..=6 => {
                            let got = q.pop().map(|e| (e.at, e.id.0));
                            assert_eq!(got, model.pop(), "pop order diverged");
                            // The cancel-races-pop tick: cancelling the id we
                            // just popped must be a no-op in both worlds.
                            if let Some((_, id)) = got {
                                assert!(!q.cancel(EventId(id)), "cancel of fired id");
                                assert!(!model.cancel(id));
                            }
                        }
                        _ => {
                            if model.events.is_empty() {
                                continue;
                            }
                            // Any id ever issued: live, already fired, or
                            // already cancelled — return values must agree.
                            let id = rng.below(model.events.len()) as u64;
                            assert_eq!(q.cancel(EventId(id)), model.cancel(id));
                        }
                    }
                    assert_eq!(q.len(), model.live().count(), "live count drifted");
                    assert_eq!(
                        q.peek_time(),
                        model.live().map(|&(at, id, _)| (at, id)).min().map(|(at, _)| at),
                        "peek diverged"
                    );
                }
                // Drain to empty: the full remaining order must agree.
                while let Some(ev) = q.pop() {
                    assert_eq!(Some((ev.at, ev.id.0)), model.pop());
                }
                assert_eq!(model.pop(), None, "model had leftovers the queue lost");
                assert_eq!(q.len(), 0);
            }
        }
    }

    #[test]
    fn compaction_preserves_order_and_pending_cancels() {
        let mut q = EventQueue::new();
        // Interleave survivors and victims so compaction must filter, not
        // truncate; then check the survivors still pop in (time, id) order.
        let mut survivors = Vec::new();
        let mut victims = Vec::new();
        for i in 0..400u64 {
            let id = q.schedule(t(1000 - (i % 97) * 10), i);
            if i % 3 == 0 {
                survivors.push((id, i));
            } else {
                victims.push(id);
            }
        }
        for id in victims {
            assert!(q.cancel(id));
        }
        let mut popped = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push((ev.at, ev.id));
        }
        assert_eq!(popped.len(), survivors.len());
        let mut expected: Vec<_> = popped.clone();
        expected.sort();
        assert_eq!(popped, expected, "pop order survives compaction");
    }
}
