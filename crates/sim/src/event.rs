//! The deterministic event queue.
//!
//! Events are ordered by `(time, sequence number)`: ties at the same virtual
//! instant fire in scheduling order. This makes every simulation replayable —
//! the queue never consults wall-clock time, thread identity, or hash order.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Monotonically increasing identifier assigned to every scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

/// An entry in the event queue: a firing time plus an opaque payload.
///
/// The engine stores continuations as payloads; tests may use plain values.
pub struct ScheduledEvent<T> {
    /// When the event fires.
    pub at: SimTime,
    /// Queue-unique identifier; also the deterministic tie-breaker.
    pub id: EventId,
    /// The payload delivered when the event fires.
    pub payload: T,
}

impl<T> PartialEq for ScheduledEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl<T> Eq for ScheduledEvent<T> {}

impl<T> PartialOrd for ScheduledEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for ScheduledEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, id) pops first.
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

/// A min-queue of timed events with deterministic FIFO tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<ScheduledEvent<T>>,
    next_id: u64,
    cancelled: std::collections::HashSet<u64>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_id: 0,
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Schedule `payload` to fire at `at`. Returns the event's id, usable
    /// with [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, payload: T) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(ScheduledEvent { at, id, payload });
        id
    }

    /// Cancel a previously scheduled event. Cancellation is lazy: the entry
    /// stays in the heap but is skipped when popped. Returns `true` if the
    /// id had not already been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.cancelled.insert(id.0)
    }

    /// Remove and return the earliest non-cancelled event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.id.0) {
                continue;
            }
            return Some(ev);
        }
        None
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled entries from the top so the peek is accurate.
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.id.0) {
                let ev = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&ev.id.0);
            } else {
                return Some(top.at);
            }
        }
        None
    }

    /// Number of events still scheduled (including lazily cancelled ones).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.heap.len().saturating_sub(self.cancelled.len())
    }

    /// Whether no live events remain. (Takes `&mut self` because it prunes
    /// lazily-cancelled entries to give an exact answer.)
    #[allow(clippy::wrong_self_convention)]
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "c");
        q.schedule(t(1), "a");
        q.schedule(t(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_ignores_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(9)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop().map(|e| e.at), None);
        assert_eq!(q.peek_time(), None);
    }
}
