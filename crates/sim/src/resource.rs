//! Counted resources with FIFO wait queues.
//!
//! A [`Resource`] models a pool of interchangeable units — CPU cores, GPU
//! slots, filesystem bandwidth tokens. Processes request `n` units; requests
//! that do not fit wait in FIFO order. FIFO granting (rather than best-fit)
//! mirrors the fairness of the pilot agent's launcher queue and keeps the
//! simulation deterministic.
//!
//! Note the deliberate *head-of-line blocking*: if the queue head wants 4
//! units and only 2 are free, smaller requests behind it also wait. The pilot
//! scheduler in `impress-pilot` implements smarter placement (backfill) at a
//! layer above; this primitive stays simple and predictable.

use crate::engine::Continuation;
use std::collections::VecDeque;

/// Identifies a counted resource registered with an [`crate::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) usize);

/// A single counted resource. Exposed for direct (non-engine) use in tests
/// and in the pilot's utilization accounting.
pub struct Resource {
    capacity: u64,
    available: u64,
    waiters: VecDeque<(u64, Continuation)>,
}

impl Resource {
    /// A resource with `capacity` free units and no waiters.
    pub fn new(capacity: u64) -> Self {
        Resource {
            capacity,
            available: capacity,
            waiters: VecDeque::new(),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Currently free units.
    pub fn available(&self) -> u64 {
        self.available
    }

    /// Currently held units.
    pub fn in_use(&self) -> u64 {
        self.capacity - self.available
    }

    /// Queued requests.
    pub fn waiters(&self) -> usize {
        self.waiters.len()
    }

    fn try_acquire(&mut self, amount: u64) -> bool {
        // Respect FIFO: even if `amount` fits, queue-jumping ahead of an
        // existing waiter would starve large requests.
        if self.waiters.is_empty() && amount <= self.available {
            self.available -= amount;
            true
        } else {
            false
        }
    }

    fn release(&mut self, amount: u64) -> Vec<Continuation> {
        assert!(
            self.available + amount <= self.capacity,
            "release of {amount} units would exceed capacity {} (available {})",
            self.capacity,
            self.available
        );
        self.available += amount;
        let mut woken = Vec::new();
        while let Some((need, _)) = self.waiters.front() {
            if *need <= self.available {
                let (need, cont) = self.waiters.pop_front().expect("front exists");
                self.available -= need;
                woken.push(cont);
            } else {
                break;
            }
        }
        woken
    }
}

/// The set of resources owned by an engine.
pub(crate) struct ResourcePool {
    resources: Vec<Resource>,
}

impl ResourcePool {
    pub(crate) fn new() -> Self {
        ResourcePool {
            resources: Vec::new(),
        }
    }

    pub(crate) fn add(&mut self, capacity: u64) -> ResourceId {
        self.resources.push(Resource::new(capacity));
        ResourceId(self.resources.len() - 1)
    }

    pub(crate) fn try_acquire(&mut self, id: ResourceId, amount: u64) -> bool {
        self.resources[id.0].try_acquire(amount)
    }

    pub(crate) fn enqueue_waiter(&mut self, id: ResourceId, amount: u64, cont: Continuation) {
        assert!(
            amount <= self.resources[id.0].capacity,
            "request of {amount} units can never be satisfied by capacity {}",
            self.resources[id.0].capacity
        );
        self.resources[id.0].waiters.push_back((amount, cont));
    }

    pub(crate) fn release(&mut self, id: ResourceId, amount: u64) -> Vec<Continuation> {
        self.resources[id.0].release(amount)
    }

    pub(crate) fn available(&self, id: ResourceId) -> u64 {
        self.resources[id.0].available()
    }

    pub(crate) fn in_use(&self, id: ResourceId) -> u64 {
        self.resources[id.0].in_use()
    }

    pub(crate) fn waiters(&self, id: ResourceId) -> usize {
        self.resources[id.0].waiters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_conserves_units() {
        let mut r = Resource::new(8);
        assert!(r.try_acquire(5));
        assert_eq!(r.available(), 3);
        assert_eq!(r.in_use(), 5);
        let woken = r.release(5);
        assert!(woken.is_empty());
        assert_eq!(r.available(), 8);
    }

    #[test]
    #[should_panic(expected = "exceed capacity")]
    fn over_release_panics() {
        let mut r = Resource::new(2);
        r.release(1);
    }

    #[test]
    fn fifo_prevents_queue_jumping() {
        let mut r = Resource::new(4);
        assert!(r.try_acquire(3));
        // Big request queues...
        r.waiters.push_back((4, Box::new(|_| {})));
        // ...so a small request that *would* fit must also wait.
        assert!(!r.try_acquire(1));
        // Releasing 3 gives 4 free; exactly the queue head wakes.
        let woken = r.release(3);
        assert_eq!(woken.len(), 1);
        assert_eq!(r.available(), 0);
    }

    #[test]
    fn release_wakes_multiple_fitting_waiters() {
        let mut r = Resource::new(4);
        assert!(r.try_acquire(4));
        r.waiters.push_back((2, Box::new(|_| {})));
        r.waiters.push_back((1, Box::new(|_| {})));
        r.waiters.push_back((4, Box::new(|_| {})));
        let woken = r.release(4);
        // 2 and 1 fit (3 of 4); 4 does not.
        assert_eq!(woken.len(), 2);
        assert_eq!(r.available(), 1);
        assert_eq!(r.waiters(), 1);
    }

    #[test]
    #[should_panic(expected = "never be satisfied")]
    fn impossible_request_panics_instead_of_deadlocking() {
        let mut pool = ResourcePool::new();
        let id = pool.add(2);
        pool.enqueue_waiter(id, 3, Box::new(|_| {}));
    }
}
