//! # impress-sim
//!
//! A deterministic, single-threaded discrete-event simulation (DES) substrate
//! used to replay virtual-time HPC cluster executions.
//!
//! The IMPRESS paper evaluates its middleware on a real cluster node where a
//! single experiment takes 27–38 wall-clock *hours* (Table I). This crate lets
//! the pilot runtime replay the exact same scheduling decisions in virtual
//! time, so the paper's utilization and makespan figures regenerate in
//! milliseconds and are bit-reproducible across runs and machines.
//!
//! Components:
//!
//! * [`time`] — virtual time points and durations with microsecond resolution.
//! * [`event`] — the deterministic event queue (ordered by `(time, seq)`).
//! * [`engine`] — the event loop; schedules continuation-passing callbacks.
//! * [`resource`] — counted resources with FIFO wait queues (e.g. shared
//!   filesystem bandwidth during AlphaFold MSA construction).
//! * [`rng`] — seedable, forkable deterministic random streams.
//! * [`slab`] — arena storage with `u32` handles for hot-path records.
//! * [`trace`] — busy-interval timelines and utilization accounting.
//! * [`stats`] — summary statistics (median, std-dev, quantiles) used by the
//!   experiment harnesses.
//!
//! The engine is intentionally *not* thread-safe: determinism is the point.
//! Real-time execution is provided by `impress-pilot`'s threaded backend
//! instead.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod alloc_probe;
pub mod engine;
pub mod event;
pub mod histogram;
pub mod props;
pub mod resource;
pub mod rng;
pub mod slab;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Engine, ProcessHandle};
pub use event::{EventId, EventQueue, ScheduledEvent};
pub use histogram::Histogram;
pub use resource::{Resource, ResourceId};
pub use rng::SimRng;
pub use slab::{Slab, SlotId};
pub use stats::Summary;
pub use time::{SimDuration, SimTime};
pub use trace::{IntervalTrace, UtilizationTracker};
