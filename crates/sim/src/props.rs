//! A minimal property-testing harness driven by [`SimRng`].
//!
//! Replaces `proptest` in the hermetic build: each property runs many
//! randomized cases, every case drawing its inputs from a deterministic
//! stream forked from `(master seed, property name, case index)`. A failing
//! case reports the exact master seed and case index so it can be replayed:
//!
//! ```text
//! property `event_queue_pops_sorted` failed at case 17 of 256
//! rerun with IMPRESS_PROPS_SEED=3405691582 (and optionally IMPRESS_PROPS_CASES=18)
//! ```
//!
//! Environment knobs:
//!
//! * `IMPRESS_PROPS_SEED`  — master seed (default `0xCAFE_BABE`).
//! * `IMPRESS_PROPS_CASES` — override the per-property case count (e.g. a
//!   quick `=8` smoke pass, or `=10000` for a soak).
//!
//! Usage:
//!
//! ```
//! use impress_sim::{props, prop_assume};
//!
//! props! {
//!     /// Shuffling preserves multiset membership.
//!     fn shuffle_preserves_elements(rng) {
//!         let mut v: Vec<usize> = (0..rng.below(100)).collect();
//!         let before = v.len();
//!         rng.shuffle(&mut v);
//!         assert_eq!(v.len(), before);
//!     }
//!
//!     /// Cases needing a precondition can discard with `prop_assume!`.
//!     fn division_round_trips(rng, cases = 64) {
//!         let d = rng.below(1000);
//!         prop_assume!(d != 0);
//!         let n = rng.below(1_000_000);
//!         assert_eq!(n / d * d + n % d, n);
//!     }
//! }
//! ```

use crate::rng::SimRng;

/// Default number of cases per property (proptest's default, matched so the
/// ported suites keep their statistical power).
pub const DEFAULT_CASES: u32 = 256;

/// Marker payload thrown by [`prop_assume!`](crate::prop_assume) to discard
/// a case without failing the property.
#[derive(Debug, Clone, Copy)]
pub struct Discard;

/// The master seed for this process: `IMPRESS_PROPS_SEED` or the default.
pub fn master_seed() -> u64 {
    std::env::var("IMPRESS_PROPS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xCAFE_BABE)
}

/// The per-property case count: `IMPRESS_PROPS_CASES` or `default`.
pub fn case_count(default: u32) -> u32 {
    std::env::var("IMPRESS_PROPS_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Run `body` for `cases` randomized cases. Called by the [`props!`]
/// (crate::props) macro expansion; not usually invoked directly.
///
/// Discarded cases (via [`prop_assume!`](crate::prop_assume)) do not count
/// as failures; if every case discards, the property fails for vacuity.
pub fn run_property(name: &str, cases: u32, mut body: impl FnMut(&mut SimRng)) {
    let seed = master_seed();
    let root = SimRng::from_seed(seed);
    let mut executed = 0u32;
    for case in 0..cases {
        let mut rng = root.fork_idx(name, u64::from(case));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        match outcome {
            Ok(()) => executed += 1,
            Err(payload) if payload.is::<Discard>() => continue,
            Err(payload) => {
                eprintln!("property `{name}` failed at case {case} of {cases}");
                eprintln!(
                    "rerun with IMPRESS_PROPS_SEED={seed} (and optionally \
                     IMPRESS_PROPS_CASES={})",
                    case + 1
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
    assert!(
        executed > 0,
        "property `{name}`: all {cases} cases were discarded by prop_assume!"
    );
}

/// Declare `#[test]` functions that each run a randomized property.
///
/// Each item is `fn name(rng) { body }` with an optional
/// `, cases = N` after the binding to override the per-property case count.
/// The body receives `rng: &mut SimRng` and signals failure by panicking
/// (plain `assert!`/`assert_eq!` work as-is).
#[macro_export]
macro_rules! props {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($rng:ident $(, cases = $cases:expr)?) $body:block
    )+) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                #[allow(unused_mut, unused_variables)]
                let default_cases: u32 = $crate::props::DEFAULT_CASES;
                $( let default_cases: u32 = $cases; )?
                $crate::props::run_property(
                    stringify!($name),
                    $crate::props::case_count(default_cases),
                    |$rng: &mut $crate::SimRng| $body,
                );
            }
        )+
    };
}

/// Discard the current property case unless `cond` holds (the `proptest`
/// `prop_assume!` analog). Must be used inside a [`props!`](crate::props)
/// body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            std::panic::panic_any($crate::props::Discard);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_replay_deterministically() {
        let mut first: Vec<u64> = Vec::new();
        run_property("replay_check", 8, |rng| {
            first.push(rng.next_u64());
        });
        let mut second: Vec<u64> = Vec::new();
        run_property("replay_check", 8, |rng| {
            second.push(rng.next_u64());
        });
        assert_eq!(first, second);
        // Each case gets an independent stream.
        assert_eq!(first.len(), 8);
        let mut dedup = first.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8, "case streams must differ");
    }

    #[test]
    fn discarded_cases_do_not_fail() {
        run_property("discard_check", 16, |rng| {
            let v = rng.below(4);
            if v == 0 {
                std::panic::panic_any(Discard);
            }
            assert!(v < 4);
        });
    }

    #[test]
    #[should_panic(expected = "all 4 cases were discarded")]
    fn vacuous_properties_fail() {
        run_property("vacuous", 4, |_rng| {
            std::panic::panic_any(Discard);
        });
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn failures_propagate() {
        run_property("failing", 4, |_rng| {
            panic!("deliberate");
        });
    }

    props! {
        /// The macro form compiles and runs: shuffle preserves length.
        fn macro_smoke(rng, cases = 8) {
            let n = rng.below(32);
            let mut v: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut v);
            assert_eq!(v.len(), n);
        }
    }
}
