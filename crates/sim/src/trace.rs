//! Busy-interval timelines and utilization accounting.
//!
//! The paper's Figures 4 and 5 plot per-device (CPU core / GPU) utilization
//! over the run. [`IntervalTrace`] records `[start, end)` busy intervals for
//! one device; [`UtilizationTracker`] aggregates a set of devices into the
//! percentage figures reported in Table I and a binned time series suitable
//! for plotting.

use crate::time::{SimDuration, SimTime};
use impress_json::json_struct;

/// One busy interval on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusyInterval {
    /// Interval start (inclusive).
    pub start: SimTime,
    /// Interval end (exclusive).
    pub end: SimTime,
}
json_struct!(BusyInterval { start, end });

impl BusyInterval {
    /// Length of the interval.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// Overlap between this interval and `[lo, hi)`.
    pub fn overlap(&self, lo: SimTime, hi: SimTime) -> SimDuration {
        let s = self.start.max(lo);
        let e = self.end.min(hi);
        e.since(s)
    }
}

/// Busy-interval record for a single device.
#[derive(Debug, Clone, Default)]
pub struct IntervalTrace {
    intervals: Vec<BusyInterval>,
    open: Option<SimTime>,
}
json_struct!(IntervalTrace { intervals, open });

impl IntervalTrace {
    /// An empty trace, pre-sized so the first few hundred busy intervals of
    /// a campaign never reallocate mid-simulation.
    pub fn new() -> Self {
        IntervalTrace {
            intervals: Vec::with_capacity(256),
            open: None,
        }
    }

    /// Mark the device busy from `at`. Panics if already marked busy —
    /// a device executes one task at a time in both backends.
    pub fn begin(&mut self, at: SimTime) {
        assert!(self.open.is_none(), "device already busy at {at}");
        self.open = Some(at);
    }

    /// Mark the device idle from `at`, closing the open interval.
    pub fn end(&mut self, at: SimTime) {
        let start = self.open.take().expect("end() without begin()");
        assert!(at >= start, "interval ends before it starts");
        if at > start {
            self.intervals.push(BusyInterval { start, end: at });
        }
    }

    /// Whether the device is currently marked busy.
    pub fn is_busy(&self) -> bool {
        self.open.is_some()
    }

    /// Close any open interval at `at` (used at simulation shutdown).
    pub fn flush(&mut self, at: SimTime) {
        if self.open.is_some() {
            self.end(at);
        }
    }

    /// All recorded intervals, in begin order.
    pub fn intervals(&self) -> &[BusyInterval] {
        &self.intervals
    }

    /// Total busy time in `[lo, hi)`, including any still-open interval.
    pub fn busy_within(&self, lo: SimTime, hi: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for iv in &self.intervals {
            total += iv.overlap(lo, hi);
        }
        if let Some(start) = self.open {
            total += BusyInterval { start, end: hi }.overlap(lo, hi);
        }
        total
    }

    /// Fraction of `[lo, hi)` the device was busy, in `[0, 1]`.
    pub fn utilization(&self, lo: SimTime, hi: SimTime) -> f64 {
        let span = hi.since(lo);
        if span == SimDuration::ZERO {
            return 0.0;
        }
        self.busy_within(lo, hi).as_secs_f64() / span.as_secs_f64()
    }
}

/// A utilization time series: one value per fixed-width bin.
#[derive(Debug, Clone)]
pub struct UtilizationSeries {
    /// Bin width.
    pub bin: SimDuration,
    /// Mean utilization (0–1) of the device group in each bin.
    pub values: Vec<f64>,
}
json_struct!(UtilizationSeries { bin, values });

/// Aggregates utilization over a named group of devices (e.g. "cpu" × 28,
/// "gpu" × 4).
#[derive(Debug, Clone, Default)]
pub struct UtilizationTracker {
    devices: Vec<IntervalTrace>,
}
json_struct!(UtilizationTracker { devices });

impl UtilizationTracker {
    /// Tracker for `n` devices, all initially idle.
    pub fn new(n: usize) -> Self {
        UtilizationTracker {
            devices: (0..n).map(|_| IntervalTrace::new()).collect(),
        }
    }

    /// Number of devices tracked.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the tracker has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Mark device `idx` busy from `at`.
    pub fn begin(&mut self, idx: usize, at: SimTime) {
        self.devices[idx].begin(at);
    }

    /// Mark device `idx` idle from `at`.
    pub fn end(&mut self, idx: usize, at: SimTime) {
        self.devices[idx].end(at);
    }

    /// Close all open intervals at `at`.
    pub fn flush(&mut self, at: SimTime) {
        for d in &mut self.devices {
            d.flush(at);
        }
    }

    /// Trace for one device.
    pub fn device(&self, idx: usize) -> &IntervalTrace {
        &self.devices[idx]
    }

    /// Group-mean utilization over `[lo, hi)`, in `[0, 1]`.
    pub fn mean_utilization(&self, lo: SimTime, hi: SimTime) -> f64 {
        if self.devices.is_empty() {
            return 0.0;
        }
        self.devices
            .iter()
            .map(|d| d.utilization(lo, hi))
            .sum::<f64>()
            / self.devices.len() as f64
    }

    /// Group-mean utilization binned into a plottable time series over
    /// `[SimTime::ZERO, end)`.
    pub fn series(&self, end: SimTime, bin: SimDuration) -> UtilizationSeries {
        assert!(bin > SimDuration::ZERO, "bin width must be positive");
        let nbins = (end.as_micros() + bin.as_micros() - 1) / bin.as_micros().max(1);
        let values = (0..nbins)
            .map(|i| {
                let lo = SimTime::from_micros(i * bin.as_micros());
                let hi = SimTime::from_micros(((i + 1) * bin.as_micros()).min(end.as_micros()));
                self.mean_utilization(lo, hi)
            })
            .collect();
        UtilizationSeries { bin, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_micros(s * 1_000_000)
    }

    #[test]
    fn single_interval_utilization() {
        let mut tr = IntervalTrace::new();
        tr.begin(t(2));
        tr.end(t(6));
        assert!((tr.utilization(t(0), t(8)) - 0.5).abs() < 1e-12);
        assert!((tr.utilization(t(2), t(6)) - 1.0).abs() < 1e-12);
        assert_eq!(tr.busy_within(t(0), t(2)), SimDuration::ZERO);
    }

    #[test]
    fn open_interval_counts_toward_busy() {
        let mut tr = IntervalTrace::new();
        tr.begin(t(0));
        assert!((tr.utilization(t(0), t(10)) - 1.0).abs() < 1e-12);
        tr.flush(t(10));
        assert!(!tr.is_busy());
        assert_eq!(tr.intervals().len(), 1);
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn double_begin_panics() {
        let mut tr = IntervalTrace::new();
        tr.begin(t(0));
        tr.begin(t(1));
    }

    #[test]
    fn zero_length_interval_is_dropped() {
        let mut tr = IntervalTrace::new();
        tr.begin(t(3));
        tr.end(t(3));
        assert!(tr.intervals().is_empty());
    }

    #[test]
    fn overlap_clips_to_window() {
        let iv = BusyInterval {
            start: t(5),
            end: t(15),
        };
        assert_eq!(iv.overlap(t(0), t(10)), SimDuration::from_secs(5));
        assert_eq!(iv.overlap(t(10), t(20)), SimDuration::from_secs(5));
        assert_eq!(iv.overlap(t(20), t(30)), SimDuration::ZERO);
        assert_eq!(iv.overlap(t(0), t(30)), SimDuration::from_secs(10));
    }

    #[test]
    fn tracker_means_over_devices() {
        let mut tk = UtilizationTracker::new(2);
        tk.begin(0, t(0));
        tk.end(0, t(10)); // device 0: 100%
                          // device 1: idle
        assert!((tk.mean_utilization(t(0), t(10)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn series_bins_are_correct() {
        let mut tk = UtilizationTracker::new(1);
        tk.begin(0, t(0));
        tk.end(0, t(5));
        let s = tk.series(t(10), SimDuration::from_secs(5));
        assert_eq!(s.values.len(), 2);
        assert!((s.values[0] - 1.0).abs() < 1e-12);
        assert!(s.values[1].abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let tk = UtilizationTracker::new(0);
        assert_eq!(tk.mean_utilization(t(0), t(10)), 0.0);
        assert!(tk.is_empty());
    }
}
