//! Summary statistics used by the experiment harnesses.
//!
//! The paper reports medians with "error bars of half a standard deviation"
//! (Figs. 2 and 3) and net-Δ percentages (Table I). This module provides
//! exactly those aggregations, with well-defined behaviour on empty input.

use impress_json::json_struct;

/// Summary of a sample: count, mean, median, standard deviation, extremes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean (0 for empty input).
    pub mean: f64,
    /// Median (0 for empty input).
    pub median: f64,
    /// Population standard deviation (0 for n < 2).
    pub std_dev: f64,
    /// Minimum (0 for empty input).
    pub min: f64,
    /// Maximum (0 for empty input).
    pub max: f64,
}
json_struct!(Summary {
    n,
    mean,
    median,
    std_dev,
    min,
    max
});

impl Summary {
    /// Summarize a sample. NaNs are filtered out rather than poisoning the
    /// ordering; this matches how the harnesses treat failed trajectories.
    pub fn of(values: &[f64]) -> Summary {
        let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
        if v.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                median: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        };
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        Summary {
            n,
            mean,
            median,
            std_dev: var.sqrt(),
            min: v[0],
            max: v[n - 1],
        }
    }

    /// Half a standard deviation — the paper's error-bar convention.
    pub fn half_std(&self) -> f64 {
        self.std_dev / 2.0
    }
}

/// Linear interpolation quantile (`q` in `[0, 1]`) of a sample.
/// Returns 0 for empty input.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Net change of a metric between the first and last observation, expressed
/// in the metric's own units (the paper's "Net Δ" columns).
pub fn net_delta(series: &[f64]) -> f64 {
    match (series.first(), series.last()) {
        (Some(first), Some(last)) if series.len() >= 2 => last - first,
        _ => 0.0,
    }
}

/// Relative improvement of `ours` over `baseline`, as a percentage — e.g.
/// Table I reports IM-RP's pTM net Δ as "+14.3%" relative to CONT-V.
///
/// For metrics where lower is better (pAE), callers pass the deltas directly;
/// the sign convention is the caller's responsibility.
pub fn relative_improvement_pct(baseline: f64, ours: f64) -> f64 {
    if baseline.abs() < 1e-12 {
        return 0.0;
    }
    (ours - baseline) / baseline.abs() * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn even_length_median_interpolates() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_are_defined() {
        let e = Summary::of(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.median, 0.0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn nans_are_filtered() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.n, 2);
        assert!((s.median - 2.0).abs() < 1e-12);
    }

    #[test]
    fn half_std_matches_paper_convention() {
        let s = Summary::of(&[0.0, 2.0]);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
        assert!((s.half_std() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_endpoints_and_interpolation() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&v, 0.0), 10.0);
        assert_eq!(quantile(&v, 1.0), 40.0);
        assert!((quantile(&v, 0.5) - 25.0).abs() < 1e-12);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn net_delta_first_to_last() {
        assert!((net_delta(&[70.0, 72.0, 75.8]) - 5.8).abs() < 1e-12);
        assert_eq!(net_delta(&[70.0]), 0.0);
        assert_eq!(net_delta(&[]), 0.0);
    }

    #[test]
    fn relative_improvement_matches_table1_style() {
        // Table I: CONT-V pTM Δ 0.28, IM-RP 0.32 → +14.3%
        let pct = relative_improvement_pct(0.28, 0.32);
        assert!((pct - 14.285714).abs() < 1e-3);
        assert_eq!(relative_improvement_pct(0.0, 1.0), 0.0);
    }
}
