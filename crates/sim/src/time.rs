//! Virtual time points and durations.
//!
//! Time is measured in integer microseconds from the start of the simulation.
//! Integer arithmetic keeps event ordering exact: two events scheduled at the
//! same instant are broken by insertion order, never by floating-point noise.

use impress_json::json_struct;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);
json_struct!(SimTime(u64));

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);
json_struct!(SimDuration(u64));

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Raw microseconds since simulation start.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Hours since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3.6e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking so that trace post-processing never underflows.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// Construct from whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000)
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Hours, as a float.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3.6e9
    }

    /// Scale this duration by a non-negative factor (clamped at zero).
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: SimDuration) -> Self {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 3600.0 {
            write!(f, "{:.2}h", s / 3600.0)
        } else if s >= 60.0 {
            write!(f, "{:.2}m", s / 60.0)
        } else {
            write!(f, "{:.3}s", s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_micros(5_000_000);
        let d = SimDuration::from_secs(3);
        assert_eq!((t + d).as_micros(), 8_000_000);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(20);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a).as_micros(), 10);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
    }

    #[test]
    fn negative_and_nan_float_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-4.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn hours_reporting() {
        let d = SimDuration::from_hours(27) + SimDuration::from_mins(42);
        assert!((d.as_hours_f64() - 27.7).abs() < 1e-9);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_hours(2).to_string(), "2.00h");
        assert_eq!(SimDuration::from_mins(2).to_string(), "2.00m");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_add_does_not_wrap() {
        let d = SimDuration::from_micros(u64::MAX);
        assert_eq!(
            d.saturating_add(SimDuration::from_secs(1)).as_micros(),
            u64::MAX
        );
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_secs(1), SimTime::MAX);
    }
}
