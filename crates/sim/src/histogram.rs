//! Fixed-bin histograms for run statistics (task waits, turnarounds,
//! per-iteration metric distributions).

use impress_json::json_struct;

/// A histogram over `[lo, hi)` with uniform bins; values outside the range
/// land in saturating edge bins so nothing is silently dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}
json_struct!(Histogram {
    lo,
    hi,
    counts,
    total
});

impl Histogram {
    /// A histogram over `[lo, hi)` with `bins` uniform bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Record a value. NaNs are ignored (and not counted).
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        let bins = self.counts.len();
        let idx = if value < self.lo {
            0
        } else if value >= self.hi {
            bins - 1
        } else {
            (((value - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Record every value of a slice.
    pub fn record_all(&mut self, values: &[f64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Total recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(bin_lower_edge, count)` pairs.
    pub fn bins(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * i as f64, c))
            .collect()
    }

    /// Fraction of observations at or below `value` (empirical CDF).
    pub fn cdf(&self, value: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let below: u64 = self
            .bins()
            .iter()
            .zip(self.counts.iter())
            .filter(|((edge, _), _)| *edge <= value)
            .map(|(_, &c)| c)
            .sum();
        below as f64 / self.total as f64
    }

    /// Render as horizontal ASCII bars, `width` characters for the modal bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!(
                "{:>10.2} .. {:>10.2} | {bar} {c}\n",
                self.lo + w * i as f64,
                self.lo + w * (i + 1) as f64
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_the_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record_all(&[0.0, 1.9, 2.0, 5.5, 9.99]);
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_saturates_at_edges() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(-5.0);
        h.record(99.0);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record_all(&[1.0, 2.0, 3.0, 8.0]);
        assert!(h.cdf(0.5) <= h.cdf(3.5));
        assert!((h.cdf(10.0) - 1.0).abs() < 1e-12);
        assert_eq!(Histogram::new(0.0, 1.0, 2).cdf(0.5), 0.0);
    }

    #[test]
    fn render_scales_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.record_all(&[0.5, 0.6, 1.5]);
        let text = h.render(10);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].matches('#').count() > lines[1].matches('#').count());
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
