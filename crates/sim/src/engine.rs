//! The discrete-event engine.
//!
//! The engine runs continuation-passing "processes": a process is any closure
//! `FnOnce(&mut Engine)` scheduled at a virtual instant. A closure models a
//! multi-step activity by scheduling its own next step (possibly capturing
//! state) before returning. Combined with [`crate::resource`] wait queues this
//! is sufficient to express pilot bootstraps, task launches, I/O contention,
//! and every other timed behaviour the pilot's simulated backend needs.
//!
//! Determinism: the engine is single-threaded and events fire in
//! `(time, scheduling order)` — see [`crate::event`].

use crate::event::{EventId, EventQueue};
use crate::resource::{ResourceId, ResourcePool};
use crate::time::{SimDuration, SimTime};

/// A continuation scheduled on the engine.
pub type Continuation = Box<dyn FnOnce(&mut Engine)>;

/// Handle to a scheduled continuation; allows cancellation before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessHandle(pub(crate) EventId);

/// The discrete-event simulation engine.
pub struct Engine {
    now: SimTime,
    queue: EventQueue<Continuation>,
    resources: ResourcePool,
    steps: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Create an engine at `t = 0` with no scheduled events.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            resources: ResourcePool::new(),
            steps: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Schedule `f` to run after `delay`.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, f: F) -> ProcessHandle
    where
        F: FnOnce(&mut Engine) + 'static,
    {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedule `f` at an absolute instant. Instants in the past fire at the
    /// current time (never before already-dispatched events).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> ProcessHandle
    where
        F: FnOnce(&mut Engine) + 'static,
    {
        let at = at.max(self.now);
        ProcessHandle(self.queue.schedule(at, Box::new(f)))
    }

    /// Cancel a scheduled continuation. Returns `false` if it already fired
    /// or was already cancelled.
    pub fn cancel(&mut self, handle: ProcessHandle) -> bool {
        self.queue.cancel(handle.0)
    }

    /// Dispatch the next event, if any. Returns `false` when the queue is
    /// exhausted.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now, "event queue went backwards");
                self.now = ev.at;
                self.steps += 1;
                (ev.payload)(self);
                true
            }
            None => false,
        }
    }

    /// Run until no events remain. Returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run until the queue is empty or the next event would fire after
    /// `deadline`. Events *at* the deadline are dispatched.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
        self.now
    }

    /// Time of the earliest pending event, if any — the conservative
    /// lookahead horizon a parallel-DES driver may safely advance to.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Register a counted resource with the given capacity. See
    /// [`crate::resource`] for acquisition semantics.
    pub fn add_resource(&mut self, capacity: u64) -> ResourceId {
        self.resources.add(capacity)
    }

    /// Acquire `amount` units of `res`, running `f` as soon as they are
    /// granted (possibly immediately, at the current instant).
    pub fn acquire<F>(&mut self, res: ResourceId, amount: u64, f: F)
    where
        F: FnOnce(&mut Engine) + 'static,
    {
        if self.resources.try_acquire(res, amount) {
            // Grant at the current instant but *through the queue*, so grant
            // order interleaves deterministically with same-time events.
            self.schedule_at(self.now, f);
        } else {
            self.resources.enqueue_waiter(res, amount, Box::new(f));
        }
    }

    /// Release `amount` units of `res`, waking FIFO waiters whose requests
    /// now fit.
    pub fn release(&mut self, res: ResourceId, amount: u64) {
        let woken = self.resources.release(res, amount);
        for cont in woken {
            self.schedule_at(self.now, cont);
        }
    }

    /// Units of `res` currently available.
    pub fn available(&self, res: ResourceId) -> u64 {
        self.resources.available(res)
    }

    /// Units of `res` currently held by processes.
    pub fn in_use(&self, res: ResourceId) -> u64 {
        self.resources.in_use(res)
    }

    /// Number of processes waiting on `res`.
    pub fn waiters(&self, res: ResourceId) -> usize {
        self.resources.waiters(res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn events_fire_in_order_and_advance_time() {
        let mut eng = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (delay, tag) in [(3u64, "c"), (1, "a"), (2, "b")] {
            let log = log.clone();
            eng.schedule_in(secs(delay), move |e| {
                log.borrow_mut().push((tag, e.now().as_secs_f64() as u64));
            });
        }
        let end = eng.run();
        assert_eq!(*log.borrow(), vec![("a", 1), ("b", 2), ("c", 3)]);
        assert_eq!(end, SimTime::ZERO + secs(3));
    }

    #[test]
    fn chained_continuations_model_multi_step_processes() {
        let mut eng = Engine::new();
        let done = Rc::new(RefCell::new(0u64));
        let done2 = done.clone();
        eng.schedule_in(secs(1), move |e| {
            // step 2 scheduled from inside step 1
            e.schedule_in(secs(4), move |e2| {
                *done2.borrow_mut() = e2.now().as_secs_f64() as u64;
            });
        });
        eng.run();
        assert_eq!(*done.borrow(), 5);
    }

    #[test]
    fn cancellation_prevents_firing() {
        let mut eng = Engine::new();
        let fired = Rc::new(RefCell::new(false));
        let f2 = fired.clone();
        let h = eng.schedule_in(secs(1), move |_| *f2.borrow_mut() = true);
        assert!(eng.cancel(h));
        eng.run();
        assert!(!*fired.borrow());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng = Engine::new();
        let count = Rc::new(RefCell::new(0));
        for i in 1..=10u64 {
            let count = count.clone();
            eng.schedule_in(secs(i), move |_| *count.borrow_mut() += 1);
        }
        eng.run_until(SimTime::ZERO + secs(5));
        assert_eq!(*count.borrow(), 5);
        eng.run();
        assert_eq!(*count.borrow(), 10);
    }

    #[test]
    fn next_event_time_reports_the_horizon() {
        let mut eng = Engine::new();
        assert_eq!(eng.next_event_time(), None);
        let h = eng.schedule_in(secs(3), |_| {});
        eng.schedule_in(secs(7), |_| {});
        assert_eq!(eng.next_event_time(), Some(SimTime::ZERO + secs(3)));
        eng.cancel(h);
        assert_eq!(eng.next_event_time(), Some(SimTime::ZERO + secs(7)));
        eng.run();
        assert_eq!(eng.next_event_time(), None);
    }

    #[test]
    fn resource_acquisition_blocks_until_release() {
        let mut eng = Engine::new();
        let res = eng.add_resource(2);
        let log = Rc::new(RefCell::new(Vec::new()));

        // Two unit holders for 10s each; a third waits until one releases.
        for tag in ["a", "b", "c"] {
            let log = log.clone();
            eng.schedule_at(SimTime::ZERO, move |e| {
                e.acquire(res, 1, move |e| {
                    let at = e.now().as_secs_f64() as u64;
                    log.borrow_mut().push((tag, at));
                    e.schedule_in(secs(10), move |e| e.release(res, 1));
                });
            });
        }
        eng.run();
        assert_eq!(*log.borrow(), vec![("a", 0), ("b", 0), ("c", 10)]);
    }

    #[test]
    fn fifo_waiters_wake_in_request_order() {
        let mut eng = Engine::new();
        let res = eng.add_resource(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..5u32 {
            let log = log.clone();
            eng.schedule_at(SimTime::ZERO, move |e| {
                e.acquire(res, 1, move |e| {
                    log.borrow_mut().push(tag);
                    e.schedule_in(secs(1), move |e| e.release(res, 1));
                });
            });
        }
        eng.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn accounting_tracks_available_and_in_use() {
        let mut eng = Engine::new();
        let res = eng.add_resource(4);
        eng.schedule_at(SimTime::ZERO, move |e| {
            e.acquire(res, 3, move |e| {
                assert_eq!(e.available(res), 1);
                assert_eq!(e.in_use(res), 3);
                e.release(res, 3);
            });
        });
        eng.run();
        assert_eq!(eng.available(res), 4);
        assert_eq!(eng.in_use(res), 0);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut eng = Engine::new();
        let seen = Rc::new(RefCell::new(SimTime::ZERO));
        let seen2 = seen.clone();
        eng.schedule_in(secs(5), move |e| {
            // schedule "in the past" — must fire now, not at t=1
            e.schedule_at(SimTime::ZERO + secs(1), move |e2| {
                *seen2.borrow_mut() = e2.now();
            });
        });
        eng.run();
        assert_eq!(*seen.borrow(), SimTime::ZERO + secs(5));
    }
}
