//! A heap-allocation probe for zero-alloc regression tests.
//!
//! Perf claims like "zero heap allocations per journal record once the
//! buffers are warm" rot silently: one innocent `format!` on the hot path
//! and the claim is false with no test noticing. This module provides a
//! counting [`std::alloc::GlobalAlloc`] wrapper around the system
//! allocator, so a dedicated integration test binary can install it with
//! `#[global_allocator]` and *pin* an allocation count:
//!
//! ```ignore
//! use impress_sim::alloc_probe::CountingAlloc;
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! let (allocs, _) = ALLOC.measure(|| hot_path());
//! assert_eq!(allocs, 0);
//! ```
//!
//! The probe belongs in its own test *binary* (one `#[test]`): the
//! counters are process-global, so concurrent tests in the same binary
//! would bleed allocations into each other's measurements. It lives here
//! (not under `#[cfg(test)]`) because the binaries that consume it are in
//! downstream crates.

// The one place in the workspace that needs `unsafe`: implementing
// `GlobalAlloc` requires it by signature. Every method is a trivial
// forward to `System` plus a relaxed counter bump.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-forwarding allocator that counts every allocation.
///
/// Install as the `#[global_allocator]` of a test binary, then wrap the
/// code under measurement in [`measure`](Self::measure).
pub struct CountingAlloc {
    allocs: AtomicU64,
}

impl CountingAlloc {
    /// A fresh probe (counter at zero). `const` so it can initialize a
    /// `static`.
    pub const fn new() -> Self {
        CountingAlloc {
            allocs: AtomicU64::new(0),
        }
    }

    /// Heap allocations observed so far (allocations and growing
    /// reallocations; frees are not counted — a zero-alloc pin is about
    /// acquiring memory, not returning it).
    pub fn allocations(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Run `f`, returning how many heap allocations it performed along
    /// with its result. Single-threaded measurement discipline is the
    /// caller's job (one `#[test]` per probe binary).
    pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (u64, R) {
        let before = self.allocations();
        let out = f();
        (self.allocations() - before, out)
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc acquires memory (even in place it *may* move), so it
        // counts against a zero-alloc pin: a hot path that grows a buffer
        // per record is not zero-alloc.
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}
