//! Deterministic, forkable random streams.
//!
//! Every stochastic component of the reproduction (landscape construction,
//! surrogate model noise, task duration jitter) draws from a [`SimRng`]
//! derived from a master seed plus a *stream label*. Labelled forking means:
//!
//! * two runs with the same master seed are bit-identical,
//! * adding a new consumer of randomness does not perturb existing streams
//!   (no shared global sequence), and
//! * parallel (threaded-backend) and simulated runs see the same draws.
//!
//! # Stream specification (in-repo, hermetic)
//!
//! The generator is an in-repo ChaCha8 core — **the stream values are
//! defined by this file, not by any external crate**. The spec, fixed for
//! reproducibility of recorded artifacts:
//!
//! * **Seeding** — [`SimRng::from_seed`] expands the `u64` master seed into
//!   32 key bytes with four rounds of SplitMix64 (output words little-endian
//!   concatenated).
//! * **Block function** — ChaCha with 8 rounds (4 double-rounds), constants
//!   `"expa nd 3 2-by te k"`, a 64-bit little-endian block counter in state
//!   words 12–13 and a zero nonce in words 14–15.
//! * **Word stream** — `next_u32` yields the 16 output words of each block
//!   in order; `next_u64` packs two consecutive words little-endian
//!   (low word first).
//! * **Uniform doubles** — `uniform()` is `(next_u64() >> 11) × 2⁻⁵³`,
//!   i.e. 53 mantissa bits in `[0, 1)`.
//! * **Bounded ints** — `below(n)` rejection-samples `next_u64()` against
//!   the largest multiple of `n` to stay exactly unbiased.
//! * **Forking** — [`SimRng::fork`] hashes the label with FNV-1a (64-bit)
//!   and XOR-mixes the hash, rotated by `16·i + 1` bits, into the i-th
//!   parent seed word. [`SimRng::fork_idx`] extends the FNV hash over a
//!   `/` separator byte followed by the index's 8 little-endian bytes —
//!   no intermediate `String` is allocated on this hot path.
//!
//! ChaCha8 was kept (over a cheaper PRNG) because the paper's experiment
//! harnesses already recorded artifacts under a ChaCha-class stream and the
//! statistical quality margin is worth the ~8 rounds per 64 bytes.

use impress_json::json_struct;

/// Number of ChaCha double-rounds (8 rounds total — the "8" in ChaCha8).
const DOUBLE_ROUNDS: usize = 4;

/// The ChaCha constants: `"expand 32-byte k"` as little-endian words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// In-repo ChaCha8 block generator over a 256-bit key, 64-bit counter and
/// zero nonce. Produces the word stream consumed by [`SimRng`].
#[derive(Clone, Debug)]
struct ChaCha8 {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unconsumed word in `buf`; 16 means "refill before reading".
    idx: usize,
}

impl ChaCha8 {
    fn new(seed: &[u8; 32]) -> ChaCha8 {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8 {
            key,
            counter: 0,
            buf: [0u32; 16],
            idx: 16,
        }
    }

    /// The ChaCha quarter-round on four state words.
    #[inline]
    fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    /// Generate the next 16-word block into `buf` and advance the counter.
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] stay zero (nonce).
        let input = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            Self::quarter(&mut state, 0, 4, 8, 12);
            Self::quarter(&mut state, 1, 5, 9, 13);
            Self::quarter(&mut state, 2, 6, 10, 14);
            Self::quarter(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            Self::quarter(&mut state, 0, 5, 10, 15);
            Self::quarter(&mut state, 1, 6, 11, 12);
            Self::quarter(&mut state, 2, 7, 8, 13);
            Self::quarter(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx == 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

/// SplitMix64 step, used only to expand master seeds into key material.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

#[inline]
fn fnv1a_step(h: u64, byte: u8) -> u64 {
    (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME)
}

/// A deterministic random stream.
#[derive(Clone, Debug)]
pub struct SimRng {
    /// The 32 seed bytes this stream was created from (kept for forking:
    /// child derivation must be independent of the parent's read position).
    seed: [u8; 32],
    core: ChaCha8,
}

impl SimRng {
    /// Create a stream from a master seed (SplitMix64-expanded, see the
    /// module docs for the exact spec).
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
        }
        SimRng::from_seed_bytes(bytes)
    }

    fn from_seed_bytes(seed: [u8; 32]) -> Self {
        SimRng {
            seed,
            core: ChaCha8::new(&seed),
        }
    }

    /// Derive an independent child stream identified by `label`.
    ///
    /// The child's seed mixes the parent seed material with an FNV-1a hash
    /// of the label, so sibling streams with different labels never collide
    /// in practice and the derivation is order-independent: forking does not
    /// consume parent randomness, and the same label always yields the same
    /// child regardless of how far the parent stream has been read.
    pub fn fork(&self, label: &str) -> SimRng {
        let mut h = FNV_OFFSET;
        for b in label.bytes() {
            h = fnv1a_step(h, b);
        }
        self.fork_hash(h)
    }

    /// Derive a child stream labelled by an integer index (e.g. replica id).
    ///
    /// The index is folded into the FNV hash directly — a `/` separator
    /// byte followed by the index's 8 little-endian bytes — so replica
    /// spawning (this sits on its hot path) performs no `String` allocation.
    pub fn fork_idx(&self, label: &str, idx: u64) -> SimRng {
        let mut h = FNV_OFFSET;
        for b in label.bytes() {
            h = fnv1a_step(h, b);
        }
        h = fnv1a_step(h, b'/');
        for b in idx.to_le_bytes() {
            h = fnv1a_step(h, b);
        }
        self.fork_hash(h)
    }

    fn fork_hash(&self, h: u64) -> SimRng {
        let mut seed = [0u8; 32];
        for (i, chunk) in seed.chunks_exact_mut(8).enumerate() {
            let parent = u64::from_le_bytes(self.seed[i * 8..i * 8 + 8].try_into().expect("8B"));
            let mixed = parent ^ h.rotate_left((i as u32) * 16 + 1);
            chunk.copy_from_slice(&mixed.to_le_bytes());
        }
        SimRng::from_seed_bytes(seed)
    }

    /// Next 32 raw bits of the stream.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        self.core.next_word()
    }

    /// Next 64 raw bits (two consecutive words, low word first).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.core.next_word());
        let hi = u64::from(self.core.next_word());
        (hi << 32) | lo
    }

    /// Fill `dest` with stream bytes (whole words little-endian; a final
    /// partial word contributes its low-order bytes).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.core.next_word().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.core.next_word().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Uniform draw in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`, exactly unbiased via rejection
    /// sampling. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        let n = n as u64;
        // Largest v such that [0, v] covers a whole number of residue
        // classes mod n; draws above it are rejected (at most one expected
        // retry even in the worst case).
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return (v % n) as usize;
            }
        }
    }

    /// Standard normal draw (Box–Muller; one value per call for simplicity).
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = self.uniform().max(f64::MIN_POSITIVE);
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Log-normal-ish positive jitter: multiplies `base` by `exp(sd * N(0,1))`.
    /// Used for task duration noise.
    pub fn jitter(&mut self, base: f64, sd: f64) -> f64 {
        base * (sd * self.normal()).exp()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Choose a uniformly random element of `slice`. Panics on empty input.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.below(slice.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

/// Snapshot of a stream's identity (its seed material), serialized for
/// trace provenance. Restoring replays the stream from the beginning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RngSeed(pub Vec<u8>);
json_struct!(RngSeed(Vec<u8>));

impl From<&SimRng> for RngSeed {
    fn from(rng: &SimRng) -> RngSeed {
        RngSeed(rng.seed.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Golden values pinning the in-repo stream spec (module docs). If this
    /// test ever fails, the spec changed and every recorded artifact is
    /// invalidated — bump them deliberately, never silently.
    #[test]
    fn stream_spec_is_pinned() {
        let mut rng = SimRng::from_seed(2025);
        let first: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        let mut again = SimRng::from_seed(2025);
        let packed = again.next_u64();
        assert_eq!(
            packed,
            (u64::from(first[1]) << 32) | u64::from(first[0]),
            "next_u64 must pack two words little-endian"
        );
        let mut third = SimRng::from_seed(2025);
        let u = third.uniform();
        assert_eq!(
            u,
            (packed >> 11) as f64 * (1.0 / (1u64 << 53) as f64),
            "uniform must use the top 53 bits of next_u64"
        );
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn chacha_core_is_chacha() {
        // RFC 7539 §2.3.2 test vector, truncated to the quarter-round
        // structure: with an all-zero key and zero counter the block output
        // must differ from the raw input state (diffusion sanity) and be
        // identical across constructions.
        let mut a = ChaCha8::new(&[0u8; 32]);
        let mut b = ChaCha8::new(&[0u8; 32]);
        let wa: Vec<u32> = (0..32).map(|_| a.next_word()).collect();
        let wb: Vec<u32> = (0..32).map(|_| b.next_word()).collect();
        assert_eq!(wa, wb);
        // Two consecutive blocks must differ (counter advanced).
        assert_ne!(&wa[..16], &wa[16..]);
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = SimRng::from_seed(5);
        let mut b = SimRng::from_seed(5);
        let mut bytes = [0u8; 11];
        a.fill_bytes(&mut bytes);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        let w2 = b.next_u32().to_le_bytes();
        let expect: Vec<u8> = w0
            .iter()
            .chain(&w1)
            .chain(&w2[..3])
            .copied()
            .collect();
        assert_eq!(bytes.to_vec(), expect);
    }

    #[test]
    fn different_labels_give_different_streams() {
        let root = SimRng::from_seed(7);
        let mut a = root.fork("mpnn");
        let mut b = root.fork("alphafold");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_independent_of_parent_position() {
        let mut root = SimRng::from_seed(7);
        let before = root.fork("x");
        let _ = root.next_u64(); // advance parent
        let after = root.fork("x");
        let mut b = before;
        let mut a = after;
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_idx_is_deterministic_and_label_sensitive() {
        let root = SimRng::from_seed(11);
        let mut a = root.fork_idx("replica", 3);
        let mut b = root.fork_idx("replica", 3);
        let mut c = root.fork_idx("replica", 4);
        let mut d = root.fork_idx("other", 3);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..8).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs[0], d.next_u64());
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = SimRng::from_seed(1);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn chance_respects_extremes() {
        let mut rng = SimRng::from_seed(3);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::from_seed(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn jitter_is_positive_and_centered() {
        let mut rng = SimRng::from_seed(11);
        let vals: Vec<f64> = (0..5000).map(|_| rng.jitter(10.0, 0.1)).collect();
        assert!(vals.iter().all(|&v| v > 0.0));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn below_covers_full_range() {
        let mut rng = SimRng::from_seed(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = SimRng::from_seed(13);
        let n = 7usize;
        let draws = 70_000;
        let mut counts = vec![0u32; n];
        for _ in 0..draws {
            counts[rng.below(n)] += 1;
        }
        let expect = draws as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i}: {c} vs {expect} (dev {dev:.3})");
        }
    }

    #[test]
    fn rng_seed_snapshot_round_trips() {
        let rng = SimRng::from_seed(99).fork("snapshot");
        let snap = RngSeed::from(&rng);
        let text = impress_json::to_string(&snap);
        let back: RngSeed = impress_json::from_str(&text).expect("reparse");
        assert_eq!(back, snap);
    }
}
