//! Deterministic, forkable random streams.
//!
//! Every stochastic component of the reproduction (landscape construction,
//! surrogate model noise, task duration jitter) draws from a [`SimRng`]
//! derived from a master seed plus a *stream label*. Labelled forking means:
//!
//! * two runs with the same master seed are bit-identical,
//! * adding a new consumer of randomness does not perturb existing streams
//!   (no shared global sequence), and
//! * parallel (threaded-backend) and simulated runs see the same draws.
//!
//! ChaCha8 is used rather than `rand`'s `StdRng` because its output is
//! specified and stable across `rand` versions and platforms.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic random stream.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Create a stream from a master seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream identified by `label`.
    ///
    /// The child's seed mixes the parent seed material with an FNV-1a hash
    /// of the label, so sibling streams with different labels never collide
    /// in practice and the derivation is order-independent.
    pub fn fork(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Mix with the parent's word stream position-independently: use the
        // parent's seed words, not its current position.
        let seed_words = self.inner.get_seed();
        let mut seed = [0u8; 32];
        for (i, chunk) in seed.chunks_mut(8).enumerate() {
            let parent = u64::from_le_bytes(seed_words[i * 8..i * 8 + 8].try_into().unwrap());
            let mixed = parent ^ h.rotate_left((i as u32) * 16 + 1);
            chunk.copy_from_slice(&mixed.to_le_bytes());
        }
        SimRng {
            inner: ChaCha8Rng::from_seed(seed),
        }
    }

    /// Derive a child stream labelled by an integer index (e.g. replica id).
    pub fn fork_idx(&self, label: &str, idx: u64) -> SimRng {
        self.fork(&format!("{label}/{idx}"))
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Standard normal draw (Box–Muller; one value per call for simplicity).
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = self.uniform().max(f64::MIN_POSITIVE);
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Log-normal-ish positive jitter: multiplies `base` by `exp(sd * N(0,1))`.
    /// Used for task duration noise.
    pub fn jitter(&mut self, base: f64, sd: f64) -> f64 {
        base * (sd * self.normal()).exp()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Choose a uniformly random element of `slice`. Panics on empty input.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.below(slice.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_give_different_streams() {
        let root = SimRng::from_seed(7);
        let mut a = root.fork("mpnn");
        let mut b = root.fork("alphafold");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_independent_of_parent_position() {
        let mut root = SimRng::from_seed(7);
        let before = root.fork("x");
        let _ = root.next_u64(); // advance parent
        let after = root.fork("x");
        let mut b = before;
        let mut a = after;
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = SimRng::from_seed(1);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn chance_respects_extremes() {
        let mut rng = SimRng::from_seed(3);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::from_seed(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn jitter_is_positive_and_centered() {
        let mut rng = SimRng::from_seed(11);
        let vals: Vec<f64> = (0..5000).map(|_| rng.jitter(10.0, 0.1)).collect();
        assert!(vals.iter().all(|&v| v > 0.0));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn below_covers_full_range() {
        let mut rng = SimRng::from_seed(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
