//! A fixed-overhead slab arena with `u32` index handles.
//!
//! The hot path of a large discrete-event simulation allocates and frees one
//! record per in-flight activity (a running task attempt, an open span, …)
//! millions of times. Boxing each record — or keying it in a `HashMap` —
//! costs an allocation plus pointer chasing per event. The slab keeps all
//! records in one contiguous `Vec`, recycles vacated slots through an
//! intrusive free list, and hands out plain `u32` handles, so insert/remove
//! are O(1) with zero per-record allocation in steady state.
//!
//! Handles are *not* generation-checked: a [`SlotId`] is valid from
//! [`Slab::insert`] until the matching [`Slab::remove`], after which the slot
//! may be reused. Callers own the discipline of not dereferencing stale
//! handles (the sharded pilot backend, for instance, removes its handle
//! exactly once, when an attempt completes or is evicted).

/// Handle to an occupied slab slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(pub u32);

enum Entry<T> {
    Occupied(T),
    /// Vacant slot; holds the index of the next free slot (`u32::MAX` ends
    /// the list).
    Free(u32),
}

/// A slab arena: contiguous storage, O(1) insert/remove, `u32` handles.
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free_head: u32,
    len: usize,
}

const FREE_END: u32 = u32::MAX;

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free_head: FREE_END,
            len: 0,
        }
    }

    /// An empty slab with room for `cap` records before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(cap),
            free_head: FREE_END,
            len: 0,
        }
    }

    /// Insert a record, reusing a vacated slot when one exists.
    pub fn insert(&mut self, value: T) -> SlotId {
        self.len += 1;
        if self.free_head != FREE_END {
            let idx = self.free_head;
            match self.entries[idx as usize] {
                Entry::Free(next) => self.free_head = next,
                Entry::Occupied(_) => unreachable!("free list points at occupied slot"),
            }
            self.entries[idx as usize] = Entry::Occupied(value);
            SlotId(idx)
        } else {
            let idx = self.entries.len() as u32;
            assert!(idx != FREE_END, "slab full: 2^32 - 1 slots exhausted");
            self.entries.push(Entry::Occupied(value));
            SlotId(idx)
        }
    }

    /// Remove and return the record at `id`.
    ///
    /// # Panics
    /// Panics if `id` is vacant or out of range — that is always a caller
    /// bug (a stale or foreign handle), never a recoverable condition.
    pub fn remove(&mut self, id: SlotId) -> T {
        let slot = &mut self.entries[id.0 as usize];
        match std::mem::replace(slot, Entry::Free(self.free_head)) {
            Entry::Occupied(value) => {
                self.free_head = id.0;
                self.len -= 1;
                value
            }
            Entry::Free(next) => {
                // Undo the replace so the free list is not corrupted, then
                // report the misuse.
                *slot = Entry::Free(next);
                panic!("slab: remove of vacant slot {}", id.0);
            }
        }
    }

    /// Shared access to the record at `id`, if occupied.
    pub fn get(&self, id: SlotId) -> Option<&T> {
        match self.entries.get(id.0 as usize) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Mutable access to the record at `id`, if occupied.
    pub fn get_mut(&mut self, id: SlotId) -> Option<&mut T> {
        match self.entries.get_mut(id.0 as usize) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate occupied slots in index order as `(handle, &record)`.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| match e {
            Entry::Occupied(v) => Some((SlotId(i as u32), v)),
            Entry::Free(_) => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.remove(a), "a");
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(b), Some(&"b"));
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut slab = Slab::new();
        let ids: Vec<_> = (0..4).map(|i| slab.insert(i)).collect();
        slab.remove(ids[1]);
        slab.remove(ids[3]);
        // Most recently freed slot is reused first; backing Vec never grows.
        assert_eq!(slab.insert(30), ids[3]);
        assert_eq!(slab.insert(10), ids[1]);
        assert_eq!(slab.entries.len(), 4);
        assert_eq!(slab.len(), 4);
    }

    #[test]
    fn iter_walks_occupied_slots_in_index_order() {
        let mut slab = Slab::new();
        let ids: Vec<_> = (0..5u32).map(|i| slab.insert(i * 10)).collect();
        slab.remove(ids[2]);
        let seen: Vec<_> = slab.iter().map(|(id, &v)| (id.0, v)).collect();
        assert_eq!(seen, vec![(0, 0), (1, 10), (3, 30), (4, 40)]);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut slab = Slab::new();
        let id = slab.insert(1u64);
        *slab.get_mut(id).unwrap() += 41;
        assert_eq!(slab.get(id), Some(&42));
    }

    #[test]
    #[should_panic(expected = "remove of vacant slot")]
    fn double_remove_panics() {
        let mut slab = Slab::new();
        let id = slab.insert(());
        slab.remove(id);
        slab.remove(id);
    }

    #[test]
    fn empty_and_default() {
        let mut slab: Slab<u8> = Slab::default();
        assert!(slab.is_empty());
        assert_eq!(slab.get(SlotId(7)), None);
        let id = slab.insert(9);
        assert!(!slab.is_empty());
        slab.remove(id);
        assert!(slab.is_empty());
    }
}
