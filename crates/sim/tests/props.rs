//! Property-based tests for the simulation substrate, on the in-repo
//! `props!` harness (see `impress_sim::props`).

use impress_sim::event::EventQueue;
use impress_sim::stats::{net_delta, quantile};
use impress_sim::{prop_assume, props, SimDuration, SimRng, SimTime, Summary};

fn vec_of(rng: &mut SimRng, min_len: usize, max_len: usize, f: impl Fn(&mut SimRng) -> f64) -> Vec<f64> {
    let len = min_len + rng.below(max_len - min_len);
    (0..len).map(|_| f(rng)).collect()
}

props! {
    /// The event queue is a stable priority queue: pops come out sorted by
    /// time, and equal times preserve insertion order.
    fn event_queue_pops_sorted_and_stable(rng) {
        let len = 1 + rng.below(199);
        let times: Vec<u64> = (0..len).map(|_| rng.below(1000) as u64).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut popped = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push((ev.at.as_micros(), ev.payload));
        }
        assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "times out of order");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO violated at equal times");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    fn cancellation_removes_exactly_the_cancelled(rng) {
        let len = 1 + rng.below(99);
        let times: Vec<u64> = (0..len).map(|_| rng.below(100) as u64).collect();
        let cancel_mask: Vec<bool> = (0..len).map(|_| rng.chance(0.5)).collect();
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_micros(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i] {
                q.cancel(*id);
            } else {
                expected.push(i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push(ev.payload);
        }
        popped.sort_unstable();
        expected.sort_unstable();
        assert_eq!(popped, expected);
    }

    /// Summary invariants: min ≤ median ≤ max, min ≤ mean ≤ max, σ ≥ 0, and
    /// the count matches after NaN filtering.
    fn summary_invariants(rng) {
        let values = vec_of(rng, 0, 300, |r| r.uniform_range(-1e6, 1e6));
        let s = Summary::of(&values);
        assert_eq!(s.n, values.len());
        if s.n > 0 {
            assert!(s.min <= s.median + 1e-9);
            assert!(s.median <= s.max + 1e-9);
            assert!(s.min <= s.mean + 1e-9);
            assert!(s.mean <= s.max + 1e-9);
            assert!(s.std_dev >= 0.0);
        }
    }

    /// Quantiles are monotone in q and bounded by the extremes.
    fn quantiles_are_monotone(rng) {
        let values = vec_of(rng, 1, 100, |r| r.uniform_range(-1e3, 1e3));
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let results: Vec<f64> = qs.iter().map(|&q| quantile(&values, q)).collect();
        for w in results.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
        let s = Summary::of(&values);
        assert!((results[0] - s.min).abs() < 1e-9);
        assert!((results[6] - s.max).abs() < 1e-9);
    }

    /// net_delta is antisymmetric under series reversal.
    fn net_delta_antisymmetry(rng) {
        let values = vec_of(rng, 2, 50, |r| r.uniform_range(-1e3, 1e3));
        let fwd = net_delta(&values);
        let mut rev = values.clone();
        rev.reverse();
        assert!((fwd + net_delta(&rev)).abs() < 1e-9);
    }

    /// Forked RNG streams with different labels are uncorrelated (no equal
    /// first draws across a sample of labels), and same labels identical.
    fn rng_fork_label_independence(rng) {
        let seed = rng.next_u64();
        let a = rng.below(5000) as u64;
        let b = rng.below(5000) as u64;
        prop_assume!(a != b);
        let root = SimRng::from_seed(seed);
        let mut fa = root.fork_idx("stream", a);
        let mut fb = root.fork_idx("stream", b);
        let mut fa2 = root.fork_idx("stream", a);
        let xa: Vec<f64> = (0..4).map(|_| fa.uniform()).collect();
        let xb: Vec<f64> = (0..4).map(|_| fb.uniform()).collect();
        let xa2: Vec<f64> = (0..4).map(|_| fa2.uniform()).collect();
        assert_eq!(&xa, &xa2, "same label must replay");
        assert_ne!(&xa, &xb, "different labels must diverge");
    }

    /// `fork` on a string label and `fork_idx` with an index are distinct
    /// derivations: an index stream never collides with its own textual
    /// spelling (the hash covers raw index bytes, not decimal digits).
    fn fork_idx_diverges_from_textual_label(rng) {
        let seed = rng.next_u64();
        let idx = rng.below(100) as u64;
        let root = SimRng::from_seed(seed);
        let mut by_idx = root.fork_idx("s", idx);
        let mut by_text = root.fork(&format!("s/{idx}"));
        let a: Vec<u64> = (0..4).map(|_| by_idx.next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|_| by_text.next_u64()).collect();
        assert_ne!(a, b, "index and text derivations must be independent");
    }

    /// Duration arithmetic: saturating and order-preserving.
    fn duration_arithmetic_props(rng) {
        let a = rng.next_u64() % (u64::MAX / 4);
        let b = rng.next_u64() % (u64::MAX / 4);
        let da = SimDuration::from_micros(a);
        let db = SimDuration::from_micros(b);
        assert_eq!((da + db).as_micros(), a + b);
        assert_eq!((da - db).as_micros(), a.saturating_sub(b));
        let t = SimTime::from_micros(a);
        assert_eq!((t + db) - t, db);
    }

    /// JSON serialization of sim types is self-inverse.
    fn sim_types_round_trip_json(rng) {
        let t = SimTime::from_micros(rng.next_u64());
        let d = SimDuration::from_micros(rng.next_u64());
        let t2: SimTime =
            impress_json::from_str(&impress_json::to_string(&t)).expect("SimTime");
        let d2: SimDuration =
            impress_json::from_str(&impress_json::to_string(&d)).expect("SimDuration");
        assert_eq!(t, t2);
        assert_eq!(d, d2);
        let s = Summary::of(&vec_of(rng, 1, 40, |r| r.uniform_range(-10.0, 10.0)));
        let s2: Summary = impress_json::from_str(&impress_json::to_string(&s)).expect("Summary");
        assert_eq!(s, s2);
    }
}
