//! Property-based tests for the simulation substrate.

use impress_sim::event::EventQueue;
use impress_sim::stats::{net_delta, quantile};
use impress_sim::{SimDuration, SimRng, SimTime, Summary};
use proptest::prelude::*;

proptest! {
    /// The event queue is a stable priority queue: pops come out sorted by
    /// time, and equal times preserve insertion order.
    #[test]
    fn event_queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut popped = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push((ev.at.as_micros(), ev.payload));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "times out of order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at equal times");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in prop::collection::vec(0u64..100, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_micros(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask.get(i).copied().unwrap_or(false) {
                q.cancel(*id);
            } else {
                expected.push(i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push(ev.payload);
        }
        popped.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    /// Summary invariants: min ≤ median ≤ max, min ≤ mean ≤ max, σ ≥ 0, and
    /// the count matches after NaN filtering.
    #[test]
    fn summary_invariants(values in prop::collection::vec(-1e6f64..1e6, 0..300)) {
        let s = Summary::of(&values);
        prop_assert_eq!(s.n, values.len());
        if s.n > 0 {
            prop_assert!(s.min <= s.median + 1e-9);
            prop_assert!(s.median <= s.max + 1e-9);
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.std_dev >= 0.0);
        }
    }

    /// Quantiles are monotone in q and bounded by the extremes.
    #[test]
    fn quantiles_are_monotone(values in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let results: Vec<f64> = qs.iter().map(|&q| quantile(&values, q)).collect();
        for w in results.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
        let s = Summary::of(&values);
        prop_assert!((results[0] - s.min).abs() < 1e-9);
        prop_assert!((results[6] - s.max).abs() < 1e-9);
    }

    /// net_delta is antisymmetric under series reversal.
    #[test]
    fn net_delta_antisymmetry(values in prop::collection::vec(-1e3f64..1e3, 2..50)) {
        let fwd = net_delta(&values);
        let mut rev = values.clone();
        rev.reverse();
        prop_assert!((fwd + net_delta(&rev)).abs() < 1e-9);
    }

    /// Forked RNG streams with different labels are uncorrelated (no equal
    /// first draws across a sample of labels), and same labels identical.
    #[test]
    fn rng_fork_label_independence(seed in any::<u64>(), a in 0u64..5000, b in 0u64..5000) {
        prop_assume!(a != b);
        let root = SimRng::from_seed(seed);
        let mut fa = root.fork_idx("stream", a);
        let mut fb = root.fork_idx("stream", b);
        let mut fa2 = root.fork_idx("stream", a);
        let xa: Vec<f64> = (0..4).map(|_| fa.uniform()).collect();
        let xb: Vec<f64> = (0..4).map(|_| fb.uniform()).collect();
        let xa2: Vec<f64> = (0..4).map(|_| fa2.uniform()).collect();
        prop_assert_eq!(&xa, &xa2, "same label must replay");
        prop_assert_ne!(&xa, &xb, "different labels must diverge");
    }

    /// Duration arithmetic: saturating and order-preserving.
    #[test]
    fn duration_arithmetic_props(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let da = SimDuration::from_micros(a);
        let db = SimDuration::from_micros(b);
        prop_assert_eq!((da + db).as_micros(), a + b);
        prop_assert_eq!((da - db).as_micros(), a.saturating_sub(b));
        let t = SimTime::from_micros(a);
        prop_assert_eq!((t + db) - t, db);
    }
}
