//! The span/event model: what instrumentation points emit into a
//! [`TelemetrySink`](crate::TelemetrySink).

use impress_sim::SimTime;

/// Opaque identifier pairing a span's begin and end records.
///
/// Ids are allocated per [`Telemetry`](crate::Telemetry) handle and exist
/// only to reconstruct the span tree from a flat event stream; they are
/// *never* exported (the Chrome exporter emits self-contained complete
/// events), so two backends recording the same workload in different
/// interleavings still export byte-identical traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "no span" sentinel: used as the parent of root spans, and
    /// returned by span constructors when telemetry is disabled.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the [`SpanId::NONE`] sentinel.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Coarse category a span or instant event belongs to. Categories drive
/// export filtering: virtual-time parity traces keep only the causal
/// categories (everything except [`SpanCat::Scheduler`], whose round
/// structure is backend mechanics, not workload causality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanCat {
    /// Pilot lifecycle (bootstrap, drain).
    Pilot,
    /// Scheduler mechanics: placement rounds, backfill scans.
    Scheduler,
    /// Whole task lifetime, submit → terminal completion.
    Task,
    /// Time spent queued (submit → placement), one per attempt.
    Queue,
    /// One execution attempt (placement → completion/failure).
    Attempt,
    /// Whole pipeline lineage in the coordinator.
    Pipeline,
    /// One pipeline stage (submission → all tasks routed).
    Stage,
    /// An adaptive-decision callback.
    Decision,
    /// Fault injection: node crash/recovery, injected task faults.
    Fault,
    /// Session/coordinator bookkeeping (journal appends, checkpoints).
    Session,
    /// Hedged speculative attempts: duplicate placement, win, loss.
    Hedge,
    /// Poison-task quarantine: poison verdicts, circuit-breaker trips,
    /// shape sheds.
    Quarantine,
    /// Control-plane resilience: heartbeat suspicion/resync, lease
    /// expiries, fenced completions, dedup hits.
    Control,
    /// Multi-tenant campaign service: admissions, campaign lifetimes,
    /// fair-share boosts, preemption sweeps.
    Service,
}

impl SpanCat {
    /// Stable lowercase label used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanCat::Pilot => "pilot",
            SpanCat::Scheduler => "sched",
            SpanCat::Task => "task",
            SpanCat::Queue => "queue",
            SpanCat::Attempt => "attempt",
            SpanCat::Pipeline => "pipeline",
            SpanCat::Stage => "stage",
            SpanCat::Decision => "decision",
            SpanCat::Fault => "fault",
            SpanCat::Session => "session",
            SpanCat::Hedge => "hedge",
            SpanCat::Quarantine => "quarantine",
            SpanCat::Control => "control",
            SpanCat::Service => "service",
        }
    }
}

/// A dual-clock timestamp.
///
/// Every event carries a virtual (simulation) time; events recorded by the
/// threaded backend additionally carry wall-clock microseconds since the
/// backend's epoch. The simulated backend has no wall clock, so `wall` is
/// `None` there — and the virtual-clock exporter ignores `wall` entirely,
/// which is what makes cross-backend byte parity possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    /// Virtual time (exact under the simulated backend; model-derived
    /// under the threaded backend).
    pub virt: SimTime,
    /// Wall-clock microseconds since the backend epoch, when one exists.
    pub wall: Option<u64>,
}

impl Stamp {
    /// A virtual-only stamp (simulated backend, no wall clock).
    pub fn virt(at: SimTime) -> Stamp {
        Stamp { virt: at, wall: None }
    }

    /// A dual-clock stamp (threaded backend).
    pub fn dual(virt: SimTime, wall_micros: u64) -> Stamp {
        Stamp {
            virt,
            wall: Some(wall_micros),
        }
    }
}

/// Small integer key/value pairs attached to spans and instants.
pub type Args = Vec<(&'static str, i64)>;

/// One record in the telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// A span opened.
    Begin {
        /// Id pairing this with its [`TelemetryEvent::End`].
        id: SpanId,
        /// Enclosing span, or [`SpanId::NONE`] for roots.
        parent: SpanId,
        /// Category.
        cat: SpanCat,
        /// Human-readable span name.
        name: String,
        /// Export track (Chrome `tid`): deterministic per entity, e.g.
        /// `10_000 + task id` or `100 + pipeline id`.
        track: i64,
        /// When it opened.
        at: Stamp,
        /// Attached key/value detail.
        args: Args,
    },
    /// A span closed.
    End {
        /// The span being closed.
        id: SpanId,
        /// When it closed.
        at: Stamp,
    },
    /// A point event, optionally attached to an owning span.
    Instant {
        /// Owning span, or [`SpanId::NONE`].
        span: SpanId,
        /// Category.
        cat: SpanCat,
        /// Event name.
        name: String,
        /// Export track (Chrome `tid`).
        track: i64,
        /// When it happened.
        at: Stamp,
        /// Attached key/value detail.
        args: Args,
    },
}

impl TelemetryEvent {
    /// The event's timestamp.
    pub fn stamp(&self) -> Stamp {
        match self {
            TelemetryEvent::Begin { at, .. }
            | TelemetryEvent::End { at, .. }
            | TelemetryEvent::Instant { at, .. } => *at,
        }
    }
}

/// Check the structural span invariants of a recorded stream: every `End`
/// pairs with exactly one earlier `Begin`, no span ends twice, and no child
/// outlives its parent in virtual time (a closed parent implies closed
/// children with `child.end <= parent.end`, and `child.begin >=
/// parent.begin`). Returns a description of the first violation found.
pub fn check_nesting(events: &[TelemetryEvent]) -> Result<(), String> {
    use std::collections::HashMap;
    let mut begins: HashMap<SpanId, (SpanId, SimTime, String)> = HashMap::new();
    let mut ends: HashMap<SpanId, SimTime> = HashMap::new();
    for ev in events {
        match ev {
            TelemetryEvent::Begin {
                id, parent, name, at, ..
            } => {
                if id.is_none() {
                    return Err(format!("span '{name}' begun with the NONE id"));
                }
                if begins.insert(*id, (*parent, at.virt, name.clone())).is_some() {
                    return Err(format!("span {id:?} ('{name}') begun twice"));
                }
            }
            TelemetryEvent::End { id, at } => {
                if !begins.contains_key(id) {
                    return Err(format!("span {id:?} ended without a begin"));
                }
                if ends.insert(*id, at.virt).is_some() {
                    return Err(format!("span {id:?} ended twice"));
                }
            }
            TelemetryEvent::Instant { .. } => {}
        }
    }
    for (id, (parent, begin, name)) in &begins {
        if begin > &ends.get(id).copied().unwrap_or(SimTime::MAX) {
            return Err(format!("span {id:?} ('{name}') ends before it begins"));
        }
        if parent.is_none() {
            continue;
        }
        let Some((_, p_begin, p_name)) = begins.get(parent) else {
            return Err(format!("span {id:?} ('{name}') has an unknown parent"));
        };
        if begin < p_begin {
            return Err(format!(
                "child '{name}' begins at {begin:?}, before parent '{p_name}' at {p_begin:?}"
            ));
        }
        if let Some(p_end) = ends.get(parent) {
            match ends.get(id) {
                None => {
                    return Err(format!(
                        "child '{name}' still open after parent '{p_name}' closed"
                    ));
                }
                Some(end) if end > p_end => {
                    return Err(format!(
                        "child '{name}' outlives parent '{p_name}': {end:?} > {p_end:?}"
                    ));
                }
                Some(_) => {}
            }
        }
    }
    Ok(())
}
