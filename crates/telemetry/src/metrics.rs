//! Live metrics: named counters, gauges and histograms, snapshotted into a
//! deterministic, JSON-serializable [`MetricsSnapshot`].

use impress_json::json_struct;
use impress_sim::Histogram;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// One counter at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Metric name (no prefix; exporters add one).
    pub name: String,
    /// Monotonic total.
    pub value: u64,
}
json_struct!(CounterSample { name, value });

/// One gauge at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Last set value.
    pub value: f64,
}
json_struct!(GaugeSample { name, value });

/// One cumulative histogram bucket: observations `<= le`.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketSample {
    /// Upper bound of the bucket (finite; the implicit `+Inf` bucket is
    /// [`HistogramSample::count`]).
    pub le: f64,
    /// Cumulative count of observations at or below `le`.
    pub count: u64,
}
json_struct!(BucketSample { le, count });

/// One histogram at snapshot time, in Prometheus cumulative-bucket form.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Total observations (the `+Inf` bucket).
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Cumulative finite buckets, ascending `le`.
    pub buckets: Vec<BucketSample>,
}
json_struct!(HistogramSample {
    name,
    count,
    sum,
    buckets
});

/// Point-in-time copy of every live metric, sorted by name — the same
/// run always snapshots in the same order, so serialized snapshots are
/// byte-stable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All counters, name-ascending.
    pub counters: Vec<CounterSample>,
    /// All gauges, name-ascending.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, name-ascending.
    pub histograms: Vec<HistogramSample>,
}
json_struct!(MetricsSnapshot {
    counters,
    gauges,
    histograms
});

impl MetricsSnapshot {
    /// Counter value by name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Gauge value by name, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Histogram sample by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// A histogram cell tracking the running sum alongside the binned counts
/// (Prometheus exposition needs `_sum`, which [`Histogram`] alone does not
/// retain).
///
/// Overflow discipline: `Histogram` saturates out-of-range values into its
/// edge bins, which is right for plotting but wrong for the Prometheus
/// exposition — a value at or above the top bound must appear *only* in the
/// implicit `+Inf` bucket (`count`), never under a finite `le`. The cell
/// therefore routes such values past the binned histogram and counts them in
/// `count`/`sum` alone. NaN observations are dropped entirely, so `count`,
/// `sum`, and the bucket totals can never drift apart.
#[derive(Debug)]
struct HistCell {
    hist: Histogram,
    /// Top bound of the finite bins; observations `>= hi` bypass them.
    hi: f64,
    sum: f64,
    count: u64,
}

impl HistCell {
    fn new(lo: f64, hi: f64, bins: usize) -> Self {
        HistCell {
            hist: Histogram::new(lo, hi, bins),
            hi,
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        if value < self.hi {
            self.hist.record(value);
        }
        self.sum += value;
        self.count += 1;
    }
}

/// Interior-mutable metric registry shared by all clones of one
/// [`Telemetry`](crate::Telemetry) handle. Keys are `&'static str` because
/// metric names are always literals at instrumentation sites; `BTreeMap`
/// keeps snapshots deterministically ordered.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    histograms: Mutex<BTreeMap<&'static str, HistCell>>,
}

impl Metrics {
    pub(crate) fn count(&self, name: &'static str, delta: u64) {
        *self.counters.lock().expect("counter lock").entry(name).or_insert(0) += delta;
    }

    pub(crate) fn gauge(&self, name: &'static str, value: f64) {
        self.gauges.lock().expect("gauge lock").insert(name, value);
    }

    pub(crate) fn observe(&self, name: &'static str, lo: f64, hi: f64, bins: usize, value: f64) {
        self.histograms
            .lock()
            .expect("histogram lock")
            .entry(name)
            .or_insert_with(|| HistCell::new(lo, hi, bins))
            .observe(value);
    }

    /// Record a batch of observations into one histogram under a single
    /// lock acquisition. Hot loops (the sharded simulation backend flushes
    /// a placement round's queue-wait samples in one call) pay one stamp
    /// per batch instead of one per value; since bucket totals are
    /// order-independent, the resulting snapshot is identical to N
    /// individual [`Metrics::observe`] calls.
    pub(crate) fn observe_many(
        &self,
        name: &'static str,
        lo: f64,
        hi: f64,
        bins: usize,
        values: &[f64],
    ) {
        if values.is_empty() {
            return;
        }
        let mut hists = self.histograms.lock().expect("histogram lock");
        let cell = hists
            .entry(name)
            .or_insert_with(|| HistCell::new(lo, hi, bins));
        for &value in values {
            cell.observe(value);
        }
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter lock")
            .iter()
            .map(|(&name, &value)| CounterSample {
                name: name.to_string(),
                value,
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge lock")
            .iter()
            .map(|(&name, &value)| GaugeSample {
                name: name.to_string(),
                value,
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram lock")
            .iter()
            .map(|(&name, cell)| {
                let mut cum = 0u64;
                let width = {
                    let bins = cell.hist.bins();
                    bins.get(1).map(|(e, _)| e - bins[0].0).unwrap_or(0.0)
                };
                let buckets = cell
                    .hist
                    .bins()
                    .iter()
                    .map(|&(lower, c)| {
                        cum += c;
                        BucketSample {
                            le: lower + width,
                            count: cum,
                        }
                    })
                    .collect();
                HistogramSample {
                    name: name.to_string(),
                    count: cell.count,
                    sum: cell.sum,
                    buckets,
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}
