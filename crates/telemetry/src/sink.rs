//! Event collection: the [`TelemetrySink`] trait, the no-op [`NullSink`]
//! and the fixed-capacity [`RingSink`] with its [`TraceRecorder`] drain
//! handle.

use crate::chrome::{chrome_trace, TraceClock};
use crate::event::TelemetryEvent;
use impress_json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Where recorded events go. Implementations must be cheap enough to sit
/// on the backend hot path; the disabled path never reaches a sink at all
/// (the [`Telemetry`](crate::Telemetry) handle short-circuits on a cached
/// flag before any event is even constructed).
pub trait TelemetrySink: Send + Sync {
    /// Whether this sink wants events. A `false` here disables the whole
    /// handle at construction time.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Accept one event.
    fn record(&self, event: TelemetryEvent);
}

/// A sink that drops everything; [`Telemetry`](crate::Telemetry) handles
/// built over it behave exactly like disabled handles.
#[derive(Debug, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TelemetryEvent) {}
}

/// Fixed-capacity in-memory ring buffer. When full, the oldest event is
/// dropped and counted — recording never blocks and never grows without
/// bound.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buffer: Mutex<VecDeque<TelemetryEvent>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (at least one).
    pub fn new(capacity: usize) -> RingSink {
        let capacity = capacity.max(1);
        RingSink {
            capacity,
            buffer: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.buffer.lock().expect("ring lock").iter().cloned().collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.buffer.lock().expect("ring lock").len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl TelemetrySink for RingSink {
    fn record(&self, event: TelemetryEvent) {
        let mut buf = self.buffer.lock().expect("ring lock");
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event);
    }
}

/// Drain-side handle to a recording ring, returned by
/// [`Telemetry::recording`](crate::Telemetry::recording). Clone of the same
/// `Arc` the telemetry handle writes into, so it observes everything the
/// instrumented run recorded.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    pub(crate) ring: Arc<RingSink>,
}

impl TraceRecorder {
    /// Snapshot of the recorded events, oldest first.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.ring.events()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// How many events were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Export everything recorded so far as a Chrome trace document.
    pub fn chrome_trace(&self, clock: TraceClock) -> Json {
        chrome_trace(&self.events(), clock)
    }
}
