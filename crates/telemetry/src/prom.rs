//! Prometheus-style text exposition of a [`MetricsSnapshot`].

use crate::metrics::MetricsSnapshot;
use std::fmt::Write as _;

/// Render a snapshot in the Prometheus text exposition format (version
/// 0.0.4): `# TYPE` headers, `impress_`-prefixed metric names, histograms
/// as cumulative `_bucket{le=...}` series with `_sum`/`_count`. Output is
/// deterministic because snapshots are name-sorted.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    prometheus_text_into(&mut out, snapshot);
    out
}

/// [`prometheus_text`] into a caller-supplied (typically reused) buffer —
/// the zero-alloc-once-warm variant for scrape loops that render every
/// poll interval.
pub fn prometheus_text_into(out: &mut String, snapshot: &MetricsSnapshot) {
    for c in &snapshot.counters {
        let _ = writeln!(out, "# TYPE impress_{} counter", c.name);
        let _ = writeln!(out, "impress_{} {}", c.name, c.value);
    }
    for g in &snapshot.gauges {
        let _ = writeln!(out, "# TYPE impress_{} gauge", g.name);
        let _ = writeln!(out, "impress_{} {}", g.name, g.value);
    }
    for h in &snapshot.histograms {
        let _ = writeln!(out, "# TYPE impress_{} histogram", h.name);
        for b in &h.buckets {
            let _ = writeln!(out, "impress_{}_bucket{{le=\"{}\"}} {}", h.name, b.le, b.count);
        }
        let _ = writeln!(out, "impress_{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
        let _ = writeln!(out, "impress_{}_sum {}", h.name, h.sum);
        let _ = writeln!(out, "impress_{}_count {}", h.name, h.count);
    }
}
