//! Span tracing, live metrics and trace export for the IMPRESS stack.
//!
//! This crate is the observability layer the execution backends, session,
//! scheduler and coordinator are instrumented with:
//!
//! * **Spans** ([`SpanId`], [`SpanCat`], [`TelemetryEvent`]) — begin/end
//!   pairs with dual-clock [`Stamp`]s: every event carries virtual
//!   (simulation) time, and events from the threaded backend additionally
//!   carry wall-clock micros.
//! * **Sinks** ([`TelemetrySink`]) — collection goes through a
//!   fixed-capacity [`RingSink`] ring buffer; the disabled path is a
//!   cached boolean check on the [`Telemetry`] handle, cheap enough to
//!   leave in release hot paths.
//! * **Metrics** — named counters, gauges and histograms (reusing
//!   [`impress_sim::Histogram`]), snapshotted deterministically into a
//!   [`MetricsSnapshot`].
//! * **Exporters** — Chrome trace-event JSON ([`chrome_trace`], loadable
//!   in Perfetto) and Prometheus text exposition ([`prometheus_text`]).
//!
//! The export contract that makes cross-backend testing possible: the
//! Chrome exporter emits structurally canonical documents (no span ids,
//! deterministic sort), so identical seeded workloads recorded on the
//! simulated and threaded backends export **byte-identical** virtual-time
//! traces whenever their virtual timestamps agree.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod chrome;
mod event;
mod metrics;
mod prom;
mod sink;

pub use chrome::{
    chrome_trace, chrome_trace_filtered, write_chrome_trace, write_chrome_trace_filtered,
    TraceClock,
};
pub use event::{check_nesting, Args, SpanCat, SpanId, Stamp, TelemetryEvent};
pub use metrics::{BucketSample, CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
pub use prom::{prometheus_text, prometheus_text_into};
pub use sink::{NullSink, RingSink, TelemetrySink, TraceRecorder};

use metrics::Metrics;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Deterministic export-track (Chrome `tid`) numbering shared by every
/// instrumentation site. Tracks are a pure function of the entity — never
/// of recording order — so traces from different backends line up.
pub mod track {
    /// Pilot/runtime lifecycle events (bootstrap, drain).
    pub const PILOT: i64 = 1;
    /// Scheduler mechanics (placement rounds).
    pub const SCHED: i64 = 2;
    /// Fault injection (node crash/recover).
    pub const FAULT: i64 = 3;
    /// Session/coordinator bookkeeping (journal, decisions).
    pub const SESSION: i64 = 4;

    /// The per-task track.
    pub fn task(id: u64) -> i64 {
        10_000 + id as i64
    }

    /// The per-pipeline track.
    pub fn pipeline(id: u64) -> i64 {
        100 + id as i64
    }

    /// The per-campaign track (multi-tenant campaign service).
    pub fn campaign(id: u64) -> i64 {
        1_000_000 + id as i64
    }
}

/// Shared state behind an enabled handle.
struct Inner {
    sink: Arc<dyn TelemetrySink>,
    next_span: AtomicU64,
    metrics: Metrics,
}

/// The instrumentation handle threaded through backends, sessions and the
/// coordinator. Cloning is cheap (an `Arc` bump) and all clones share one
/// sink, span-id allocator and metric registry.
///
/// A disabled handle (the default everywhere) carries no allocation at
/// all: every recording method first checks a cached boolean and returns
/// immediately, so the telemetry-off fast path costs one predictable
/// branch per call site.
#[derive(Clone)]
pub struct Telemetry {
    on: bool,
    inner: Option<Arc<Inner>>,
}

/// The process-wide disabled handle, usable as a `&'static` default.
static DISABLED: Telemetry = Telemetry {
    on: false,
    inner: None,
};

/// A `&'static` reference to the disabled handle, for trait defaults that
/// must hand out `&Telemetry` without owning one.
pub fn disabled_ref() -> &'static Telemetry {
    &DISABLED
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("on", &self.on).finish()
    }
}

impl Telemetry {
    /// The no-op handle: nothing is recorded, nothing is allocated.
    pub fn disabled() -> Telemetry {
        DISABLED.clone()
    }

    /// A handle writing into `sink`. If the sink reports itself disabled
    /// (like [`NullSink`]), the handle behaves exactly like
    /// [`Telemetry::disabled`].
    pub fn with_sink(sink: Arc<dyn TelemetrySink>) -> Telemetry {
        let on = sink.is_enabled();
        Telemetry {
            on,
            inner: Some(Arc::new(Inner {
                sink,
                next_span: AtomicU64::new(1),
                metrics: Metrics::default(),
            })),
        }
    }

    /// A handle recording into a fresh [`RingSink`] of `capacity` events,
    /// plus the [`TraceRecorder`] that drains and exports it.
    pub fn recording(capacity: usize) -> (Telemetry, TraceRecorder) {
        let ring = Arc::new(RingSink::new(capacity));
        let recorder = TraceRecorder { ring: ring.clone() };
        (Telemetry::with_sink(ring), recorder)
    }

    /// Whether events will actually be recorded. Instrumentation sites may
    /// use this to skip building expensive arguments.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// Open a span. Returns [`SpanId::NONE`] (and records nothing) when
    /// disabled.
    pub fn span(
        &self,
        cat: SpanCat,
        name: &str,
        parent: SpanId,
        track: i64,
        at: Stamp,
        args: &[(&'static str, i64)],
    ) -> SpanId {
        let Some(inner) = self.active() else {
            return SpanId::NONE;
        };
        let id = SpanId(inner.next_span.fetch_add(1, Ordering::Relaxed));
        inner.sink.record(TelemetryEvent::Begin {
            id,
            parent,
            cat,
            name: name.to_string(),
            track,
            at,
            args: args.to_vec(),
        });
        id
    }

    /// Close a span opened by [`Telemetry::span`]. No-op when disabled or
    /// when `id` is [`SpanId::NONE`].
    pub fn end(&self, id: SpanId, at: Stamp) {
        if id.is_none() {
            return;
        }
        if let Some(inner) = self.active() {
            inner.sink.record(TelemetryEvent::End { id, at });
        }
    }

    /// Record a point event, optionally attached to an owning span.
    pub fn instant(
        &self,
        cat: SpanCat,
        name: &str,
        span: SpanId,
        track: i64,
        at: Stamp,
        args: &[(&'static str, i64)],
    ) {
        if let Some(inner) = self.active() {
            inner.sink.record(TelemetryEvent::Instant {
                span,
                cat,
                name: name.to_string(),
                track,
                at,
                args: args.to_vec(),
            });
        }
    }

    /// Add `delta` to a monotonic counter.
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(inner) = self.active() {
            inner.metrics.count(name, delta);
        }
    }

    /// Set a gauge to its current value.
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(inner) = self.active() {
            inner.metrics.gauge(name, value);
        }
    }

    /// Record one observation into a histogram over `[lo, hi)` with
    /// `bins` uniform bins (the bounds apply on first use of `name`).
    pub fn observe(&self, name: &'static str, lo: f64, hi: f64, bins: usize, value: f64) {
        if let Some(inner) = self.active() {
            inner.metrics.observe(name, lo, hi, bins, value);
        }
    }

    /// Record a batch of observations into one histogram in a single
    /// stamp: one enabled-check and one registry lock for the whole slice,
    /// instead of one per value. Because bucket totals are
    /// order-independent, the resulting snapshot is identical to calling
    /// [`Telemetry::observe`] once per value — hot loops (the sharded
    /// simulation backend buffers a placement round's queue-wait samples)
    /// batch their stamps without changing what is measured.
    pub fn observe_many(
        &self,
        name: &'static str,
        lo: f64,
        hi: f64,
        bins: usize,
        values: &[f64],
    ) {
        if let Some(inner) = self.active() {
            inner.metrics.observe_many(name, lo, hi, bins, values);
        }
    }

    /// Point-in-time copy of every live metric (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match self.active() {
            Some(inner) => inner.metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    #[inline]
    fn active(&self) -> Option<&Inner> {
        if !self.on {
            return None;
        }
        self.inner.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_sim::SimTime;

    fn t(s: u64) -> Stamp {
        Stamp::virt(SimTime::from_micros(s * 1_000_000))
    }

    #[test]
    fn disabled_handle_records_nothing_and_returns_none_ids() {
        let tele = Telemetry::disabled();
        assert!(!tele.enabled());
        let id = tele.span(SpanCat::Task, "t", SpanId::NONE, 1, t(0), &[]);
        assert!(id.is_none());
        tele.end(id, t(1));
        tele.count("x", 1);
        tele.observe("h", 0.0, 1.0, 4, 0.5);
        assert_eq!(tele.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn null_sink_behaves_like_disabled() {
        let tele = Telemetry::with_sink(Arc::new(NullSink));
        assert!(!tele.enabled());
        assert!(tele
            .span(SpanCat::Task, "t", SpanId::NONE, 1, t(0), &[])
            .is_none());
    }

    #[test]
    fn recording_captures_spans_instants_and_metrics() {
        let (tele, rec) = Telemetry::recording(16);
        assert!(tele.enabled());
        let a = tele.span(SpanCat::Task, "a", SpanId::NONE, 1, t(0), &[("k", 7)]);
        let b = tele.span(SpanCat::Queue, "b", a, 1, t(0), &[]);
        tele.instant(SpanCat::Fault, "boom", b, 1, t(1), &[]);
        tele.end(b, t(2));
        tele.end(a, t(3));
        tele.count("n", 2);
        tele.count("n", 3);
        tele.gauge("g", 1.5);
        tele.observe("h", 0.0, 10.0, 5, 3.0);
        tele.observe("h", 0.0, 10.0, 5, 30.0);

        let events = rec.events();
        assert_eq!(events.len(), 5);
        check_nesting(&events).expect("well-nested");
        let snap = tele.snapshot();
        assert_eq!(snap.counter("n"), Some(5));
        assert_eq!(snap.gauge("g"), Some(1.5));
        let h = snap.histogram("h").expect("histogram");
        assert_eq!(h.count, 2, "the +Inf bucket counts every observation");
        assert_eq!(h.sum, 33.0);
        assert_eq!(
            h.buckets.last().map(|b| b.count),
            Some(1),
            "30.0 is above the top bound: +Inf only, never a finite bucket"
        );
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let (tele, rec) = Telemetry::recording(2);
        for i in 0..5 {
            tele.instant(SpanCat::Session, &format!("e{i}"), SpanId::NONE, 1, t(i), &[]);
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn nesting_violations_are_detected() {
        let (tele, rec) = Telemetry::recording(16);
        let a = tele.span(SpanCat::Task, "parent", SpanId::NONE, 1, t(0), &[]);
        let b = tele.span(SpanCat::Queue, "child", a, 1, t(1), &[]);
        tele.end(a, t(2));
        tele.end(b, t(5)); // child outlives parent
        let err = check_nesting(&rec.events()).unwrap_err();
        assert!(err.contains("outlives"), "{err}");
    }

    #[test]
    fn chrome_export_is_recording_order_independent() {
        // The same two spans recorded in opposite orders (with different
        // span ids) must export byte-identically.
        let render = |flip: bool| {
            let (tele, rec) = Telemetry::recording(16);
            let open = |name: &str| {
                let id = tele.span(SpanCat::Task, name, SpanId::NONE, 42, t(1), &[("i", 9)]);
                tele.end(id, t(4));
            };
            if flip {
                open("beta");
                open("alpha");
            } else {
                open("alpha");
                open("beta");
            }
            impress_json::to_string(&rec.chrome_trace(TraceClock::Virtual))
        };
        assert_eq!(render(false), render(true));
    }

    #[test]
    fn streaming_chrome_export_matches_the_tree_path_byte_for_byte() {
        let (tele, rec) = Telemetry::recording(64);
        let a = tele.span(
            SpanCat::Pipeline,
            "pipe \"0\"",
            SpanId::NONE,
            3,
            t(1),
            &[("pipeline", 0)],
        );
        let b = tele.span(SpanCat::Stage, "stage", a, 3, t(2), &[("tasks", 4)]);
        tele.instant(SpanCat::Fault, "task-retried", b, 3, t(3), &[("attempts", 2)]);
        tele.end(b, t(6));
        tele.end(a, t(9));
        tele.span(SpanCat::Task, "unclosed", SpanId::NONE, 7, t(4), &[]);
        let events = rec.events();
        for clock in [TraceClock::Virtual, TraceClock::Wall] {
            let tree = impress_json::to_string(&chrome_trace(&events, clock));
            let mut streamed = String::new();
            write_chrome_trace(&mut streamed, &events, clock);
            assert_eq!(streamed, tree, "fast path diverged ({clock:?})");
        }
        // The filtered variants agree too (and actually filter).
        let keep = |c: SpanCat| c != SpanCat::Task;
        let tree = impress_json::to_string(&chrome_trace_filtered(
            &events,
            TraceClock::Virtual,
            keep,
        ));
        let mut streamed = String::new();
        write_chrome_trace_filtered(&mut streamed, &events, TraceClock::Virtual, keep);
        assert_eq!(streamed, tree);
        assert!(!streamed.contains("unclosed"));
    }

    #[test]
    fn wall_clock_export_uses_wall_stamps() {
        let (tele, rec) = Telemetry::recording(16);
        let id = tele.span(
            SpanCat::Attempt,
            "a",
            SpanId::NONE,
            1,
            Stamp::dual(SimTime::from_micros(100), 7),
            &[],
        );
        tele.end(id, Stamp::dual(SimTime::from_micros(200), 19));
        let doc = rec.chrome_trace(TraceClock::Wall);
        let ev = doc.get("traceEvents").and_then(|e| e.idx(0)).expect("event");
        assert_eq!(ev.get("ts").and_then(|v| v.as_f64()), Some(7.0));
        assert_eq!(ev.get("dur").and_then(|v| v.as_f64()), Some(12.0));
        assert_eq!(
            ev.get("args").and_then(|a| a.get("vt_us")).and_then(|v| v.as_f64()),
            Some(100.0)
        );
    }

    /// Golden exposition-format test for the histogram overflow bucket:
    /// finite buckets are cumulative, values at or above the top bound land
    /// only in `+Inf`, values below the bottom bound land in the first
    /// bucket (still cumulative-correct), and NaN observations vanish
    /// entirely instead of drifting `_count` away from the buckets.
    #[test]
    fn prometheus_histogram_overflow_lands_only_in_inf_bucket() {
        let (tele, _rec) = Telemetry::recording(4);
        for v in [0.5, 3.0, 9.5, 10.0, 25.0, -1.0, f64::NAN] {
            tele.observe("lat", 0.0, 10.0, 5, v);
        }
        let text = prometheus_text(&tele.snapshot());
        let expected = "\
# TYPE impress_lat histogram
impress_lat_bucket{le=\"2\"} 2
impress_lat_bucket{le=\"4\"} 3
impress_lat_bucket{le=\"6\"} 3
impress_lat_bucket{le=\"8\"} 3
impress_lat_bucket{le=\"10\"} 4
impress_lat_bucket{le=\"+Inf\"} 6
impress_lat_sum 47
impress_lat_count 6
";
        assert_eq!(text, expected);
    }

    #[test]
    fn observe_many_matches_individual_observes_exactly() {
        let values = [0.25, 7.5, 10.0, 99.0, -3.0, 5.0];
        let (batched, _r1) = Telemetry::recording(4);
        batched.observe_many("h", 0.0, 10.0, 4, &values);
        batched.observe_many("h", 0.0, 10.0, 4, &[]);
        let (single, _r2) = Telemetry::recording(4);
        for v in values {
            single.observe("h", 0.0, 10.0, 4, v);
        }
        assert_eq!(batched.snapshot(), single.snapshot());
        // Disabled handles ignore batches just like single observations.
        let off = Telemetry::disabled();
        off.observe_many("h", 0.0, 10.0, 4, &values);
        assert_eq!(off.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn prometheus_exposition_renders_all_metric_kinds() {
        let (tele, _rec) = Telemetry::recording(4);
        tele.count("tasks_submitted", 3);
        tele.gauge("queue_depth", 2.0);
        tele.observe("wait_seconds", 0.0, 10.0, 2, 4.0);
        let text = prometheus_text(&tele.snapshot());
        assert!(text.contains("# TYPE impress_tasks_submitted counter"));
        assert!(text.contains("impress_tasks_submitted 3"));
        assert!(text.contains("impress_queue_depth 2"));
        assert!(text.contains("impress_wait_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("impress_wait_seconds_sum 4"));
    }
}
