//! Chrome trace-event JSON export (loadable in `about://tracing` and
//! Perfetto).
//!
//! The exporter is deliberately *structural*: spans become self-contained
//! `"X"` (complete) events carrying `(ts, dur, tid, cat, name, args)` and
//! no span ids, and the event list is canonically sorted by exactly those
//! fields. Two recordings of the same workload that interleaved
//! differently — the simulated backend coalesces a submit burst into one
//! placement scan while the threaded backend interleaves placement rounds
//! between `Submit` messages, so both recording order *and* span-id
//! allocation order differ between backends — still export byte-identical
//! documents whenever their timestamps and span structure agree.

use crate::event::{SpanCat, SpanId, Stamp, TelemetryEvent};
use impress_json::Json;
use std::collections::HashMap;

/// Which clock drives the exported `ts`/`dur` fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceClock {
    /// Virtual (simulation) time. Wall stamps are ignored entirely, which
    /// is what makes cross-backend byte parity possible.
    Virtual,
    /// Wall-clock time where available (threaded backend), with the
    /// virtual stamp attached as a `vt_us` arg; events without a wall
    /// stamp fall back to their virtual time.
    Wall,
}

/// One flattened trace row, pre-render.
struct Row {
    ts: u64,
    /// `None` for instants, `Some(dur)` for complete events.
    dur: Option<u64>,
    tid: i64,
    cat: SpanCat,
    name: String,
    args: Vec<(&'static str, i64)>,
}

fn timestamp(at: Stamp, clock: TraceClock) -> u64 {
    match clock {
        TraceClock::Virtual => at.virt.as_micros(),
        TraceClock::Wall => at.wall.unwrap_or(at.virt.as_micros()),
    }
}

/// Export every event as a Chrome trace document.
pub fn chrome_trace(events: &[TelemetryEvent], clock: TraceClock) -> Json {
    chrome_trace_filtered(events, clock, |_| true)
}

/// Export only events whose category passes `keep`. The virtual-time
/// parity contract uses this to exclude [`SpanCat::Scheduler`] rounds,
/// whose count and shape are backend mechanics rather than workload
/// causality.
pub fn chrome_trace_filtered(
    events: &[TelemetryEvent],
    clock: TraceClock,
    keep: impl Fn(SpanCat) -> bool,
) -> Json {
    let rows = collect_rows(events, clock, keep);
    let trace_events: Vec<Json> = rows
        .iter()
        .map(|row| {
            let mut obj = Json::object()
                .field("name", &row.name)
                .field("cat", row.cat.as_str())
                .field("ph", if row.dur.is_some() { "X" } else { "i" })
                .field("ts", row.ts)
                .field("pid", 1u64)
                .field("tid", row.tid);
            if let Some(dur) = row.dur {
                obj = obj.field("dur", dur);
            } else {
                obj = obj.field("s", "t");
            }
            let mut args = Json::object();
            for (k, v) in &row.args {
                args = args.field(k, *v);
            }
            obj.field("args", args.build()).build()
        })
        .collect();

    Json::object()
        .field("traceEvents", Json::Array(trace_events))
        .field("displayTimeUnit", "ms")
        .build()
}

/// Render the compact-JSON trace document straight into `out` — the
/// [`ToJsonBuf`](impress_json::ToJsonBuf)-style fast path. The bytes are
/// identical to `impress_json::to_string(&chrome_trace(events, clock))`
/// without materializing the intermediate [`Json`] tree (one small object
/// per span adds up: trace documents reach hundreds of kilobytes).
pub fn write_chrome_trace(out: &mut String, events: &[TelemetryEvent], clock: TraceClock) {
    write_chrome_trace_filtered(out, events, clock, |_| true)
}

/// [`write_chrome_trace`] restricted to categories passing `keep`; byte
/// parity with [`chrome_trace_filtered`] rendered compactly.
pub fn write_chrome_trace_filtered(
    out: &mut String,
    events: &[TelemetryEvent],
    clock: TraceClock,
    keep: impl Fn(SpanCat) -> bool,
) {
    let rows = collect_rows(events, clock, keep);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for row in &rows {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str("{\"name\":");
        impress_json::write_json(out, &row.name);
        out.push_str(",\"cat\":");
        impress_json::write_json(out, &row.cat.as_str());
        out.push_str(",\"ph\":");
        out.push_str(if row.dur.is_some() { "\"X\"" } else { "\"i\"" });
        out.push_str(",\"ts\":");
        impress_json::write_json(out, &row.ts);
        out.push_str(",\"pid\":1,\"tid\":");
        impress_json::write_json(out, &row.tid);
        match row.dur {
            Some(dur) => {
                out.push_str(",\"dur\":");
                impress_json::write_json(out, &dur);
            }
            None => out.push_str(",\"s\":\"t\""),
        }
        out.push_str(",\"args\":{");
        let mut first_arg = true;
        for (k, v) in &row.args {
            if !std::mem::take(&mut first_arg) {
                out.push(',');
            }
            impress_json::write_json(out, k);
            out.push(':');
            impress_json::write_json(out, v);
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
}

/// Flatten, filter and canonically sort the events into render-ready rows
/// (shared by the tree and streaming renderers).
fn collect_rows(
    events: &[TelemetryEvent],
    clock: TraceClock,
    keep: impl Fn(SpanCat) -> bool,
) -> Vec<Row> {
    // Pair Begin/End by id, then forget the ids.
    let mut ends: HashMap<SpanId, Stamp> = HashMap::new();
    for ev in events {
        if let TelemetryEvent::End { id, at } = ev {
            ends.insert(*id, *at);
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    for ev in events {
        match ev {
            TelemetryEvent::Begin {
                id,
                cat,
                name,
                track,
                at,
                args,
                ..
            } => {
                if !keep(*cat) {
                    continue;
                }
                let ts = timestamp(*at, clock);
                let mut args = args.clone();
                let dur = match ends.get(id) {
                    Some(end) => timestamp(*end, clock).saturating_sub(ts),
                    None => {
                        // Still-open span (e.g. the ring evicted its End):
                        // export as zero-length and say so.
                        args.push(("unclosed", 1));
                        0
                    }
                };
                if clock == TraceClock::Wall {
                    args.push(("vt_us", at.virt.as_micros() as i64));
                }
                rows.push(Row {
                    ts,
                    dur: Some(dur),
                    tid: *track,
                    cat: *cat,
                    name: name.clone(),
                    args,
                });
            }
            TelemetryEvent::End { .. } => {}
            TelemetryEvent::Instant {
                cat,
                name,
                track,
                at,
                args,
                ..
            } => {
                if !keep(*cat) {
                    continue;
                }
                let mut args = args.clone();
                if clock == TraceClock::Wall {
                    args.push(("vt_us", at.virt.as_micros() as i64));
                }
                rows.push(Row {
                    ts: timestamp(*at, clock),
                    dur: None,
                    tid: *track,
                    cat: *cat,
                    name: name.clone(),
                    args,
                });
            }
        }
    }

    // Canonical order: time, then longest-first so parents precede
    // children at equal begin stamps (instants last), then track,
    // category, name and args as total tie-breakers. The sort key is the
    // full rendered content, so equal keys mean identical rows and the
    // output is independent of recording order.
    rows.sort_by(|a, b| {
        (a.ts, std::cmp::Reverse(a.dur), a.tid, a.cat, &a.name, &a.args).cmp(&(
            b.ts,
            std::cmp::Reverse(b.dur),
            b.tid,
            b.cat,
            &b.name,
            &b.args,
        ))
    });
    rows
}
