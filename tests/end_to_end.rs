//! End-to-end integration tests: the full stack (landscape → surrogates →
//! pilot → coordinator → protocol) exercised the way the paper's experiments
//! use it, with the claims of §III asserted as invariants.

use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::{run_cont_v_experiment, run_imrp};
use impress_core::{ProtocolConfig, Table1Row};
use impress_proteins::datasets::named_pdz_domains;
use impress_proteins::MetricKind;

/// Pinned seed for the strict paper-shape tests below. Every-iteration
/// dominance across all four metrics is a *noisy* claim (it holds for
/// roughly a third of seeds, as in any single-run comparison of stochastic
/// protocols), so these tests pin a seed where the paper's single run is
/// reproduced. Re-derived for the in-repo ChaCha8 stream spec — the old pin
/// (2025) encoded `rand_chacha`'s exact output. The seed-robust orderings
/// (Table I) stay on the default seed.
const PAPER_SHAPE_SEED: u64 = 2026;

/// The paper's central scientific claim (Fig. 2): the adaptive protocol
/// attains better medians than the control at every iteration, for every
/// metric.
#[test]
fn imrp_dominates_cont_v_at_every_iteration() {
    let seed = PAPER_SHAPE_SEED;
    let targets = named_pdz_domains(seed);
    let cont = run_cont_v_experiment(&targets, ProtocolConfig::cont_v(seed));
    let imrp = run_imrp(
        &targets,
        ProtocolConfig::imrp(seed),
        AdaptivePolicy::default(),
    );

    for metric in MetricKind::ALL {
        let c = cont.series(metric);
        let i = imrp.series(metric);
        for (pos, iter) in c.iterations.iter().enumerate() {
            let Some(ipos) = i.iterations.iter().position(|x| x == iter) else {
                continue;
            };
            let (cm, im) = (c.summaries[pos].median, i.summaries[ipos].median);
            if metric.higher_is_better() {
                assert!(
                    im > cm,
                    "{metric} iter {iter}: IM-RP median {im} must beat CONT-V {cm}"
                );
            } else {
                assert!(
                    im < cm,
                    "{metric} iter {iter}: IM-RP median {im} must beat CONT-V {cm}"
                );
            }
        }
    }
}

/// The paper's consistency claim: "higher consistency in design quality, as
/// indicated by the lower standard deviation in the pLDDT and pTM metrics."
#[test]
fn imrp_is_more_consistent_on_plddt_and_ptm() {
    let seed = PAPER_SHAPE_SEED;
    let targets = named_pdz_domains(seed);
    let cont = run_cont_v_experiment(&targets, ProtocolConfig::cont_v(seed));
    let imrp = run_imrp(
        &targets,
        ProtocolConfig::imrp(seed),
        AdaptivePolicy::default(),
    );

    for metric in [MetricKind::Plddt, MetricKind::Ptm] {
        let c = cont.series(metric);
        let i = imrp.series(metric);
        // Compare mean σ over the common iterations.
        let common = c.iterations.len().min(i.iterations.len());
        let mean_sd = |s: &impress_core::IterationSeries, n: usize| {
            s.summaries[..n].iter().map(|x| x.std_dev).sum::<f64>() / n as f64
        };
        let (csd, isd) = (mean_sd(&c, common), mean_sd(&i, common));
        assert!(
            isd < csd,
            "{metric}: IM-RP mean σ {isd} must be below CONT-V {csd}"
        );
    }
}

/// Table I's computational claims, as ordering invariants.
#[test]
fn table1_computational_orderings_hold() {
    let seed = 2025;
    let targets = named_pdz_domains(seed);
    let cont = run_cont_v_experiment(&targets, ProtocolConfig::cont_v(seed));
    let imrp = run_imrp(
        &targets,
        ProtocolConfig::imrp(seed),
        AdaptivePolicy::default(),
    );

    // Trajectories: CONT-V examines exactly 16; IM-RP more.
    assert_eq!(cont.trajectories, 16);
    assert!(imrp.trajectories > cont.trajectories);

    // Utilization: IM-RP ≫ CONT-V on both device classes.
    assert!(imrp.run.cpu_utilization > cont.run.cpu_utilization * 2.5);
    assert!(imrp.run.gpu_slot_utilization > cont.run.gpu_hardware_utilization * 10.0);

    // CONT-V bands from the paper: ~18.3% CPU, ~1% GPU.
    assert!(
        (0.12..0.30).contains(&cont.run.cpu_utilization),
        "CONT-V CPU {}",
        cont.run.cpu_utilization
    );
    assert!(
        cont.run.gpu_hardware_utilization < 0.05,
        "CONT-V GPU {}",
        cont.run.gpu_hardware_utilization
    );

    // Makespan: IM-RP evaluates more and takes longer (Table I's Time column).
    assert!(imrp.evaluations > cont.evaluations);
    assert!(
        imrp.run.makespan > cont.run.makespan,
        "IM-RP {} vs CONT-V {}",
        imrp.run.makespan,
        cont.run.makespan
    );

    // Net deltas: IM-RP improves each metric at least as much.
    let (c, i) = (
        Table1Row::from_result(&cont, targets.len()),
        Table1Row::from_result(&imrp, targets.len()),
    );
    assert!(i.ptm_delta > c.ptm_delta);
    assert!(i.plddt_delta > c.plddt_delta);
    assert!(i.pae_delta < c.pae_delta, "pAE is lower-is-better");
}

/// Whole-experiment determinism: identical seeds give identical science and
/// identical schedules.
#[test]
fn experiments_are_bit_reproducible() {
    let run = || {
        let targets = named_pdz_domains(7);
        let r = run_imrp(&targets, ProtocolConfig::imrp(7), AdaptivePolicy::default());
        (
            r.trajectories,
            r.evaluations,
            r.run.makespan,
            r.outcomes
                .iter()
                .map(|o| o.final_receptor.to_letters())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

/// Different seeds must give different runs (no accidental constant-folding
/// of the stochastic machinery).
#[test]
fn different_seeds_differ() {
    let targets = named_pdz_domains(7);
    let a = run_imrp(&targets, ProtocolConfig::imrp(7), AdaptivePolicy::default());
    let b = run_imrp(&targets, ProtocolConfig::imrp(8), AdaptivePolicy::default());
    assert_ne!(
        a.outcomes[0].final_receptor, b.outcomes[0].final_receptor,
        "seeds must matter"
    );
}
