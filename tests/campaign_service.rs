//! Multi-tenant campaign service, end to end: campaign outcomes under the
//! service are bit-identical to the same campaigns run serially with the
//! same seeds (isolation is real, not statistical); a single-campaign
//! service is behaviorally identical to a bare coordinator; and one
//! tenant's journaled campaign killed mid-run resumes — byte-identically —
//! in a fresh service while other tenants' campaigns run to completion.

use impress_pilot::backend::SimulatedBackend;
use impress_pilot::{
    Completion, NodeSpec, PilotConfig, PlacementPolicy, ResourceRequest, TaskDescription,
};
use impress_sim::SimDuration;
use impress_workflow::journal::{load_plan, Journal, MemoryJournal};
use impress_workflow::service::{CampaignService, CampaignSpec, CampaignStatus, TenantId, TenantQuota};
use impress_workflow::decision::Spawn;
use impress_workflow::{
    BoxedPipeline, Coordinator, CoordinatorView, DecisionEngine, PipelineId, PipelineLogic, Step,
};

fn pilot(cores: u32, nodes: u32) -> PilotConfig {
    PilotConfig {
        node: NodeSpec::new(cores, 2, 64),
        nodes,
        policy: PlacementPolicy::Backfill,
        bootstrap: SimDuration::from_secs(10),
        exec_setup_per_task: SimDuration::from_secs(1),
        seed: 0,
    }
}

/// A deterministic pipeline: `stages` sequential tasks whose durations and
/// outputs are pure functions of `seed`, outcome = sum of task outputs.
/// Timing-independent by construction, so outcomes must not change no
/// matter who shares the cluster.
struct Chain {
    seed: u64,
    stages: u64,
    step: u64,
    acc: u64,
}

impl Chain {
    fn new(seed: u64) -> Self {
        Chain {
            seed,
            stages: 1 + seed % 3,
            step: 0,
            acc: 0,
        }
    }

    fn boxed(seed: u64) -> BoxedPipeline<u64> {
        Box::new(Chain::new(seed))
    }

    fn next(&mut self) -> Step<u64> {
        if self.step == self.stages {
            return Step::Complete(self.acc);
        }
        self.step += 1;
        let (seed, step) = (self.seed, self.step);
        Step::run(
            TaskDescription::new(
                format!("chain-{seed}-{step}"),
                ResourceRequest::cores(1),
                SimDuration::from_secs(1 + (seed * 7 + step) % 5),
            )
            .with_work(move || seed.wrapping_mul(31).wrapping_add(step)),
        )
    }
}

impl PipelineLogic<u64> for Chain {
    fn name(&self) -> String {
        format!("chain-{}", self.seed)
    }
    fn begin(&mut self) -> Step<u64> {
        self.next()
    }
    fn stage_done(&mut self, completions: Vec<Completion>) -> Step<u64> {
        for c in completions {
            self.acc = self.acc.wrapping_add(c.output::<u64>());
        }
        self.next()
    }
}

/// An adaptive engine whose spawning decision is a pure function of
/// outcome values and lineage depth (never of timing, arrival order, or
/// cluster state): every completed pipeline whose outcome is divisible by
/// 3 spawns one child seeded from it, down to a fixed ancestry depth.
///
/// Depth — read off the registry's parent links — matters: a shared
/// mutable budget would leak *arrival order* into the outcome set, and
/// the order in which a campaign's own concurrent pipelines finish
/// legitimately shifts with cluster shape and neighbor load. This test
/// exists to prove neighbors cannot shift *what* a campaign computes, so
/// its decision logic must depend only on the (unordered) outcome set.
struct SpawnOnMultiples {
    max_depth: u32,
}

impl DecisionEngine<u64> for SpawnOnMultiples {
    fn on_pipeline_complete(
        &mut self,
        id: PipelineId,
        outcome: &u64,
        view: &CoordinatorView<'_>,
    ) -> Vec<Spawn<u64>> {
        let mut depth = 0;
        let mut cur = id;
        while let Some(parent) = view.registry().get(cur).parent {
            depth += 1;
            cur = parent;
        }
        if depth >= self.max_depth || outcome % 3 != 0 {
            return Vec::new();
        }
        vec![Spawn::sub_of(id, Chain::boxed(outcome / 3 + 1))]
    }
}

/// One campaign's identity: its root seeds and its spawn depth limit.
#[derive(Clone)]
struct Campaign {
    roots: Vec<u64>,
    max_depth: u32,
}

fn campaigns(n: u64) -> Vec<Campaign> {
    (0..n)
        .map(|i| Campaign {
            roots: (0..2 + i % 3).map(|r| i * 100 + r * 13).collect(),
            max_depth: 2,
        })
        .collect()
}

/// The order-insensitive fingerprint of a campaign's results: sorted
/// outcome values plus sorted abort reasons. Pipeline *ids* of spawned
/// sub-pipelines legitimately depend on cross-root completion order (which
/// neighbors may shift); values may not.
fn fingerprint(mut outcomes: Vec<u64>, mut aborts: Vec<String>) -> String {
    outcomes.sort_unstable();
    aborts.sort();
    format!("{outcomes:?}|{aborts:?}")
}

fn run_serial(c: &Campaign, cfg: PilotConfig) -> String {
    let mut coordinator = Coordinator::new(
        SimulatedBackend::new(cfg),
        SpawnOnMultiples {
            max_depth: c.max_depth,
        },
    );
    for &seed in &c.roots {
        coordinator.add_pipeline(Chain::boxed(seed));
    }
    coordinator.run();
    fingerprint(
        coordinator.outcomes().iter().map(|(_, o)| *o).collect(),
        coordinator
            .aborts()
            .iter()
            .map(|(_, r)| r.clone())
            .collect(),
    )
}

fn spec_for(c: &Campaign, name: &str) -> CampaignSpec<u64> {
    let mut spec = CampaignSpec::new(name).decision(Box::new(SpawnOnMultiples {
        max_depth: c.max_depth,
    }));
    for &seed in &c.roots {
        spec = spec.root(Chain::boxed(seed));
    }
    spec
}

/// The determinism props test: N concurrent campaigns under the service —
/// across several cluster shapes and tenant layouts — produce outcomes
/// bit-identical to the same N campaigns run serially with the same seeds.
#[test]
fn service_campaign_outcomes_are_bit_identical_to_serial_runs() {
    let all = campaigns(12);
    let serial: Vec<String> = all
        .iter()
        .map(|c| run_serial(c, pilot(4, 1)))
        .collect();

    // Layouts: (cluster cores/node, nodes, tenant count).
    for &(cores, nodes, tenants) in &[(4u32, 1u32, 1usize), (8, 2, 3), (2, 1, 12)] {
        let mut service: CampaignService<u64, _> =
            CampaignService::new(SimulatedBackend::new(pilot(cores, nodes)));
        let ids: Vec<TenantId> = (0..tenants)
            .map(|t| {
                let id = TenantId::new(format!("tenant-{t}"));
                service.register_tenant(id.clone(), TenantQuota::unmetered(64));
                id
            })
            .collect();
        let handles: Vec<_> = all
            .iter()
            .enumerate()
            .map(|(i, c)| {
                service
                    .submit(&ids[i % tenants], spec_for(c, &format!("c{i}")))
                    .expect("admitted")
            })
            .collect();
        service.run();
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(service.status(h), CampaignStatus::Completed);
            let r = service.take_result(h).expect("result");
            let got = fingerprint(
                r.outcomes.iter().map(|(_, o)| *o).collect(),
                r.aborts.iter().map(|(_, e)| e.clone()).collect(),
            );
            assert_eq!(
                got, serial[i],
                "campaign {i} diverged under {cores}x{nodes} cores, {tenants} tenants"
            );
        }
    }
}

/// A single-campaign service is behaviorally identical to a bare
/// coordinator on the same backend: same outcomes AND the same virtual
/// makespan (the service adds no timing perturbation when there is no
/// contention — fair-share boost is exactly 0 for a lone tenant).
#[test]
fn single_campaign_service_matches_a_bare_coordinator_exactly() {
    let c = Campaign {
        roots: vec![3, 14, 15],
        max_depth: 3,
    };
    let mut bare = Coordinator::new(
        SimulatedBackend::new(pilot(4, 1)),
        SpawnOnMultiples {
            max_depth: c.max_depth,
        },
    );
    for &seed in &c.roots {
        bare.add_pipeline(Chain::boxed(seed));
    }
    bare.run();
    let bare_now = bare.session().now();
    let bare_fp = fingerprint(
        bare.outcomes().iter().map(|(_, o)| *o).collect(),
        Vec::new(),
    );

    let mut service: CampaignService<u64, _> =
        CampaignService::new(SimulatedBackend::new(pilot(4, 1)));
    let t = TenantId::new("solo");
    service.register_tenant(t.clone(), TenantQuota::unmetered(1));
    let h = service.submit(&t, spec_for(&c, "solo-c")).unwrap();
    service.run();
    let r = service.take_result(&h).unwrap();
    assert_eq!(
        fingerprint(r.outcomes.iter().map(|(_, o)| *o).collect(), Vec::new()),
        bare_fp
    );
    assert_eq!(
        service.now(),
        bare_now,
        "a lone campaign must see the exact same virtual timeline"
    );
}

/// Kill-and-resume under multi-tenancy: tenant A's journaled campaign is
/// killed mid-run (the kill switch panics out of the service, like an
/// allocation preemption taking the node down); a fresh service resumes A
/// from the surviving journal while tenants B and C run their campaigns to
/// completion, and A's outcomes are byte-identical to an uninterrupted
/// solo run.
#[test]
fn journaled_campaign_resumes_in_a_fresh_service_while_others_keep_running() {
    let a = Campaign {
        roots: vec![9, 21, 30, 45],
        max_depth: 3,
    };
    let b = Campaign {
        roots: vec![7, 11],
        max_depth: 1,
    };
    let c = Campaign {
        roots: vec![500, 501, 502],
        max_depth: 2,
    };
    let baseline = run_serial(&a, pilot(8, 1));

    // First life: A journaled with a kill switch, B and C along for the
    // ride. The kill panics out of `run`, taking the whole service with it
    // — exactly what a crashed allocation looks like.
    let store = MemoryJournal::new();
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut service: CampaignService<u64, _> =
            CampaignService::new(SimulatedBackend::new(pilot(8, 1)));
        for name in ["A", "B", "C"] {
            service.register_tenant(TenantId::new(name), TenantQuota::unmetered(8));
        }
        let journal = Journal::new(Box::new(store.clone()), "svc-A", 77)
            .expect("journal")
            .with_kill_after(10);
        service
            .submit(&TenantId::new("A"), spec_for(&a, "a").journal(journal))
            .unwrap();
        service.submit(&TenantId::new("B"), spec_for(&b, "b")).unwrap();
        service.submit(&TenantId::new("C"), spec_for(&c, "c")).unwrap();
        service.run();
    }));
    assert!(crashed.is_err(), "kill switch must fire mid-service");

    // Second life: resume A from the surviving journal; B and C restart
    // fresh (they were not journaled) and keep running alongside.
    let plan = load_plan(&store).expect("surviving journal must load").plan;
    let mut service: CampaignService<u64, _> =
        CampaignService::new(SimulatedBackend::new(pilot(8, 1)));
    for name in ["A", "B", "C"] {
        service.register_tenant(TenantId::new(name), TenantQuota::unmetered(8));
    }
    let ha = service
        .submit(&TenantId::new("A"), spec_for(&a, "a").resume_from(plan))
        .unwrap();
    let hb = service.submit(&TenantId::new("B"), spec_for(&b, "b")).unwrap();
    let hc = service.submit(&TenantId::new("C"), spec_for(&c, "c")).unwrap();
    service.run();
    for h in [&ha, &hb, &hc] {
        assert_eq!(service.status(h), CampaignStatus::Completed);
    }
    let ra = service.take_result(&ha).unwrap();
    assert_eq!(
        fingerprint(
            ra.outcomes.iter().map(|(_, o)| *o).collect(),
            ra.aborts.iter().map(|(_, e)| e.clone()).collect(),
        ),
        baseline,
        "resumed campaign must regenerate the uninterrupted outcomes"
    );
    // B and C finished on the shared cluster with real work delivered.
    assert!(service.take_result(&hb).unwrap().usage.core_seconds > 0.0);
    assert!(service.take_result(&hc).unwrap().usage.core_seconds > 0.0);
}
