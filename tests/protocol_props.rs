//! Protocol-level property tests: invariants of the adaptive pipeline under
//! arbitrary (but valid) configurations.

use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::{run_cont_v_experiment, run_imrp};
use impress_core::ProtocolConfig;
use impress_proteins::datasets::named_pdz_domains;
use proptest::prelude::*;

fn arb_config(seed: u64) -> impl Strategy<Value = ProtocolConfig> {
    (
        1u32..=4,      // cycles
        1u32..=10,     // retry budget
        1u32..=4,      // speculation
        1usize..=12,   // num sequences
        0.5f64..2.0,   // temperature
        any::<bool>(), // adaptive_final_cycle
    )
        .prop_map(
            move |(
                cycles,
                retry_budget,
                speculation,
                num_sequences,
                temperature,
                final_adaptive,
            )| {
                let mut c = ProtocolConfig::imrp(seed);
                c.cycles = cycles;
                c.retry_budget = retry_budget;
                c.speculation = speculation;
                c.mpnn.num_sequences = num_sequences;
                c.mpnn.temperature = temperature;
                c.adaptive_final_cycle = final_adaptive;
                c
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the configuration, a lineage's outcome satisfies the
    /// protocol's structural invariants.
    #[test]
    fn outcome_invariants_hold(config in arb_config(77), target_idx in 0usize..4) {
        let targets = named_pdz_domains(77);
        let target = &targets[target_idx..=target_idx];
        let result = run_imrp(target, config.clone(), AdaptivePolicy {
            sub_budget: 0,
            ..AdaptivePolicy::default()
        });
        prop_assert_eq!(result.outcomes.len(), 1);
        let o = &result.outcomes[0];

        // At most `cycles` accepted iterations, numbered 1..=k contiguously.
        prop_assert!(o.iterations.len() <= config.cycles as usize);
        for (i, rec) in o.iterations.iter().enumerate() {
            prop_assert_eq!(rec.iteration, i as u32 + 1);
            // The accepted candidate's rank is within the candidate pool.
            prop_assert!((rec.accepted_rank as usize) < config.mpnn.num_sequences);
            prop_assert!(rec.evaluations >= 1);
            // Metrics in physical ranges.
            prop_assert!((0.0..=100.0).contains(&rec.report.plddt));
            prop_assert!((0.0..=1.0).contains(&rec.report.ptm));
            prop_assert!((0.0..=35.0).contains(&rec.report.inter_chain_pae));
        }

        // Executed evaluations at least cover accepted iterations, and are
        // bounded by cycles × retry-ceiling (speculation can overshoot one
        // round by at most `speculation − 1`).
        let ceiling = config.cycles
            * (config.retry_budget.min(config.mpnn.num_sequences as u32)
                + config.speculation.saturating_sub(1));
        prop_assert!(o.total_evaluations >= o.iterations.len() as u32);
        prop_assert!(
            o.total_evaluations <= ceiling,
            "evaluations {} > ceiling {}",
            o.total_evaluations,
            ceiling
        );

        // Early termination implies fewer accepted iterations than cycles.
        if o.terminated_early {
            prop_assert!(o.iterations.len() < config.cycles as usize);
        }

        // The final receptor has the right length.
        prop_assert_eq!(
            o.final_receptor.len(),
            targets[target_idx].start.complex.receptor.len()
        );
    }

    /// The non-adaptive control accepts every cycle exactly once, whatever
    /// the sampling configuration.
    #[test]
    fn cont_v_always_accepts(num_sequences in 1usize..=12, temperature in 0.5f64..2.0) {
        let targets: Vec<_> = named_pdz_domains(7).into_iter().take(1).collect();
        let mut config = ProtocolConfig::cont_v(7);
        config.mpnn.num_sequences = num_sequences;
        config.mpnn.temperature = temperature;
        let result = run_cont_v_experiment(&targets, config.clone());
        let o = &result.outcomes[0];
        prop_assert_eq!(o.iterations.len(), config.cycles as usize);
        prop_assert_eq!(o.total_evaluations, config.cycles);
        prop_assert!(!o.terminated_early);
    }

    /// Fixed positions survive any configuration.
    #[test]
    fn fixed_positions_always_respected(config in arb_config(31)) {
        let targets: Vec<_> = named_pdz_domains(31).into_iter().take(1).collect();
        let fixed = vec![0usize, 10, 20, 40];
        let mut config = config;
        config.mpnn.fixed_positions = fixed.clone();
        let result = run_imrp(&targets, config, AdaptivePolicy {
            sub_budget: 0,
            ..AdaptivePolicy::default()
        });
        let start = &targets[0].start.complex.receptor.sequence;
        let end = &result.outcomes[0].final_receptor;
        for &p in &fixed {
            prop_assert_eq!(start.at(p), end.at(p), "fixed position {} mutated", p);
        }
    }
}
