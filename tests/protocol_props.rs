//! Protocol-level property tests: invariants of the adaptive pipeline under
//! arbitrary (but valid) configurations, on the in-repo
//! [`props!`](impress_sim::props) harness.

use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::{run_cont_v_experiment, run_imrp};
use impress_core::ProtocolConfig;
use impress_proteins::datasets::named_pdz_domains;
use impress_sim::{props, SimRng};

fn arb_config(rng: &mut SimRng, seed: u64) -> ProtocolConfig {
    let mut c = ProtocolConfig::imrp(seed);
    c.cycles = 1 + rng.below(4) as u32;
    c.retry_budget = 1 + rng.below(10) as u32;
    c.speculation = 1 + rng.below(4) as u32;
    c.mpnn.num_sequences = 1 + rng.below(12);
    c.mpnn.temperature = rng.uniform_range(0.5, 2.0);
    c.adaptive_final_cycle = rng.chance(0.5);
    c
}

props! {
    /// Whatever the configuration, a lineage's outcome satisfies the
    /// protocol's structural invariants.
    fn outcome_invariants_hold(rng, cases = 12) {
        let config = arb_config(rng, 77);
        let target_idx = rng.below(4);
        let targets = named_pdz_domains(77);
        let target = &targets[target_idx..=target_idx];
        let result = run_imrp(target, config.clone(), AdaptivePolicy {
            sub_budget: 0,
            ..AdaptivePolicy::default()
        });
        assert_eq!(result.outcomes.len(), 1);
        let o = &result.outcomes[0];

        // At most `cycles` accepted iterations, numbered 1..=k contiguously.
        assert!(o.iterations.len() <= config.cycles as usize);
        for (i, rec) in o.iterations.iter().enumerate() {
            assert_eq!(rec.iteration, i as u32 + 1);
            // The accepted candidate's rank is within the candidate pool.
            assert!((rec.accepted_rank as usize) < config.mpnn.num_sequences);
            assert!(rec.evaluations >= 1);
            // Metrics in physical ranges.
            assert!((0.0..=100.0).contains(&rec.report.plddt));
            assert!((0.0..=1.0).contains(&rec.report.ptm));
            assert!((0.0..=35.0).contains(&rec.report.inter_chain_pae));
        }

        // Executed evaluations at least cover accepted iterations, and are
        // bounded by cycles × retry-ceiling (speculation can overshoot one
        // round by at most `speculation − 1`).
        let ceiling = config.cycles
            * (config.retry_budget.min(config.mpnn.num_sequences as u32)
                + config.speculation.saturating_sub(1));
        assert!(o.total_evaluations >= o.iterations.len() as u32);
        assert!(
            o.total_evaluations <= ceiling,
            "evaluations {} > ceiling {}",
            o.total_evaluations,
            ceiling
        );

        // Early termination implies fewer accepted iterations than cycles.
        if o.terminated_early {
            assert!(o.iterations.len() < config.cycles as usize);
        }

        // The final receptor has the right length.
        assert_eq!(
            o.final_receptor.len(),
            targets[target_idx].start.complex.receptor.len()
        );
    }

    /// The non-adaptive control accepts every cycle exactly once, whatever
    /// the sampling configuration.
    fn cont_v_always_accepts(rng, cases = 12) {
        let num_sequences = 1 + rng.below(12);
        let temperature = rng.uniform_range(0.5, 2.0);
        let targets: Vec<_> = named_pdz_domains(7).into_iter().take(1).collect();
        let mut config = ProtocolConfig::cont_v(7);
        config.mpnn.num_sequences = num_sequences;
        config.mpnn.temperature = temperature;
        let result = run_cont_v_experiment(&targets, config.clone());
        let o = &result.outcomes[0];
        assert_eq!(o.iterations.len(), config.cycles as usize);
        assert_eq!(o.total_evaluations, config.cycles);
        assert!(!o.terminated_early);
    }

    /// Fixed positions survive any configuration.
    fn fixed_positions_always_respected(rng, cases = 12) {
        let mut config = arb_config(rng, 31);
        let targets: Vec<_> = named_pdz_domains(31).into_iter().take(1).collect();
        let fixed = vec![0usize, 10, 20, 40];
        config.mpnn.fixed_positions = fixed.clone();
        let result = run_imrp(&targets, config, AdaptivePolicy {
            sub_budget: 0,
            ..AdaptivePolicy::default()
        });
        let start = &targets[0].start.complex.receptor.sequence;
        let end = &result.outcomes[0].final_receptor;
        for &p in &fixed {
            assert_eq!(start.at(p), end.at(p), "fixed position {} mutated", p);
        }
    }
}
