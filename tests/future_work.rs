//! Integration tests for the paper's §V future-work protocols, implemented
//! in this reproduction: protease redesign with frozen catalytic residues
//! and monomer-mode structure prediction, plus generator pluggability.

use impress_core::generator::RandomMutagenesis;
use impress_core::{DesignPipeline, ProtocolConfig, TargetToolkit};
use impress_pilot::backend::SimulatedBackend;
use impress_pilot::PilotConfig;
use impress_proteins::alphafold::{calibration, PredictionMode};
use impress_proteins::datasets::{named_pdz_domains, protease_targets};
use impress_workflow::{Coordinator, NoDecisions};
use std::sync::Arc;

fn run_single(tk: Arc<TargetToolkit>, config: ProtocolConfig) -> impress_core::DesignOutcome {
    let backend = SimulatedBackend::new(PilotConfig::with_seed(config.seed));
    let mut c = Coordinator::new(backend, NoDecisions);
    c.add_pipeline(Box::new(DesignPipeline::root(tk, config, 0)));
    c.run();
    c.outcomes()[0].1.clone()
}

#[test]
fn protease_protocol_preserves_triad_and_uses_monomer_metrics() {
    for pt in protease_targets(41, 2) {
        let mut config = ProtocolConfig::imrp(41);
        config.mpnn.fixed_positions = pt.catalytic.clone();
        config.alphafold.mode = PredictionMode::Monomer;
        let tk = TargetToolkit::for_target(&pt.target, 41);
        let outcome = run_single(tk, config);

        // Catalytic triad untouched after full redesign.
        let start = &pt.target.start.complex.receptor.sequence;
        for &p in &pt.catalytic {
            assert_eq!(
                start.at(p),
                outcome.final_receptor.at(p),
                "{}: catalytic residue {} mutated",
                pt.target.name,
                p + 1
            );
        }
        // Monomer mode: every report carries the pAE sentinel and real
        // pLDDT/pTM values.
        for rec in &outcome.iterations {
            assert_eq!(rec.report.inter_chain_pae, calibration::MONOMER_PAE);
            assert!(rec.report.plddt > 0.0);
        }
        // And the design still improves (selection rides on pLDDT/pTM).
        if outcome.iterations.len() >= 2 {
            let first = outcome.iterations.first().unwrap().report.ptm;
            let last = outcome.iterations.last().unwrap().report.ptm;
            assert!(
                last >= first,
                "{}: monomer-mode selection should not regress pTM ({first} → {last})",
                pt.target.name
            );
        }
    }
}

#[test]
fn protease_design_actually_redesigns_the_rest() {
    let pt = &protease_targets(43, 1)[0];
    let mut config = ProtocolConfig::imrp(43);
    config.mpnn.fixed_positions = pt.catalytic.clone();
    config.alphafold.mode = PredictionMode::Monomer;
    let tk = TargetToolkit::for_target(&pt.target, 43);
    let outcome = run_single(tk, config);
    let mutations = pt
        .target
        .start
        .complex
        .receptor
        .sequence
        .hamming(&outcome.final_receptor);
    assert!(
        mutations > 10,
        "four cycles should redesign a meaningful fraction, got {mutations}"
    );
}

#[test]
fn blind_mutagenesis_generator_underperforms_mpnn() {
    let target = &named_pdz_domains(47)[1];
    let config = ProtocolConfig::imrp(47);

    let mpnn_outcome = run_single(TargetToolkit::for_target(target, 47), config.clone());
    let blind_outcome = run_single(
        TargetToolkit::with_generator(target, 47, Arc::new(RandomMutagenesis::default())),
        config,
    );

    let truth =
        |o: &impress_core::DesignOutcome| target.landscape.fitness(&o.final_receptor).quality;
    assert!(
        truth(&mpnn_outcome) > truth(&blind_outcome),
        "structure-aware generation must beat blind mutagenesis: {} vs {}",
        truth(&mpnn_outcome),
        truth(&blind_outcome)
    );
}
