//! Hermetic-build guard: the workspace must never regain a crates.io
//! dependency. Every entry in every dependency table — root
//! `[workspace.dependencies]` and each member's `[dependencies]` /
//! `[dev-dependencies]` / `[build-dependencies]` — must be either a `path`
//! dependency or `workspace = true` (which resolves to one).
//!
//! This is the policy the root `Cargo.toml` comment points at. If this test
//! fails, someone reintroduced a registry dependency and tier-1 verify will
//! break on any machine without network access to a package index.

use std::path::{Path, PathBuf};

/// All manifests in the workspace: the root plus every `crates/*` member.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates = std::fs::read_dir(root.join("crates")).expect("crates/ dir");
    for entry in crates {
        let manifest = entry.expect("dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    assert!(
        manifests.len() >= 2,
        "expected root + member manifests, found {manifests:?}"
    );
    manifests
}

/// True for section headers that declare dependencies, e.g.
/// `[dependencies]`, `[dev-dependencies]`, `[workspace.dependencies]`,
/// `[target.'cfg(unix)'.dependencies]`, or a single-dependency table like
/// `[dependencies.foo]`.
fn is_dependency_section(header: &str) -> bool {
    header.split('.').any(|part| {
        part == "dependencies" || part == "dev-dependencies" || part == "build-dependencies"
    })
}

/// A dependency entry is hermetic if it resolves via a path: either an
/// inline table containing `path = ...`, or the workspace-inherited forms
/// `foo = { workspace = true }` / `foo.workspace = true` (the root
/// `[workspace.dependencies]` is itself checked to be all-path).
fn entry_is_hermetic(name: &str, spec: &str) -> bool {
    name.ends_with(".workspace") || spec.contains("path") || spec.contains("workspace")
}

#[test]
fn no_registry_dependencies_anywhere() {
    let mut violations = Vec::new();

    for manifest in workspace_manifests() {
        let text = std::fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        let mut in_dep_section = false;
        // Header of a `[dependencies.foo]`-style table currently being
        // scanned, with a flag for whether a `path` key was seen.
        let mut dep_table: Option<(String, bool)> = None;

        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                if let Some((header, saw_path)) = dep_table.take() {
                    if !saw_path {
                        violations.push(format!("{}: [{header}] has no path", manifest.display()));
                    }
                }
                let header = line.trim_matches(|c| c == '[' || c == ']');
                let is_dep = is_dependency_section(header);
                // `[dependencies.foo]` opens a per-dependency table whose
                // keys we must scan for `path`.
                let per_dep = is_dep
                    && header
                        .rsplit('.')
                        .next()
                        .map(|last| !last.ends_with("dependencies"))
                        .unwrap_or(false);
                if per_dep {
                    dep_table = Some((header.to_string(), false));
                    in_dep_section = false;
                } else {
                    in_dep_section = is_dep;
                }
                continue;
            }
            if let Some((_, saw_path)) = dep_table.as_mut() {
                if line.starts_with("path") {
                    *saw_path = true;
                }
                continue;
            }
            if !in_dep_section {
                continue;
            }
            let Some((name, spec)) = line.split_once('=') else {
                continue;
            };
            if !entry_is_hermetic(name.trim(), spec) {
                violations.push(format!(
                    "{}: `{}` is not a path/workspace dependency: {}",
                    manifest.display(),
                    name.trim(),
                    spec.trim()
                ));
            }
        }
        if let Some((header, saw_path)) = dep_table {
            if !saw_path {
                violations.push(format!("{}: [{header}] has no path", manifest.display()));
            }
        }
    }

    assert!(
        violations.is_empty(),
        "registry dependencies reintroduced — the workspace must stay hermetic \
         (path-only deps):\n{}",
        violations.join("\n")
    );
}

/// Every bench-suite source file must be declared in the bench crate's
/// manifest. `cargo build`/`cargo test` silently skip an undeclared
/// `src/bin/*.rs` or `benches/*.rs` (the crate has `harness = false`
/// benches, so auto-discovery is off), which would let a broken study
/// binary rot unnoticed until someone tries to regenerate an artifact.
/// Tier-1 verify compiles the suites (`cargo build --benches`); this
/// guard makes sure there is nothing the compile pass cannot see.
#[test]
fn every_bench_suite_is_declared_in_the_manifest() {
    let bench_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/bench");
    let manifest = std::fs::read_to_string(bench_dir.join("Cargo.toml"))
        .expect("read crates/bench/Cargo.toml");

    let stems = |dir: &Path| -> Vec<String> {
        let mut out: Vec<String> = std::fs::read_dir(dir)
            .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
            .map(|entry| entry.expect("dir entry").path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
            .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
            .collect();
        out.sort();
        out
    };

    let mut missing = Vec::new();
    for stem in stems(&bench_dir.join("src/bin")) {
        // `[[bin]]` entries name the target and point at the source path.
        if !manifest.contains(&format!("path = \"src/bin/{stem}.rs\"")) {
            missing.push(format!("src/bin/{stem}.rs has no [[bin]] entry"));
        }
    }
    for stem in stems(&bench_dir.join("benches")) {
        if !manifest.contains(&format!("name = \"{stem}\"")) {
            missing.push(format!("benches/{stem}.rs has no [[bench]] entry"));
        }
    }
    assert!(
        missing.is_empty(),
        "undeclared bench-crate targets (cargo will silently skip them):\n{}",
        missing.join("\n")
    );
}

/// The checked-in recovery study must stay loadable and must agree with
/// the code on the journal's on-disk format version. A version bump in
/// `impress_workflow::journal` without regenerating `recovery.json`
/// (`cargo run --release -p impress-bench --bin recovery`) fails here.
/// Deliberately *not* a byte comparison: the study's replay wall-clock
/// milliseconds are machine-dependent; only the structure is pinned.
#[test]
fn recovery_artifact_matches_the_journal_format_version() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("recovery.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} — run the recovery bin", path.display()));
    let json: impress_json::Json = impress_json::from_str(&text).expect("recovery.json parses");
    let version: u32 = json
        .get("format_version")
        .and_then(|v| v.as_f64())
        .expect("recovery.json has a format_version field") as u32;
    assert_eq!(
        version,
        impress_workflow::JOURNAL_FORMAT_VERSION,
        "recovery.json was generated under a different journal format — regenerate it"
    );
    let rows = json
        .get("rows")
        .and_then(|r| r.as_array())
        .expect("recovery.json has rows");
    assert!(!rows.is_empty(), "recovery study must report cells");
    for row in rows {
        assert_eq!(
            row.get("byte_identical").and_then(|b| b.as_bool()),
            Some(true),
            "every checked-in recovery cell must have resumed byte-identically: {row:?}"
        );
    }
}

/// The checked-in scheduler bench artifact must match the study's current
/// document layout and carry both sides of the comparison: the live
/// results *and* the embedded pre-optimization baseline. Deliberately not
/// a byte comparison — the medians are machine-dependent; only the
/// structure is pinned. Regenerate with
/// `cargo run --release -p impress-bench --bin sched_bench`.
#[test]
fn scheduler_bench_artifact_matches_the_study_format_version() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_scheduler.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} — run the sched_bench bin", path.display()));
    let json: impress_json::Json =
        impress_json::from_str(&text).expect("BENCH_scheduler.json parses");
    let version: u32 = json
        .get("format_version")
        .and_then(|v| v.as_f64())
        .expect("BENCH_scheduler.json has a format_version field") as u32;
    assert_eq!(
        version,
        impress_bench::sched::SCHED_BENCH_FORMAT_VERSION,
        "BENCH_scheduler.json was generated under a different study format — regenerate it"
    );
    let results = json
        .get("results")
        .and_then(|r| r.as_array())
        .expect("BENCH_scheduler.json has results");
    assert!(!results.is_empty(), "bench study must report cases");
    let baseline = json.get("baseline").expect("baseline section present");
    let micro = baseline
        .get("micro")
        .and_then(|m| m.as_array())
        .expect("baseline has micro rows");
    assert!(!micro.is_empty(), "baseline must document the before-shape");
    let speedups = json
        .get("speedups")
        .and_then(|s| s.as_array())
        .expect("speedups section present");
    assert!(
        !speedups.is_empty(),
        "artifact must compare live results against the baseline"
    );
    json.get("imrp_campaign")
        .and_then(|c| c.get("wall_ms"))
        .and_then(|v| v.as_f64())
        .expect("end-to-end campaign timing present");
    let overhead = json
        .get("telemetry_overhead")
        .and_then(|t| t.get("overhead_ratio"))
        .and_then(|v| v.as_f64())
        .expect("telemetry overhead comparison present");
    assert!(
        overhead > 0.0 && overhead.is_finite(),
        "telemetry overhead ratio must be a real measurement: {overhead}"
    );
}

/// One tiny iteration of the scheduler bench study runs under `cargo test`,
/// so the code that regenerates `BENCH_scheduler.json` cannot bit-rot
/// between releases. The sample budget is clamped to keep this a smoke
/// test, not a benchmark.
#[test]
fn scheduler_bench_smoke_iteration_produces_a_complete_document() {
    std::env::set_var("IMPRESS_BENCH_SAMPLES", "1");
    std::env::set_var("IMPRESS_BENCH_MAX_SECS", "0.2");
    let doc = impress_bench::sched::run_study(&impress_bench::sched::StudyParams::smoke(), 7);
    assert_eq!(
        doc.get("format_version").and_then(|v| v.as_f64()),
        Some(impress_bench::sched::SCHED_BENCH_FORMAT_VERSION as f64)
    );
    let results = doc
        .get("results")
        .and_then(|r| r.as_array())
        .expect("smoke study has results");
    // One depth × two policies + one cluster case.
    assert_eq!(results.len(), 3, "smoke study covers every code path");
    assert!(
        doc.get("imrp_campaign")
            .and_then(|c| c.get("makespan_hours"))
            .and_then(|v| v.as_f64())
            .is_some_and(|h| h > 0.0),
        "smoke campaign ran to completion"
    );
    assert!(
        doc.get("telemetry_overhead")
            .and_then(|t| t.get("null_sink_wall_ms"))
            .and_then(|v| v.as_f64())
            .is_some_and(|ms| ms > 0.0),
        "smoke study measured the null-sink campaign"
    );
}

/// The checked-in telemetry trace study must match the current document
/// layout and certify all three trace contracts. Unlike the timing
/// artifacts this one is fully deterministic (event counts, span counts,
/// metric counters — no wall-clock readings), but the guard still pins
/// structure + invariants rather than bytes so a seed change stays a
/// one-regeneration fix. Regenerate with
/// `cargo run --release -p impress-bench --bin trace_study`.
#[test]
fn trace_artifact_matches_the_study_format_version() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("trace_summary.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} — run the trace_study bin", path.display()));
    let json: impress_json::Json =
        impress_json::from_str(&text).expect("trace_summary.json parses");
    let version: u32 = json
        .get("format_version")
        .and_then(|v| v.as_f64())
        .expect("trace_summary.json has a format_version field") as u32;
    assert_eq!(
        version,
        impress_bench::trace::TRACE_FORMAT_VERSION,
        "trace_summary.json was generated under a different study format — regenerate it"
    );
    for key in ["perturbation_free", "nesting_ok", "chrome_round_trip_ok"] {
        assert_eq!(
            json.get(key).and_then(|v| v.as_bool()),
            Some(true),
            "checked-in trace study must certify `{key}`"
        );
    }
    assert_eq!(
        json.get("parity")
            .and_then(|p| p.get("backends_agree"))
            .and_then(|v| v.as_bool()),
        Some(true),
        "checked-in trace study must certify cross-backend virtual-trace parity"
    );
    let campaign = json.get("campaign").expect("campaign section present");
    assert!(
        campaign
            .get("events")
            .and_then(|v| v.as_f64())
            .is_some_and(|n| n > 0.0),
        "recorded campaign must contain events"
    );
    assert_eq!(
        campaign.get("events_dropped").and_then(|v| v.as_f64()),
        Some(0.0),
        "the study ring must be large enough to record the campaign losslessly"
    );
}

/// One tiny iteration of the trace study runs under `cargo test`, so the
/// code that regenerates `trace_summary.json` cannot bit-rot between
/// releases — and the three trace contracts are re-proven on every test
/// run, not just at artifact-regeneration time.
#[test]
fn trace_study_smoke_iteration_certifies_every_contract() {
    let doc = impress_bench::trace::run_study(&impress_bench::trace::TraceParams::smoke(), 7);
    assert_eq!(
        doc.get("format_version").and_then(|v| v.as_f64()),
        Some(impress_bench::trace::TRACE_FORMAT_VERSION as f64)
    );
    for key in ["perturbation_free", "nesting_ok", "chrome_round_trip_ok"] {
        assert_eq!(
            doc.get(key).and_then(|v| v.as_bool()),
            Some(true),
            "smoke trace study failed `{key}`"
        );
    }
    assert_eq!(
        doc.get("parity")
            .and_then(|p| p.get("backends_agree"))
            .and_then(|v| v.as_bool()),
        Some(true),
        "smoke trace study: backends disagreed on the virtual trace"
    );
}

/// The checked-in sim-engine scaling artifact must match the study's
/// current document layout and carry both sides of the comparison: the
/// live sharded-engine results *and* the embedded pre-sharding baseline —
/// including the headline claim the study exists to make: the 10k-node /
/// 1M-task campaign (unmeasurable on the old engine; its baseline cell is
/// `null`) drains in single-digit seconds. Deliberately not a byte
/// comparison — wall times are machine-dependent; only the structure and
/// the headline invariant are pinned. Regenerate with
/// `cargo run --release -p impress-bench --bin sim_bench`.
#[test]
fn sim_bench_artifact_matches_the_study_format_version() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_sim.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} — run the sim_bench bin", path.display()));
    let json: impress_json::Json = impress_json::from_str(&text).expect("BENCH_sim.json parses");
    let version: u32 = json
        .get("format_version")
        .and_then(|v| v.as_f64())
        .expect("BENCH_sim.json has a format_version field") as u32;
    assert_eq!(
        version,
        impress_bench::sim::SIM_BENCH_FORMAT_VERSION,
        "BENCH_sim.json was generated under a different study format — regenerate it"
    );
    let results = json
        .get("results")
        .and_then(|r| r.as_array())
        .expect("BENCH_sim.json has results");
    assert!(!results.is_empty(), "sim study must report rows");
    let cells = json
        .get("baseline")
        .and_then(|b| b.get("cells"))
        .and_then(|c| c.as_array())
        .expect("baseline cells present");
    assert!(
        cells
            .iter()
            .any(|c| c.get("wall_ms").is_some_and(|v| v.is_null())),
        "baseline must document the cell the old engine could not measure"
    );
    assert!(
        !json
            .get("speedups")
            .and_then(|s| s.as_array())
            .expect("speedups section present")
            .is_empty(),
        "artifact must compare the sharded engine against the baseline"
    );
    let headline = json.get("headline").expect("headline section present");
    assert_eq!(
        headline.get("nodes").and_then(|v| v.as_u64()),
        Some(10_000),
        "headline must be the 10k-node campaign"
    );
    assert_eq!(
        headline.get("tasks").and_then(|v| v.as_u64()),
        Some(1_000_000),
        "headline must be the 1M-task campaign"
    );
    assert_eq!(
        headline.get("single_digit_seconds").and_then(|v| v.as_bool()),
        Some(true),
        "the checked-in headline cell must drain in single-digit seconds"
    );
}

/// One tiny iteration of the sim scaling study runs under `cargo test`,
/// so the code that regenerates `BENCH_sim.json` cannot bit-rot between
/// releases. The smoke cell runs all three engines (sequential, sharded,
/// sharded-parallel) on a campaign small enough to stay a smoke test.
#[test]
fn sim_bench_smoke_iteration_produces_a_complete_document() {
    let doc = impress_bench::sim::run_study(&impress_bench::sim::StudyParams::smoke(), 7);
    assert_eq!(
        doc.get("format_version").and_then(|v| v.as_f64()),
        Some(impress_bench::sim::SIM_BENCH_FORMAT_VERSION as f64)
    );
    let results = doc
        .get("results")
        .and_then(|r| r.as_array())
        .expect("smoke study has results");
    assert_eq!(results.len(), 3, "smoke study covers all three engines");
    for row in results {
        assert_eq!(
            row.get("completed").and_then(|v| v.as_u64()),
            row.get("tasks").and_then(|v| v.as_u64()),
            "every smoke campaign must drain fully: {row:?}"
        );
    }
    doc.get("headline")
        .and_then(|h| h.get("wall_ms"))
        .and_then(|v| v.as_f64())
        .expect("smoke study reports a headline cell");
}

/// The checked-in gray-failure study artifact must match the study's
/// current document layout and certify both resilience claims it exists
/// to make: hedging at k=2 recovers the majority of the makespan a 10x
/// straggler tail costs, and quarantine bounds poisoned-lineage waste to
/// the distinct-node budget. The study is fully deterministic (virtual
/// clock, fixed seed), but the guard pins structure + claims rather than
/// bytes so a parameter change stays a one-regeneration fix. Regenerate
/// with `cargo run --release -p impress-bench --bin straggler_study`.
#[test]
fn straggler_artifact_matches_the_study_format_version() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("straggler.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} — run the straggler_study bin", path.display()));
    let json: impress_json::Json = impress_json::from_str(&text).expect("straggler.json parses");
    let version: u32 = json
        .get("format_version")
        .and_then(|v| v.as_f64())
        .expect("straggler.json has a format_version field") as u32;
    assert_eq!(
        version,
        impress_bench::straggler::STRAGGLER_FORMAT_VERSION,
        "straggler.json was generated under a different study format — regenerate it"
    );
    let acceptance = json.get("acceptance").expect("acceptance section present");
    for key in ["k2_recovers_majority", "quarantine_bounds_poison_waste"] {
        assert_eq!(
            acceptance.get(key).and_then(|v| v.as_bool()),
            Some(true),
            "checked-in straggler study must certify `{key}`"
        );
    }
    let rows = json
        .get("rows")
        .and_then(|r| r.as_array())
        .expect("straggler.json has a rows array");
    assert_eq!(
        rows.len(),
        24,
        "the study sweeps 4 severities x 3 hedge modes x 2 quarantine modes"
    );
    for row in rows {
        assert!(
            row.get("makespan_secs").and_then(|v| v.as_f64()).is_some_and(|m| m > 0.0),
            "every cell must report a positive makespan: {row:?}"
        );
    }
}

/// One tiny iteration of the gray-failure study runs under `cargo test`,
/// so the code that regenerates `straggler.json` cannot bit-rot between
/// releases. The smoke grid keeps every code path warm — scripted
/// slowdowns, hedged duplicates, poison quarantine, circuit-breaker
/// shedding — without asserting the paper-scale recovery bar, which only
/// the full grid is sized to meet.
#[test]
fn straggler_smoke_iteration_produces_a_complete_document() {
    let doc =
        impress_bench::straggler::run_study(&impress_bench::straggler::StudyParams::smoke(), 7);
    assert_eq!(
        doc.get("format_version").and_then(|v| v.as_f64()),
        Some(impress_bench::straggler::STRAGGLER_FORMAT_VERSION as f64)
    );
    let rows = doc
        .get("rows")
        .and_then(|r| r.as_array())
        .expect("smoke study has rows");
    assert_eq!(
        rows.len(),
        24,
        "smoke study sweeps the same 24-cell grid as the paper run"
    );
    for row in rows {
        let completed = row.get("completed").and_then(|v| v.as_u64()).unwrap_or(0);
        let poisoned = row.get("poisoned").and_then(|v| v.as_u64()).unwrap_or(0);
        let shed = row.get("shed").and_then(|v| v.as_u64()).unwrap_or(0);
        let timed_out = row.get("timed_out").and_then(|v| v.as_u64()).unwrap_or(0);
        assert!(
            completed + poisoned + shed + timed_out > 0,
            "every smoke cell must drain its campaign: {row:?}"
        );
        assert!(
            row.get("makespan_secs").and_then(|v| v.as_f64()).is_some_and(|m| m > 0.0),
            "every smoke cell must report a positive makespan: {row:?}"
        );
    }
    let quarantined: Vec<_> = rows
        .iter()
        .filter(|r| r.get("quarantine").and_then(|v| v.as_str()) == Some("on"))
        .collect();
    assert!(
        quarantined.iter().any(|r| r.get("poisoned").and_then(|v| v.as_u64()).unwrap_or(0) > 0),
        "quarantine-on smoke cells must actually poison the doomed lineages"
    );
    doc.get("acceptance")
        .and_then(|a| a.get("k2_recovered_fraction"))
        .and_then(|v| v.as_f64())
        .expect("smoke study computes the recovery fraction");
}

/// The deprecated pilot constructor shims and `Session` probes completed
/// their one-release sunset and were deleted; the workspace is now a
/// zero-`#[deprecated]` codebase by policy. Deprecation here means
/// *delete on schedule*, not *accumulate* — any future shim must carry a
/// removal plan, and this guard forces the conversation by failing the
/// moment a `#[deprecated]` attribute (or an `#[allow(deprecated)]`
/// suppression) reappears anywhere in the workspace sources.
#[test]
fn no_deprecated_items_anywhere_in_the_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    // Only this guard file may spell the needles (it has to name them to
    // search for them).
    let allowlist: [&Path; 1] = [Path::new("tests/hermetic.rs")];
    fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                rs_files(&path, out);
            } else if path.extension().is_some_and(|ext| ext == "rs") {
                out.push(path);
            }
        }
    }
    let mut files = Vec::new();
    for dir in ["crates", "tests", "examples", "src"] {
        rs_files(&root.join(dir), &mut files);
    }
    assert!(files.len() > 20, "expected to scan the whole workspace");
    let mut violations = Vec::new();
    for file in files {
        let rel = file.strip_prefix(root).expect("workspace-relative path");
        if allowlist.contains(&rel) {
            continue;
        }
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        for needle in ["#[deprecated", "#![deprecated", "(deprecated)"] {
            for (i, line) in text.lines().enumerate() {
                if line.contains(needle) {
                    violations.push(format!("{}:{}: {}", rel.display(), i + 1, line.trim()));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "deprecated items reintroduced — delete them or ship them with a removal plan \
         (and update this guard deliberately):\n{}",
        violations.join("\n")
    );
}

/// The root `[workspace.dependencies]` entries themselves must all be
/// `path` specs, since member `workspace = true` entries resolve to them.
#[test]
fn workspace_dependency_table_is_all_paths() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    let text = std::fs::read_to_string(&root).expect("read root Cargo.toml");
    let mut in_table = false;
    let mut entries = 0usize;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if !in_table || line.is_empty() {
            continue;
        }
        entries += 1;
        assert!(
            line.contains("path ="),
            "non-path entry in [workspace.dependencies]: {line}"
        );
    }
    assert!(entries > 0, "expected a populated [workspace.dependencies]");
}

/// The checked-in partition study artifact must match the study's current
/// document layout and certify both resilience claims it exists to make:
/// journal/DecisionEngine effects stay exactly-once at every swept
/// drop/duplication rate, and heartbeat detection recovers >= 90% of the
/// makespan a healed 60 s partition costs. The study is fully
/// deterministic (virtual clock, fixed seed), but the guard pins
/// structure + claims rather than bytes so a parameter change stays a
/// one-regeneration fix. Regenerate with
/// `cargo run --release -p impress-bench --bin partition_study`.
#[test]
fn partition_artifact_matches_the_study_format_version() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("partition.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} — run the partition_study bin", path.display()));
    let json: impress_json::Json = impress_json::from_str(&text).expect("partition.json parses");
    let version: u32 = json
        .get("format_version")
        .and_then(|v| v.as_f64())
        .expect("partition.json has a format_version field") as u32;
    assert_eq!(
        version,
        impress_bench::partition::PARTITION_FORMAT_VERSION,
        "partition.json was generated under a different study format — regenerate it"
    );
    let acceptance = json.get("acceptance").expect("acceptance section present");
    for key in ["exactly_once_at_every_rate", "detection_recovers_90pct"] {
        assert_eq!(
            acceptance.get(key).and_then(|v| v.as_bool()),
            Some(true),
            "checked-in partition study must certify `{key}`"
        );
    }
    assert_eq!(
        acceptance.get("grid_duplicate_completions").and_then(|v| v.as_f64()),
        Some(0.0),
        "the grid must observe zero duplicate completions"
    );
    assert_eq!(
        acceptance.get("delivery_duplicate_effects").and_then(|v| v.as_f64()),
        Some(0.0),
        "the delivery campaigns must observe zero duplicate journal/decision effects"
    );
    let grid = json
        .get("grid")
        .and_then(|r| r.as_array())
        .expect("partition.json has a grid array");
    assert_eq!(
        grid.len(),
        36,
        "the study sweeps 3 loss rates x 4 partition durations x 3 detector settings"
    );
    for row in grid {
        assert!(
            row.get("makespan_secs").and_then(|v| v.as_f64()).is_some_and(|m| m > 0.0),
            "every grid cell must report a positive makespan: {row:?}"
        );
        assert_eq!(
            row.get("duplicate_completions").and_then(|v| v.as_f64()),
            Some(0.0),
            "exactly-once must hold in every grid cell: {row:?}"
        );
    }
    let delivery = json
        .get("delivery")
        .and_then(|r| r.as_array())
        .expect("partition.json has a delivery array");
    assert_eq!(delivery.len(), 3, "one journaled delivery campaign per loss rate");
    for row in delivery {
        for key in ["duplicate_decision_effects", "duplicate_journal_effects"] {
            assert_eq!(
                row.get(key).and_then(|v| v.as_f64()),
                Some(0.0),
                "`{key}` must be zero in every delivery campaign: {row:?}"
            );
        }
    }
}

/// One tiny iteration of the partition study runs under `cargo test`, so
/// the code that regenerates `partition.json` cannot bit-rot between
/// releases. The smoke grid keeps every code path warm — lossy links,
/// scripted partitions, heartbeat suspicion and lease-fenced reruns,
/// journaled delivery with coordinator-boundary dedup — without asserting
/// the paper-scale 90% recovery bar, which only the full grid is sized to
/// meet. Exactly-once, by contrast, must hold at any scale.
#[test]
fn partition_smoke_iteration_produces_a_complete_document() {
    let doc =
        impress_bench::partition::run_study(&impress_bench::partition::StudyParams::smoke(), 7);
    assert_eq!(
        doc.get("format_version").and_then(|v| v.as_f64()),
        Some(impress_bench::partition::PARTITION_FORMAT_VERSION as f64)
    );
    let grid = doc
        .get("grid")
        .and_then(|r| r.as_array())
        .expect("smoke study has a grid");
    assert_eq!(
        grid.len(),
        36,
        "smoke study sweeps the same 36-cell grid as the paper run"
    );
    let tasks = doc.get("tasks").and_then(|v| v.as_u64()).expect("smoke study reports tasks");
    for row in grid {
        assert_eq!(
            row.get("completed").and_then(|v| v.as_u64()),
            Some(tasks),
            "every smoke campaign must drain fully: {row:?}"
        );
        assert_eq!(
            row.get("duplicate_completions").and_then(|v| v.as_f64()),
            Some(0.0),
            "exactly-once must hold in every smoke cell: {row:?}"
        );
    }
    let detected: Vec<_> = grid
        .iter()
        .filter(|r| r.get("detector").and_then(|v| v.as_str()) != Some("off"))
        .collect();
    assert!(
        detected.iter().any(|r| r.get("suspicions").and_then(|v| v.as_f64()).unwrap_or(0.0) > 0.0),
        "detector-on smoke cells must actually suspect the partitioned node"
    );
    assert!(
        detected
            .iter()
            .any(|r| r.get("lease_expiries").and_then(|v| v.as_f64()).unwrap_or(0.0) > 0.0),
        "suspicion eviction must expire the trapped leases in some smoke cell"
    );
    let delivery = doc
        .get("delivery")
        .and_then(|r| r.as_array())
        .expect("smoke study has a delivery array");
    assert_eq!(delivery.len(), 3);
    for row in delivery {
        for key in ["duplicate_decision_effects", "duplicate_journal_effects"] {
            assert_eq!(
                row.get(key).and_then(|v| v.as_f64()),
                Some(0.0),
                "`{key}` must be zero in every smoke delivery campaign: {row:?}"
            );
        }
    }
    doc.get("acceptance")
        .and_then(|a| a.get("exactly_once_at_every_rate"))
        .and_then(|v| v.as_bool())
        .expect("smoke study reports the exactly-once verdict");
}

/// The checked-in coordinator fast-path study must match the study's
/// current document layout and certify the claims it exists to make: the
/// group-commit + slab-dispatch fast path cuts journaled-campaign
/// overhead at least 5x against the embedded pre-optimization baseline
/// (file-store cell), and 1,000 concurrent journaled coordinators drain
/// to completion on one thread. Structure + claims, never wall-clock
/// bytes (those are machine-dependent). Regenerate with
/// `cargo run --release -p impress-bench --bin coord_bench`.
#[test]
fn coord_bench_artifact_matches_the_study_format_version() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_coord.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} — run the coord_bench bin", path.display()));
    let json: impress_json::Json = impress_json::from_str(&text).expect("BENCH_coord.json parses");
    let version: u32 = json
        .get("format_version")
        .and_then(|v| v.as_f64())
        .expect("BENCH_coord.json has a format_version field") as u32;
    assert_eq!(
        version,
        impress_bench::coord::COORD_BENCH_FORMAT_VERSION,
        "BENCH_coord.json was generated under a different study format — regenerate it"
    );
    let results = json
        .get("results")
        .and_then(|r| r.as_array())
        .expect("BENCH_coord.json has results");
    assert_eq!(results.len(), 2, "one overhead cell per journal store");
    json.get("baseline")
        .and_then(|b| b.get("commit"))
        .and_then(|c| c.as_str())
        .expect("baseline must name the pre-optimization commit");
    let reductions = json
        .get("overhead_reductions")
        .and_then(|r| r.as_array())
        .expect("overhead_reductions section present");
    assert_eq!(reductions.len(), 2, "both stores compare against baseline");
    let headline = json.get("headline").expect("headline section present");
    assert_eq!(
        headline.get("coordinators").and_then(|v| v.as_u64()),
        Some(1000),
        "headline must be the 1k-concurrent-coordinator cell"
    );
    assert_eq!(
        headline.get("all_completed").and_then(|v| v.as_bool()),
        Some(true),
        "every concurrent campaign in the checked-in headline must complete"
    );
    assert_eq!(
        headline
            .get("five_x_file_overhead_reduction")
            .and_then(|v| v.as_bool()),
        Some(true),
        "the checked-in artifact must certify the 5x file-overhead reduction"
    );
}

/// One tiny iteration of the coordinator study runs under `cargo test`,
/// so the code that regenerates `BENCH_coord.json` cannot bit-rot. The
/// smoke grid covers both journal stores and a small concurrent fleet.
#[test]
fn coord_bench_smoke_iteration_produces_a_complete_document() {
    let doc = impress_bench::coord::run_study(&impress_bench::coord::StudyParams::smoke(), 7);
    assert_eq!(
        doc.get("format_version").and_then(|v| v.as_f64()),
        Some(impress_bench::coord::COORD_BENCH_FORMAT_VERSION as f64)
    );
    let results = doc
        .get("results")
        .and_then(|r| r.as_array())
        .expect("smoke study has results");
    assert_eq!(results.len(), 2, "smoke grid covers memory and file stores");
    for row in results {
        assert!(
            row.get("records").and_then(|v| v.as_u64()).unwrap_or(0) > 0,
            "every smoke cell must journal records: {row:?}"
        );
        assert!(
            row.get("journaled_ms").and_then(|v| v.as_f64()).is_some(),
            "every smoke cell must time the journaled drain: {row:?}"
        );
    }
    let headline = doc.get("headline").expect("smoke study has a headline");
    assert_eq!(
        headline.get("all_completed").and_then(|v| v.as_bool()),
        Some(true),
        "every smoke concurrent campaign must drain to completion"
    );
}

/// The checked-in multi-tenant campaign-service study must match the
/// study's current document layout and certify the claims it exists to
/// make: 1,000+ concurrent campaigns on the simulated 1,000-node cluster,
/// every campaign completed, Jain fairness ≥ 0.9 under equal weights,
/// p50/p99 campaign latency and a scheduler-overhead comparison reported,
/// and the weight-4 tenant served no worse than the weight-1 tenant.
/// Structure + claims, never wall-clock bytes (those are
/// machine-dependent). Regenerate with
/// `cargo run --release -p impress-bench --bin serve_bench`.
#[test]
fn serve_bench_artifact_matches_the_study_format_version() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_serve.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} — run the serve_bench bin", path.display()));
    let json: impress_json::Json = impress_json::from_str(&text).expect("BENCH_serve.json parses");
    let version: u32 = json
        .get("format_version")
        .and_then(|v| v.as_f64())
        .expect("BENCH_serve.json has a format_version field") as u32;
    assert_eq!(
        version,
        impress_bench::serve::SERVE_BENCH_FORMAT_VERSION,
        "BENCH_serve.json was generated under a different study format — regenerate it"
    );
    assert_eq!(
        json.get("cluster").and_then(|c| c.get("nodes")).and_then(|v| v.as_u64()),
        Some(1000),
        "the study runs on the simulated 1,000-node cluster"
    );
    let results = json
        .get("results")
        .and_then(|r| r.as_array())
        .expect("BENCH_serve.json has results");
    assert!(!results.is_empty(), "at least one grid cell");
    for row in results {
        for key in [
            "campaigns",
            "p50_latency_s",
            "p99_latency_s",
            "jain_fairness",
            "overhead_ratio",
            "baseline_wall_ms",
        ] {
            assert!(
                row.get(key).and_then(|v| v.as_f64()).is_some(),
                "every cell reports {key}: {row:?}"
            );
        }
        assert_eq!(
            row.get("all_completed").and_then(|v| v.as_bool()),
            Some(true),
            "every campaign in every checked-in cell must complete: {row:?}"
        );
        assert!(
            row.get("jain_fairness").and_then(|v| v.as_f64()).unwrap() >= 0.9,
            "equal-weight tenants must score Jain >= 0.9: {row:?}"
        );
    }
    let headline = json.get("headline").expect("headline section present");
    assert!(
        headline
            .get("max_concurrent_campaigns")
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
            >= 1000,
        "headline must cover 1k+ concurrent campaigns"
    );
    assert_eq!(
        headline.get("thousand_plus_campaigns").and_then(|v| v.as_bool()),
        Some(true)
    );
    assert_eq!(
        headline.get("fair_at_equal_weights").and_then(|v| v.as_bool()),
        Some(true),
        "the checked-in artifact must certify Jain >= 0.9 at equal weights"
    );
    for key in ["p50_latency_s", "p99_latency_s", "overhead_ratio"] {
        assert!(
            headline.get(key).and_then(|v| v.as_f64()).is_some(),
            "headline reports {key}"
        );
    }
    let weighted = json.get("weighted").expect("weighted cell present");
    assert_eq!(
        weighted.get("heavy_not_worse").and_then(|v| v.as_bool()),
        Some(true),
        "the weight-4 tenant must not be served worse than the weight-1 tenant"
    );
}

/// One tiny iteration of the campaign-service study runs under
/// `cargo test`, so the code that regenerates `BENCH_serve.json` cannot
/// bit-rot. The smoke grid drives a small multi-tenant fleet plus the
/// weighted cell end to end.
#[test]
fn serve_bench_smoke_iteration_produces_a_complete_document() {
    let doc = impress_bench::serve::run_study(&impress_bench::serve::StudyParams::smoke(), 7);
    assert_eq!(
        doc.get("format_version").and_then(|v| v.as_f64()),
        Some(impress_bench::serve::SERVE_BENCH_FORMAT_VERSION as f64)
    );
    let results = doc
        .get("results")
        .and_then(|r| r.as_array())
        .expect("smoke study has results");
    assert!(!results.is_empty());
    for row in results {
        assert_eq!(
            row.get("all_completed").and_then(|v| v.as_bool()),
            Some(true),
            "every smoke campaign must complete: {row:?}"
        );
        assert!(
            row.get("jain_fairness").and_then(|v| v.as_f64()).unwrap_or(0.0) >= 0.9,
            "smoke equal-weight fairness holds: {row:?}"
        );
        assert!(
            row.get("tasks").and_then(|v| v.as_u64()).unwrap_or(0) > 0,
            "smoke cells execute real tasks: {row:?}"
        );
    }
    doc.get("weighted")
        .and_then(|w| w.get("latency_ratio"))
        .and_then(|v| v.as_f64())
        .expect("smoke study runs the weighted cell");
}
