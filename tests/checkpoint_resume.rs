//! Crash-consistency end to end: a journaled IM-RP campaign killed at
//! adversarial points — including mid-snapshot torn writes — must resume
//! from the surviving journal and regenerate the uninterrupted run's
//! artifacts byte for byte; a walltime-drained campaign must do the same.
//! The simulated backend gets full byte parity; the threaded backend
//! (nondeterministic completion order by construction) gets
//! drain-checkpoint-resume with outcome-cohort parity.

use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::{run_imrp_on, JournaledRun};
use impress_core::{
    imrp_journal, resume_imrp, run_imrp_journaled, DesignPipeline, ProtocolConfig, TargetToolkit,
};
use impress_pilot::{PilotConfig, RuntimeConfig};
use impress_proteins::datasets::named_pdz_domains;
use impress_sim::{props, SimDuration, SimTime};
use impress_workflow::journal::{load_plan, Journal, JournalError, MemoryJournal};
use impress_workflow::{Coordinator, NoDecisions};

const SEED: u64 = 11;

fn targets() -> Vec<impress_proteins::datasets::DesignTarget> {
    named_pdz_domains(SEED).into_iter().take(2).collect()
}

fn policy() -> AdaptivePolicy {
    AdaptivePolicy {
        sub_budget: 2,
        ..AdaptivePolicy::default()
    }
}

/// A journaled run killed after `kill_after` records; returns the
/// surviving store. The kill switch panics from inside the coordinator,
/// which is exactly how a preempted allocation looks to the journal.
fn killed_run(kill_after: u64, snapshot_interval: Option<usize>) -> MemoryJournal {
    let targets = targets();
    let config = ProtocolConfig::imrp(SEED);
    let store = MemoryJournal::new();
    let mut journal = imrp_journal(Box::new(store.clone()), &config)
        .expect("journal")
        .with_kill_after(kill_after);
    if let Some(i) = snapshot_interval {
        journal = journal.with_snapshot_interval(i);
    }
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_imrp_journaled(
            &targets,
            config.clone(),
            policy(),
            PilotConfig::with_seed(SEED),
            journal,
            None,
        )
    }));
    assert!(crashed.is_err(), "kill switch must fire");
    store
}

fn resume_from(store: &MemoryJournal) -> (String, usize) {
    let loaded = load_plan(store).expect("surviving journal must load");
    let resumed = resume_imrp(
        &targets(),
        ProtocolConfig::imrp(SEED),
        policy(),
        PilotConfig::with_seed(SEED),
        &loaded.plan,
    )
    .expect("resume");
    (impress_json::to_string(&resumed), loaded.dropped)
}

fn baseline_json() -> String {
    let r = run_imrp_on(
        &targets(),
        ProtocolConfig::imrp(SEED),
        policy(),
        PilotConfig::with_seed(SEED),
    );
    impress_json::to_string(&r)
}

/// Three adversarial kill points — just after campaign registration,
/// mid-campaign, and a handful of records before the natural end — all
/// resume to the uninterrupted run's bytes.
#[test]
fn kill_and_resume_is_byte_identical_at_adversarial_kill_points() {
    let baseline = baseline_json();
    // Record the campaign's natural journal length first.
    let store = MemoryJournal::new();
    let config = ProtocolConfig::imrp(SEED);
    let full = run_imrp_journaled(
        &targets(),
        config.clone(),
        policy(),
        PilotConfig::with_seed(SEED),
        imrp_journal(Box::new(store.clone()), &config).expect("journal"),
        None,
    );
    assert_eq!(baseline, impress_json::to_string(&full.result));
    let total = full.records;
    assert!(total > 20, "campaign too small to be adversarial: {total}");

    for kill_after in [6, total / 2, total - 3] {
        let store = killed_run(kill_after, None);
        let (resumed, dropped) = resume_from(&store);
        assert_eq!(dropped, 0, "clean kill leaves no torn tail");
        assert_eq!(baseline, resumed, "kill at record {kill_after}");
    }
}

/// A torn final write — the allocation died mid-`write(2)` — is detected
/// by the frame checksum, dropped, and the resume still converges.
#[test]
fn torn_tail_write_is_dropped_and_resume_still_matches() {
    let baseline = baseline_json();
    let store = killed_run(40, None);
    store.tamper(|lines| {
        let last = lines.len() - 1;
        let keep = lines[last].len() / 2;
        lines[last].truncate(keep);
    });
    let (resumed, dropped) = resume_from(&store);
    assert_eq!(dropped, 1, "exactly the torn line is distrusted");
    assert_eq!(baseline, resumed);
}

/// A crash in the middle of snapshot compaction tears the snapshot line
/// itself. The loader must refuse the snapshot *and everything after it*
/// (later records assume the snapshot's state), falling back to a full
/// re-run — which still reproduces the baseline bytes.
#[test]
fn torn_snapshot_write_forces_full_rerun_with_parity() {
    let baseline = baseline_json();
    let store = killed_run(40, Some(8));
    store.tamper(|lines| {
        assert!(lines.len() >= 3, "expected [Begin, Snapshot, records…]");
        let keep = lines[1].len() / 2;
        lines[1].truncate(keep);
    });
    let loaded = load_plan(&store).expect("head is intact, load must succeed");
    assert!(loaded.dropped >= 1);
    assert_eq!(
        loaded.plan.pipelines.len(),
        0,
        "a torn snapshot leaves nothing trustworthy to replay"
    );
    let resumed = resume_imrp(
        &targets(),
        ProtocolConfig::imrp(SEED),
        policy(),
        PilotConfig::with_seed(SEED),
        &loaded.plan,
    )
    .expect("resume from empty plan is a full re-run");
    assert_eq!(baseline, impress_json::to_string(&resumed));
}

/// A journal whose head is garbage is a typed error, never a panic: the
/// operator should see a diagnostic, not a backtrace.
#[test]
fn corrupt_journal_head_is_a_typed_error() {
    let store = MemoryJournal::new();
    store.tamper(|lines| lines.push("not a journal frame".into()));
    match load_plan(&store) {
        Ok(_) => panic!("garbage head must not load"),
        Err(JournalError::Corrupt(msg)) => assert!(!msg.is_empty()),
        Err(other) => panic!("expected Corrupt, got {other}"),
    }
}

/// Walltime-aware drain on the simulated backend: past the deadline the
/// session stops launching tasks that would overrun, drains in-flight
/// work, and the journal checkpoint resumes to the uninterrupted bytes.
#[test]
fn simulated_drain_then_resume_matches_uninterrupted_run() {
    let baseline = baseline_json();
    let config = ProtocolConfig::imrp(SEED);
    let store = MemoryJournal::new();
    // Deadline at roughly half the campaign: guaranteed to strand work.
    let full = run_imrp_on(
        &targets(),
        config.clone(),
        policy(),
        PilotConfig::with_seed(SEED),
    );
    let deadline = SimTime::from_micros(full.run.makespan.as_micros() / 2);
    let JournaledRun {
        result, drained, ..
    } = run_imrp_journaled(
        &targets(),
        config.clone(),
        policy(),
        PilotConfig::with_seed(SEED),
        imrp_journal(Box::new(store.clone()), &config).expect("journal"),
        Some(deadline),
    );
    assert!(drained, "a mid-campaign deadline must force a drain");
    assert!(
        result.outcomes.len() < full.outcomes.len() || result.run.total_tasks < full.run.total_tasks,
        "a drained campaign must have stopped early"
    );
    let (resumed, dropped) = resume_from(&store);
    assert_eq!(dropped, 0);
    assert_eq!(baseline, resumed, "drain checkpoint must resume losslessly");
}

/// The threaded backend honors the same drain contract: a real-clock
/// deadline strands the remainder, the checkpoint resumes on a fresh
/// backend, and the final outcome cohort matches an uninterrupted threaded
/// run. (Byte-level event parity is out of scope here: thread completion
/// order is nondeterministic by construction.)
#[test]
fn threaded_drain_checkpoint_resume_preserves_outcome_cohort() {
    let time_scale = 11e-6; // 1 virtual hour ≈ 40 real ms
    let pilot = || PilotConfig {
        bootstrap: SimDuration::from_secs(30),
        exec_setup_per_task: SimDuration::from_secs(5),
        ..PilotConfig::with_seed(SEED)
    };
    let targets = targets();
    let config = ProtocolConfig::imrp(SEED);
    let add_roots = |c: &mut Coordinator<_, _, NoDecisions>| {
        for (i, t) in targets.iter().enumerate() {
            let tk = TargetToolkit::for_target(t, SEED);
            c.add_pipeline(Box::new(DesignPipeline::root(tk, config.clone(), i as u64)));
        }
    };
    let outcome_cohort = |c: &Coordinator<_, _, NoDecisions>| {
        let mut cohort: Vec<String> = c
            .outcomes()
            .iter()
            .map(|(_, o)| impress_json::to_string(o))
            .collect();
        cohort.sort();
        cohort
    };

    // Uninterrupted reference cohort.
    let mut reference = Coordinator::new(
        RuntimeConfig::new(pilot()).time_scale(time_scale).threaded(),
        NoDecisions,
    );
    add_roots(&mut reference);
    reference.run();
    let want = outcome_cohort(&reference);
    assert_eq!(want.len(), targets.len());

    // Drained run: a ~200 ms real-clock allocation against a ~1 s campaign.
    let store = MemoryJournal::new();
    let journal = Journal::new(Box::new(store.clone()), "threaded-drain", SEED).expect("journal");
    let backend = RuntimeConfig::new(pilot())
        .time_scale(time_scale)
        .deadline(SimTime::from_micros(200_000))
        .threaded();
    let mut drained = Coordinator::new(backend, NoDecisions).with_journal(journal);
    add_roots(&mut drained);
    drained.run();
    assert!(drained.drained(), "the deadline must strand work");

    // Resume on a fresh backend with no deadline: ghosts for journaled
    // terminals, real execution for the stranded remainder.
    let plan = load_plan(&store).expect("drain checkpoint must load").plan;
    let mut resumed = Coordinator::resume(
        RuntimeConfig::new(pilot()).time_scale(time_scale).threaded(),
        NoDecisions,
        &plan,
    )
    .expect("resume");
    add_roots(&mut resumed);
    resumed.run();
    assert!(!resumed.drained());
    assert_eq!(want, outcome_cohort(&resumed));
}

/// A kill landing between a failed attempt and its backed-off retry must
/// resume onto an identical virtual timeline: the journal knows nothing of
/// the in-flight ladder (retries are recorded only with the terminal
/// completion), so the resume re-simulates the fault stream and the retry
/// fires again — once, after the same jittered backoff — converging on the
/// uninterrupted faulted campaign's bytes.
#[test]
fn kill_mid_retry_backoff_resumes_onto_an_identical_timeline() {
    use impress_pilot::{FaultConfig, FaultPlan, RetryPolicy};
    use impress_workflow::EventKind;

    let faulted_backend = || {
        let plan = FaultPlan::new(
            FaultConfig {
                task_failure_rate: 0.2,
                ..FaultConfig::none()
            },
            SEED,
        );
        RuntimeConfig::new(PilotConfig::with_seed(SEED))
            .faults(plan, RetryPolicy::retries(3))
            .simulated()
    };
    let targets = targets();
    let config = ProtocolConfig::imrp(SEED);
    let add_roots = |c: &mut Coordinator<_, _, NoDecisions>| {
        for (i, t) in targets.iter().enumerate() {
            let tk = TargetToolkit::for_target(t, SEED);
            c.add_pipeline(Box::new(DesignPipeline::root(tk, config.clone(), i as u64)));
        }
    };
    let cohort = |c: &Coordinator<_, _, NoDecisions>| -> Vec<String> {
        c.outcomes()
            .iter()
            .map(|(_, o)| impress_json::to_string(o))
            .collect()
    };

    // Uninterrupted faulted baseline. The fault plan must actually bite,
    // or the kill point below does not exist.
    let mut baseline = Coordinator::new(faulted_backend(), NoDecisions);
    add_roots(&mut baseline);
    let report = baseline.run();
    assert!(report.task_retries >= 1, "fault plan never bit");
    let want = cohort(&baseline);

    // Measure the campaign's natural journal length, then kill halfway:
    // with a 20 % per-attempt failure rate, retry ladders span the whole
    // campaign, so a mid-campaign kill lands with at least one failed
    // attempt waiting out its backoff. Retries are deliberately NOT
    // journaled (they are backend-internal), so the surviving journal
    // knows nothing of the in-flight ladder.
    let full_store = MemoryJournal::new();
    {
        let journal =
            Journal::new(Box::new(full_store.clone()), "retry-backoff", SEED).expect("journal");
        let mut c = Coordinator::new(faulted_backend(), NoDecisions).with_journal(journal);
        add_roots(&mut c);
        c.run();
    }
    let mut total = 0;
    full_store.tamper(|l| total = l.len());
    assert!(total > 8, "campaign too small to kill mid-ladder: {total}");

    let store = MemoryJournal::new();
    let journal = Journal::new(Box::new(store.clone()), "retry-backoff", SEED)
        .expect("journal")
        .with_kill_after(total as u64 / 2);
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut c = Coordinator::new(faulted_backend(), NoDecisions).with_journal(journal);
        add_roots(&mut c);
        c.run();
    }));
    assert!(crashed.is_err(), "kill switch must fire");

    let plan = load_plan(&store).expect("surviving journal must load").plan;
    let mut resumed =
        Coordinator::resume(faulted_backend(), NoDecisions, &plan).expect("resume");
    add_roots(&mut resumed);
    resumed.run();
    assert_eq!(want, cohort(&resumed), "resume diverged from the baseline");
    // The resumed coordinator re-derived the retry verdict itself — the
    // interrupted ladder's retry fired on the replayed timeline.
    assert!(
        resumed
            .events()
            .count(|e| matches!(e.kind, EventKind::TaskRetried { .. }))
            >= 1,
        "the mid-backoff retry must fire after resume"
    );
}

fn journal_fixture() -> &'static (Vec<String>, String) {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<(Vec<String>, String)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let targets = targets();
        let config = ProtocolConfig::imrp(SEED);
        let store = MemoryJournal::new();
        let full = run_imrp_journaled(
            &targets,
            config.clone(),
            policy(),
            PilotConfig::with_seed(SEED),
            imrp_journal(Box::new(store.clone()), &config).expect("journal"),
            None,
        );
        let mut lines = Vec::new();
        store.tamper(|l| lines = l.clone());
        (lines, impress_json::to_string(&full.result))
    })
}

props! {
    /// Every prefix of the journal is a valid checkpoint: whatever line
    /// the crash landed on, loading the surviving prefix and resuming
    /// regenerates the uninterrupted campaign byte for byte. Each group
    /// commit flushes *before* its cycle's effects apply, so losing a
    /// buffered suffix is indistinguishable from crashing earlier — this
    /// property is exactly why batching the flush is crash-safe.
    fn resume_from_any_journal_prefix_regenerates_the_baseline(rng, cases = 8) {
        let (lines, baseline) = journal_fixture();
        let prefix = 1 + rng.below(lines.len());
        let store = MemoryJournal::new();
        store.tamper(|l| *l = lines[..prefix].to_vec());
        let (resumed, dropped) = resume_from(&store);
        assert_eq!(dropped, 0, "whole-line prefixes are never torn");
        assert_eq!(baseline, &resumed, "prefix of {prefix} lines");
    }

    /// Group commit writes a whole cycle's frames as one block, so a crash
    /// mid-`write(2)` can tear the file at *any byte* — several whole
    /// frames followed by a partial one — not just at a frame boundary.
    /// Whatever byte the tear lands on (past the head frame), the loader
    /// distrusts exactly the torn fragment and the resume regenerates the
    /// uninterrupted campaign byte for byte.
    fn resume_from_any_torn_byte_prefix_regenerates_the_baseline(rng, cases = 8) {
        let (lines, baseline) = journal_fixture();
        let mut text = String::new();
        for line in lines {
            text.push_str(line);
            text.push('\n');
        }
        // Tear anywhere after the head (Begin) frame; a torn head is a
        // separate, typed-error case covered elsewhere. Frames are ASCII
        // (compact JSON with \u escapes), so any byte offset is a char
        // boundary.
        let head_len = lines[0].len() + 1;
        let cut = head_len + rng.below(text.len() - head_len) + 1;
        let torn: Vec<String> = text[..cut].lines().map(str::to_string).collect();
        let whole_lines = text[..cut].ends_with('\n');
        let store = MemoryJournal::new();
        store.tamper(|l| *l = torn);
        let (resumed, dropped) = resume_from(&store);
        assert_eq!(
            dropped,
            usize::from(!whole_lines),
            "exactly the torn fragment (if any) is distrusted"
        );
        assert_eq!(baseline, &resumed, "tear at byte {cut}");
    }
}
