//! Telemetry trace contracts, end to end:
//!
//! * recording a campaign never perturbs the science (the traced
//!   `ExperimentResult` is byte-identical to the telemetry-off run);
//! * recorded streams are structurally well-formed (`check_nesting`);
//! * the Chrome trace-event export round-trips through `impress-json`;
//! * the simulated and threaded backends export byte-identical
//!   virtual-clock traces for serialized workloads — the threaded
//!   backend's *modeled* virtual clock reproduces the simulated one
//!   exactly, across random workload shapes and priorities.

use impress_bench::trace::parity_trace;
use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::{run_imrp_on, run_imrp_traced};
use impress_core::ProtocolConfig;
use impress_json::{Json, ToJson};
use impress_pilot::PilotConfig;
use impress_proteins::datasets::named_pdz_domains;
use impress_sim::props;
use impress_telemetry::{
    check_nesting, SpanCat, Telemetry, TelemetryEvent, TraceClock,
};

fn record_campaign(seed: u64) -> (Vec<TelemetryEvent>, Telemetry, Json) {
    let targets = named_pdz_domains(seed);
    let (telemetry, recorder) = Telemetry::recording(1 << 18);
    run_imrp_traced(
        &targets,
        ProtocolConfig::imrp(seed),
        AdaptivePolicy::default(),
        PilotConfig::with_seed(seed),
        telemetry.clone(),
    );
    let chrome = recorder.chrome_trace(TraceClock::Virtual);
    (recorder.events(), telemetry, chrome)
}

/// A real multi-pipeline campaign records a structurally valid span
/// stream: every category of the unified model shows up, nesting holds,
/// and the live counters agree with the span stream.
#[test]
fn campaign_trace_is_well_formed_and_complete() {
    let (events, telemetry, _) = record_campaign(11);
    assert!(!events.is_empty(), "campaign recorded no events");
    check_nesting(&events).expect("campaign trace nesting");
    let begins = |cat: SpanCat| {
        events
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::Begin { cat: c, .. } if *c == cat))
            .count() as u64
    };
    // Every layer of the stack lands in one stream: pilot lifecycle,
    // scheduler rounds, per-task spans, and coordinator structure.
    for cat in [
        SpanCat::Pilot,
        SpanCat::Scheduler,
        SpanCat::Task,
        SpanCat::Queue,
        SpanCat::Attempt,
        SpanCat::Pipeline,
        SpanCat::Stage,
        SpanCat::Decision,
    ] {
        assert!(begins(cat) > 0, "no {:?} spans recorded", cat);
    }
    let snapshot = telemetry.snapshot();
    let submitted = snapshot.counter("tasks_submitted").expect("counter");
    assert_eq!(begins(SpanCat::Task), submitted, "task spans vs counter");
    assert_eq!(
        snapshot.counter("tasks_completed"),
        Some(submitted),
        "fault-free campaign completes everything it submits"
    );
    assert!(
        snapshot.counter("pipelines_completed").unwrap_or(0) > 0,
        "coordinator counters recorded"
    );
    assert!(
        snapshot.histogram("task_run_seconds").is_some(),
        "run-time histogram recorded"
    );
}

/// The Chrome export round-trips through the in-repo JSON stack
/// byte-for-byte, and its rows carry the trace-event fields Perfetto
/// needs.
#[test]
fn chrome_export_round_trips_through_impress_json() {
    let (_, _, chrome) = record_campaign(13);
    let text = impress_json::to_string(&chrome);
    let parsed: Json = impress_json::from_str(&text).expect("chrome trace parses");
    assert_eq!(
        impress_json::to_string(&parsed),
        text,
        "chrome export must round-trip byte-identically"
    );
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for row in events {
        for key in ["ph", "name", "cat", "ts", "pid", "tid"] {
            assert!(row.get(key).is_some(), "trace row missing `{key}`: {row:?}");
        }
    }
}

/// Recording a trace never changes what the experiment computes: the
/// packaged result of a traced run is byte-identical to the
/// telemetry-off run, seed by seed.
#[test]
fn telemetry_never_perturbs_the_experiment() {
    for seed in [3, 17] {
        let targets = named_pdz_domains(seed);
        let config = ProtocolConfig::imrp(seed);
        let policy = AdaptivePolicy::default();
        let off = run_imrp_on(&targets, config.clone(), policy, PilotConfig::with_seed(seed));
        let (telemetry, _recorder) = Telemetry::recording(1 << 18);
        let on = run_imrp_traced(
            &targets,
            config,
            policy,
            PilotConfig::with_seed(seed),
            telemetry,
        );
        assert_eq!(
            impress_json::to_string(&off.to_json()),
            impress_json::to_string(&on.to_json()),
            "seed {seed}: tracing changed the experiment"
        );
    }
}

props! {
    /// The threaded backend's modeled virtual clock reproduces the
    /// simulated backend's exact one: serialized workloads of random
    /// size export byte-identical virtual-time Chrome traces (scheduler
    /// mechanics filtered; every task, queue, attempt, and pilot span
    /// must agree to the microsecond).
    fn virtual_traces_agree_across_backends(rng, cases = 8) {
        let tasks = 2 + rng.below(6) as usize;
        let seed = rng.next_u64();
        let sim = parity_trace(false, seed, tasks);
        let thr = parity_trace(true, seed, tasks);
        assert_eq!(
            sim, thr,
            "virtual traces diverged for {tasks} tasks, seed {seed}"
        );
    }
}
