//! Backend parity: the simulated, sharded, and threaded backends must
//! agree on the *science* (same task closures, same deterministic RNG
//! streams, same outputs) even though they disagree on wall-clock — and
//! in the sharded case, event-engine — mechanics.

use impress_core::{DesignPipeline, ProtocolConfig, TargetToolkit};
use impress_pilot::backend::{ShardedBackend, SimulatedBackend, ThreadedBackend};
use impress_pilot::{ExecutionBackend, PilotConfig, ResourceRequest, Session, TaskDescription};
use impress_proteins::datasets::named_pdz_domains;
use impress_sim::SimDuration;
use impress_workflow::{Coordinator, NoDecisions};

fn pilot_config(seed: u64) -> PilotConfig {
    PilotConfig {
        bootstrap: SimDuration::from_secs(1),
        exec_setup_per_task: SimDuration::ZERO,
        ..PilotConfig::with_seed(seed)
    }
}

/// The same work batch produces the same outputs on both backends,
/// in submission order.
#[test]
fn batch_outputs_agree_across_backends() {
    let works = || -> Vec<Box<dyn FnOnce() -> u64 + Send>> {
        (0..12u64)
            .map(|i| Box::new(move || i * i + 1) as Box<dyn FnOnce() -> u64 + Send>)
            .collect()
    };
    let mut sim = Session::new(SimulatedBackend::new(pilot_config(1)));
    let sim_out = sim.execute_batch(
        "w",
        ResourceRequest::cores(1),
        SimDuration::from_secs(3),
        works(),
    );
    let mut threaded = Session::new(ThreadedBackend::new(pilot_config(1)));
    let thr_out = threaded.execute_batch(
        "w",
        ResourceRequest::cores(1),
        SimDuration::from_secs(3),
        works(),
    );
    let mut sharded = Session::new(ShardedBackend::new(pilot_config(1)));
    let sha_out = sharded.execute_batch(
        "w",
        ResourceRequest::cores(1),
        SimDuration::from_secs(3),
        works(),
    );
    assert_eq!(sim_out, thr_out);
    assert_eq!(sim_out, sha_out);
    assert_eq!(sim_out, (0..12).map(|i| i * i + 1).collect::<Vec<u64>>());
}

/// The serialized parity workload exports *byte-identical* virtual-clock
/// Chrome traces on all three engines: the sequential oracle, the sharded
/// parallel-DES engine, and real threads under the model clock. This is
/// the strongest cross-engine statement the telemetry layer can make —
/// every span boundary, name, and argument at the same virtual
/// microsecond, serialized to the same bytes.
#[test]
fn three_engines_export_byte_identical_virtual_traces() {
    use impress_bench::trace::{parity_trace_on, ParityBackend};
    let sim = parity_trace_on(ParityBackend::Simulated, 0xbeef, 6);
    let sharded = parity_trace_on(ParityBackend::Sharded, 0xbeef, 6);
    let threaded = parity_trace_on(ParityBackend::Threaded, 0xbeef, 6);
    assert!(!sim.is_empty() && sim.contains("traceEvents"));
    assert_eq!(sim, sharded, "sharded engine's virtual trace diverged");
    assert_eq!(sim, threaded, "threaded engine's virtual trace diverged");
}

/// A full design pipeline produces the same accepted design on both
/// backends: the protocol's RNG discipline is event-order independent.
#[test]
fn design_pipeline_science_is_backend_independent() {
    let target = named_pdz_domains(42).remove(0);
    let config = ProtocolConfig::imrp(5);

    let run_on = |threaded: bool| {
        let tk = TargetToolkit::for_target(&target, 7);
        if threaded {
            let backend = ThreadedBackend::new(pilot_config(5));
            let mut c = Coordinator::new(backend, NoDecisions);
            c.add_pipeline(Box::new(DesignPipeline::root(tk, config.clone(), 0)));
            c.run();
            c.outcomes()[0].1.clone()
        } else {
            let backend = SimulatedBackend::new(pilot_config(5));
            let mut c = Coordinator::new(backend, NoDecisions);
            c.add_pipeline(Box::new(DesignPipeline::root(tk, config.clone(), 0)));
            c.run();
            c.outcomes()[0].1.clone()
        }
    };

    let sim = run_on(false);
    let thr = run_on(true);
    assert_eq!(sim.final_receptor, thr.final_receptor);
    assert_eq!(sim.iterations, thr.iterations);
    assert_eq!(sim.total_evaluations, thr.total_evaluations);
}

/// Per-replica RNG streams (`fork_idx` off a task-local root) are a pure
/// function of seed and index, never of scheduling order — so both backends
/// see identical streams even though the threaded one completes tasks in
/// nondeterministic wall-clock order.
#[test]
fn forked_rng_streams_agree_across_backends() {
    use impress_sim::SimRng;

    let works = || -> Vec<Box<dyn FnOnce() -> u64 + Send>> {
        (0..16u64)
            .map(|i| {
                Box::new(move || {
                    let mut rng = SimRng::from_seed(99).fork_idx("replica", i);
                    rng.next_u64() ^ rng.below(1000) as u64
                }) as Box<dyn FnOnce() -> u64 + Send>
            })
            .collect()
    };
    let mut sim = Session::new(SimulatedBackend::new(pilot_config(4)));
    let sim_out = sim.execute_batch(
        "rng",
        ResourceRequest::cores(1),
        SimDuration::from_secs(2),
        works(),
    );
    let mut threaded = Session::new(ThreadedBackend::new(pilot_config(4)));
    let thr_out = threaded.execute_batch(
        "rng",
        ResourceRequest::cores(1),
        SimDuration::from_secs(2),
        works(),
    );
    assert_eq!(sim_out, thr_out);
    // And against a plain sequential evaluation, proving independence from
    // any backend at all.
    let direct: Vec<u64> = works().into_iter().map(|w| w()).collect();
    assert_eq!(sim_out, direct);
}

/// Placement-order parity: random full-node workloads with random
/// priorities execute in the *same order* on both backends. Full-node
/// requests serialize execution, so the order work closures run is exactly
/// the scheduler's placement order — observable even under the threaded
/// backend's nondeterministic wall-clock. A max-priority gate task holds
/// the node (blocking on a condvar in the threaded case) until every
/// submission is enqueued, so the scheduler sees the identical queue in
/// both backends before making its first real decision.
mod placement_order_parity {
    use super::*;
    use impress_sim::props;
    use std::sync::{Arc, Condvar, Mutex};

    /// Run `priorities.len()` full-node tasks (plus the gate) and return
    /// the order their work closures executed in.
    fn run_order(backend: &mut dyn ExecutionBackend, priorities: &[i32], threaded: bool) -> Vec<u64> {
        let node = PilotConfig::with_seed(0).node;
        let full = ResourceRequest::with_gpus(node.cores, node.gpus);
        let order = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = gate.clone();
            let desc = TaskDescription::new("gate", full, SimDuration::from_secs(1))
                .with_priority(i32::MAX)
                .with_work(move || {
                    if threaded {
                        let (lock, cv) = &*gate;
                        let mut open = lock.lock().expect("gate lock");
                        while !*open {
                            open = cv.wait(open).expect("gate wait");
                        }
                    }
                });
            backend.submit(desc);
        }
        for (i, &p) in priorities.iter().enumerate() {
            let order = order.clone();
            backend.submit(
                TaskDescription::new(
                    format!("t{i}"),
                    full,
                    SimDuration::from_secs(10 + 7 * i as u64),
                )
                .with_priority(p)
                .with_work(move || order.lock().expect("order lock").push(i as u64)),
            );
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock().expect("gate lock") = true;
            cv.notify_all();
        }
        while backend.next_completion().is_some() {}
        let order = order.lock().expect("order lock").clone();
        assert_eq!(order.len(), priorities.len(), "every task ran exactly once");
        order
    }

    props! {
        /// The oracle workload shape (random priorities, FIFO within a
        /// class) replayed through all three execution backends.
        fn both_backends_execute_in_identical_placement_order(rng, cases = 24) {
            let n = 3 + rng.below(10);
            let priorities: Vec<i32> =
                (0..n).map(|_| rng.below(7) as i32 - 3).collect();
            let seed = rng.next_u64();
            let mut sim = SimulatedBackend::new(pilot_config(seed));
            let sim_order = run_order(&mut sim, &priorities, false);
            let mut thr = ThreadedBackend::new(pilot_config(seed));
            let thr_order = run_order(&mut thr, &priorities, true);
            let mut sha = ShardedBackend::new(pilot_config(seed));
            let sha_order = run_order(&mut sha, &priorities, false);
            assert_eq!(
                sim_order, thr_order,
                "placement order diverged for priorities {priorities:?}"
            );
            assert_eq!(
                sim_order, sha_order,
                "sharded placement order diverged for priorities {priorities:?}"
            );
            // And both match the scheduler contract directly: stable sort
            // of submission order by descending priority.
            let mut expected: Vec<u64> = (0..n as u64).collect();
            expected.sort_by_key(|&i| std::cmp::Reverse(priorities[i as usize]));
            assert_eq!(sim_order, expected, "priority order violated");
        }
    }
}

/// Gray failures with hedging off are bit-identical across all three
/// engines: scripted slowdown windows dilate the modeled clock by exactly
/// the same microseconds whether virtual time is replayed sequentially,
/// sharded, or modeled under real threads. Full-node tasks serialize
/// execution, so the threaded engine's wall-clock races cannot perturb
/// placement — any divergence is a dilation bug, not a scheduling race.
mod slowdown_parity {
    use super::*;
    use impress_pilot::{FaultConfig, FaultPlan, RetryPolicy, RuntimeConfig, ScriptedSlowdown};
    use impress_sim::{props, SimTime};
    use impress_telemetry::{chrome_trace_filtered, SpanCat, Telemetry, TraceClock};
    use std::sync::{Arc, Condvar, Mutex};

    /// Drive `durations.len()` full-node tasks (plus a max-priority gate
    /// that holds the node until everything is enqueued, so all queue
    /// spans begin at virtual zero on every engine) and export the
    /// virtual-clock Chrome trace plus the final virtual watermark.
    /// Scheduler spans are filtered: polling cadence is backend mechanics.
    fn run_traced(
        mut backend: Box<dyn ExecutionBackend>,
        durations: &[u64],
        recorder: impress_telemetry::TraceRecorder,
        threaded: bool,
    ) -> (String, u64) {
        let node = PilotConfig::with_seed(0).node;
        let full = ResourceRequest::with_gpus(node.cores, node.gpus);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = gate.clone();
            backend.submit(
                TaskDescription::new("gate", full, SimDuration::from_secs(1))
                    .with_priority(i32::MAX)
                    .with_work(move || {
                        if threaded {
                            let (lock, cv) = &*gate;
                            let mut open = lock.lock().expect("gate lock");
                            while !*open {
                                open = cv.wait(open).expect("gate wait");
                            }
                        }
                    }),
            );
        }
        for (i, &secs) in durations.iter().enumerate() {
            backend.submit(TaskDescription::new(
                format!("t{i}"),
                full,
                SimDuration::from_secs(secs),
            ));
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock().expect("gate lock") = true;
            cv.notify_all();
        }
        while let Some(c) = backend.next_completion() {
            assert!(c.result.is_ok());
        }
        let trace = chrome_trace_filtered(&recorder.events(), TraceClock::Virtual, |cat| {
            cat != SpanCat::Scheduler
        });
        (impress_json::to_string(&trace), backend.now().as_micros())
    }

    props! {
        /// Random serialized workloads under random degradation schedules,
        /// replayed through all three execution engines. Hedging and
        /// quarantine stay off — this is the hedging-off bit-identity
        /// guarantee the pinned artifacts rely on, now holding with
        /// slowdown windows biting.
        fn slowdown_windows_dilate_identically_on_all_three_engines(rng, cases = 12) {
            let n = 3 + rng.below(8);
            let durations: Vec<u64> = (0..n).map(|_| 5 + rng.below(300) as u64).collect();
            let total_nominal: u64 = 1 + durations.iter().sum::<u64>();
            let seed = rng.next_u64();
            let mut fc = FaultConfig::none();
            for _ in 0..1 + rng.below(3) {
                fc.scripted_slowdowns.push(ScriptedSlowdown {
                    node: 0,
                    at: SimTime::from_micros(rng.below(total_nominal as usize) as u64 * 1_000_000),
                    duration: SimDuration::from_secs(10 + rng.below(400) as u64),
                    factor: 2.0 + rng.below(18) as f64,
                });
            }
            let run = |make: &dyn Fn(RuntimeConfig) -> Box<dyn ExecutionBackend>, threaded| {
                let (telemetry, recorder) = Telemetry::recording(1 << 16);
                let rt = RuntimeConfig::new(pilot_config(seed))
                    .faults(FaultPlan::new(fc.clone(), seed ^ 0x51), RetryPolicy::none())
                    .telemetry(telemetry);
                run_traced(make(rt), &durations, recorder, threaded)
            };
            let sim = run(&|rt| Box::new(rt.simulated()), false);
            let sha = run(&|rt| Box::new(rt.sharded()), false);
            let thr = run(&|rt| Box::new(rt.threaded()), true);
            assert_eq!(sim, sha, "sharded slowdown dilation diverged");
            // The threaded engine's `now()` is a wall clock, so only the
            // virtual trace is comparable — and it must match to the byte.
            assert_eq!(sim.0, thr.0, "threaded slowdown dilation diverged");
            // The node is busy continuously from bootstrap to the last
            // completion and every window starts inside that busy span, so
            // the degradation must actually have stretched the campaign.
            assert!(
                sim.1 > (1 + total_nominal) * 1_000_000,
                "no slowdown window dilated anything"
            );
        }
    }
}

/// The threaded backend honors GPU slot limits under real concurrency:
/// at most `gpus` GPU tasks may hold slots at once.
#[test]
fn threaded_backend_enforces_gpu_slots() {
    use std::sync::atomic::{AtomicI32, Ordering};
    use std::sync::Arc;

    let active = Arc::new(AtomicI32::new(0));
    let peak = Arc::new(AtomicI32::new(0));
    let mut cfg = pilot_config(3);
    cfg.node = impress_pilot::NodeSpec::new(16, 2, 64);
    let mut session = Session::new(ThreadedBackend::new(cfg));
    for i in 0..8 {
        let active = active.clone();
        let peak = peak.clone();
        session.submit(
            TaskDescription::new(
                format!("gpu{i}"),
                ResourceRequest::with_gpus(1, 1),
                SimDuration::from_secs(1),
            )
            .with_work(move || {
                let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(30));
                active.fetch_sub(1, Ordering::SeqCst);
            }),
        );
    }
    let completions = session.drain();
    assert_eq!(completions.len(), 8);
    let peak = peak.load(Ordering::SeqCst);
    assert!(peak <= 2, "GPU oversubscription: peak {peak} > 2 slots");
    assert!(
        peak >= 2,
        "expected the two GPUs to actually run concurrently"
    );
}

/// Utilization accounting exists and is sane on both backends.
#[test]
fn utilization_reports_are_sane_on_both_backends() {
    let run = |mut session: Session<Box<dyn ExecutionBackend>>| {
        for _ in 0..4 {
            session.submit(
                TaskDescription::new("t", ResourceRequest::cores(2), SimDuration::from_secs(10))
                    .with_work(|| std::thread::sleep(std::time::Duration::from_millis(20))),
            );
        }
        session.drain();
        *session.observe().utilization()
    };
    // Box the backends behind the trait to prove object safety, too.
    let sim: Box<dyn ExecutionBackend> = Box::new(SimulatedBackend::new(pilot_config(2)));
    let thr: Box<dyn ExecutionBackend> = Box::new(ThreadedBackend::new(pilot_config(2)));
    let sha: Box<dyn ExecutionBackend> = Box::new(ShardedBackend::new(pilot_config(2)));
    for (label, backend) in [("sim", sim), ("threaded", thr), ("sharded", sha)] {
        let report = run(Session::new(backend));
        assert_eq!(report.tasks, 4, "{label}");
        assert!(
            report.cpu > 0.0 && report.cpu <= 1.0,
            "{label}: {}",
            report.cpu
        );
    }
}
