//! Failure injection: crashing tasks must degrade the run gracefully —
//! lineage aborts, decision-engine restart, coordinator completes — never
//! poison the middleware.
//!
//! Every scenario runs on BOTH backends: the deterministic simulated pilot
//! and the real-thread pilot (whose completions arrive in whatever order
//! true concurrency produces).

use impress_core::adaptive::{AdaptivePolicy, ImpressDecision};
use impress_core::generator::SequenceGenerator;
use impress_core::{DesignPipeline, ProtocolConfig, TargetToolkit};
use impress_pilot::backend::{SimulatedBackend, ThreadedBackend};
use impress_pilot::{
    ExecutionBackend, FaultConfig, FaultPlan, PilotConfig, RetryPolicy, RuntimeConfig,
    ScriptedCrash,
};
use impress_proteins::datasets::named_pdz_domains;
use impress_proteins::{MpnnConfig, ScoredSequence, Structure, SurrogateMpnn};
use impress_sim::{SimDuration, SimRng, SimTime};
use impress_workflow::{Coordinator, NoDecisions};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A generator that panics on its `fail_on`-th call, then behaves normally
/// (simulating a transient crash — bad node, OOM kill).
struct FlakyGenerator {
    inner: SurrogateMpnn,
    calls: AtomicU32,
    fail_on: u32,
}

impl SequenceGenerator for FlakyGenerator {
    fn name(&self) -> &str {
        "flaky-mpnn"
    }
    fn generate(
        &self,
        structure: &Structure,
        config: &MpnnConfig,
        rng: &mut SimRng,
    ) -> Vec<ScoredSequence> {
        let call = self.calls.fetch_add(1, Ordering::SeqCst) + 1;
        if call == self.fail_on {
            panic!("injected generator crash on call {call}");
        }
        self.inner.sample(structure, config, rng)
    }
}

fn flaky_toolkit(
    target: &impress_proteins::datasets::DesignTarget,
    fail_on: u32,
) -> Arc<TargetToolkit> {
    TargetToolkit::with_generator(
        target,
        7,
        Arc::new(FlakyGenerator {
            inner: SurrogateMpnn::new(target.landscape.clone()),
            calls: AtomicU32::new(0),
            fail_on,
        }),
    )
}

fn scenario_crashed_task_aborts<B: ExecutionBackend>(backend: B) {
    let target = &named_pdz_domains(3)[0];
    let tk = flaky_toolkit(target, 2); // crash in cycle 2
    let mut c = Coordinator::new(backend, NoDecisions);
    c.add_pipeline(Box::new(DesignPipeline::root(
        tk,
        ProtocolConfig::imrp(3),
        0,
    )));
    let report = c.run();
    assert_eq!(report.aborted_pipelines, 1);
    assert!(c.outcomes().is_empty());
    assert!(
        c.aborts()[0].1.contains("injected generator crash"),
        "{}",
        c.aborts()[0].1
    );
}

#[test]
fn crashed_task_aborts_the_lineage_not_the_coordinator() {
    scenario_crashed_task_aborts(SimulatedBackend::new(PilotConfig::with_seed(3)));
}

#[test]
fn crashed_task_aborts_the_lineage_not_the_coordinator_threaded() {
    scenario_crashed_task_aborts(ThreadedBackend::new(PilotConfig::with_seed(3)));
}

fn scenario_decision_engine_restarts<B: ExecutionBackend>(backend: B) {
    let targets = named_pdz_domains(5);
    let target = &targets[0];
    // Toolkit whose generator crashes exactly once (first call), so the
    // restarted pipeline succeeds.
    let tk = flaky_toolkit(target, 1);
    let config = ProtocolConfig::imrp(5);
    let decision = ImpressDecision::new(config.clone(), AdaptivePolicy::default(), [tk.clone()]);
    let mut c = Coordinator::new(backend, decision);
    c.add_pipeline(Box::new(DesignPipeline::root(tk, config, 0)));
    let report = c.run();

    assert_eq!(report.aborted_pipelines, 1, "the crash aborts the root");
    assert!(
        report.sub_pipelines >= 1,
        "the engine must restart the target"
    );
    // The restart must have produced a real outcome for the same target.
    let restarted: Vec<_> = c
        .outcomes()
        .iter()
        .filter(|(_, o)| o.label.contains("restart"))
        .collect();
    assert!(!restarted.is_empty(), "no restart outcome found");
    assert!(!restarted[0].1.iterations.is_empty());
    assert_eq!(restarted[0].1.target, target.name);
}

#[test]
fn decision_engine_restarts_crashed_lineages() {
    scenario_decision_engine_restarts(SimulatedBackend::new(PilotConfig::with_seed(5)));
}

#[test]
fn decision_engine_restarts_crashed_lineages_threaded() {
    scenario_decision_engine_restarts(ThreadedBackend::new(PilotConfig::with_seed(5)));
}

fn scenario_unrelated_pipelines_survive<B: ExecutionBackend>(backend: B) {
    let targets = named_pdz_domains(9);
    let mut c = Coordinator::new(backend, NoDecisions);
    // Pipeline 0 crashes; pipelines 1 and 2 are healthy.
    c.add_pipeline(Box::new(DesignPipeline::root(
        flaky_toolkit(&targets[0], 1),
        ProtocolConfig::imrp(9),
        0,
    )));
    for (i, target) in targets.iter().enumerate().skip(1).take(2) {
        c.add_pipeline(Box::new(DesignPipeline::root(
            TargetToolkit::for_target(target, 7),
            ProtocolConfig::imrp(9),
            i as u64,
        )));
    }
    let report = c.run();
    assert_eq!(report.aborted_pipelines, 1);
    assert_eq!(c.outcomes().len(), 2, "healthy pipelines complete");
    for (_, o) in c.outcomes() {
        assert!(!o.iterations.is_empty());
    }
}

#[test]
fn unrelated_pipelines_survive_a_crash() {
    scenario_unrelated_pipelines_survive(SimulatedBackend::new(PilotConfig::with_seed(9)));
}

#[test]
fn unrelated_pipelines_survive_a_crash_threaded() {
    scenario_unrelated_pipelines_survive(ThreadedBackend::new(PilotConfig::with_seed(9)));
}

/// The tentpole acceptance scenario: a node crash mid-campaign must not
/// lose the run — evicted residents are requeued by the retry machinery and
/// every pipeline completes. Runs on both backends.
fn scenario_node_crash_mid_campaign<B: ExecutionBackend>(backend: B) {
    let targets = named_pdz_domains(13);
    let mut c = Coordinator::new(backend, NoDecisions);
    for (i, target) in targets.iter().enumerate().take(2) {
        c.add_pipeline(Box::new(DesignPipeline::root(
            TargetToolkit::for_target(target, 7),
            ProtocolConfig::imrp(13),
            i as u64,
        )));
    }
    let report = c.run();
    assert_eq!(report.aborted_pipelines, 0, "retries must absorb the crash");
    assert_eq!(c.outcomes().len(), 2, "both pipelines complete");
    for (_, o) in c.outcomes() {
        assert!(!o.iterations.is_empty());
    }
    assert!(
        report.task_retries >= 1,
        "the crash must actually have evicted at least one task"
    );
    assert!(report.wasted_core_seconds > 0.0);
}

fn retry_no_backoff(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        ..RetryPolicy::none()
    }
}

#[test]
fn node_crash_mid_campaign_is_absorbed_simulated() {
    let pilot = PilotConfig::with_seed(13);
    let plan = FaultPlan::new(
        FaultConfig {
            // One crash three virtual hours in, while MSA/AF2 work is dense.
            scripted_crashes: vec![ScriptedCrash {
                node: 0,
                at: SimTime::ZERO + SimDuration::from_hours(3),
                outage: SimDuration::from_mins(20),
            }],
            ..FaultConfig::none()
        },
        13,
    );
    scenario_node_crash_mid_campaign(
        RuntimeConfig::new(pilot)
            .faults(plan, retry_no_backoff(3))
            .simulated(),
    );
}

#[test]
fn node_crash_mid_campaign_is_absorbed_threaded() {
    let pilot = PilotConfig::with_seed(13);
    // The virtual campaign runs tens of hours; at 1e-5 scale that is a
    // couple of real seconds. Real concurrency makes the exact crash
    // instants nondeterministic, so script a few crash windows across the
    // busy phase — any one of them evicting a mid-sleep worker satisfies
    // the retry assertions. The windows are spaced farther apart than any
    // single task runs, so no task can be mowed down by every crash and
    // exhaust its budget.
    let crashes = [3u64, 10, 17]
        .iter()
        .map(|h| ScriptedCrash {
            node: 0,
            at: SimTime::ZERO + SimDuration::from_hours(*h),
            outage: SimDuration::from_mins(10),
        })
        .collect();
    let plan = FaultPlan::new(
        FaultConfig {
            scripted_crashes: crashes,
            ..FaultConfig::none()
        },
        13,
    );
    scenario_node_crash_mid_campaign(
        RuntimeConfig::new(pilot)
            .time_scale(1e-5)
            .faults(plan, retry_no_backoff(5))
            .threaded(),
    );
}
