//! Failure injection: crashing tasks must degrade the run gracefully —
//! lineage aborts, decision-engine restart, coordinator completes — never
//! poison the middleware.

use impress_core::adaptive::{AdaptivePolicy, ImpressDecision};
use impress_core::generator::SequenceGenerator;
use impress_core::{DesignPipeline, ProtocolConfig, TargetToolkit};
use impress_pilot::backend::SimulatedBackend;
use impress_pilot::PilotConfig;
use impress_proteins::datasets::named_pdz_domains;
use impress_proteins::{MpnnConfig, ScoredSequence, Structure, SurrogateMpnn};
use impress_sim::SimRng;
use impress_workflow::{Coordinator, NoDecisions};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A generator that panics on its `fail_on`-th call, then behaves normally
/// (simulating a transient crash — bad node, OOM kill).
struct FlakyGenerator {
    inner: SurrogateMpnn,
    calls: AtomicU32,
    fail_on: u32,
}

impl SequenceGenerator for FlakyGenerator {
    fn name(&self) -> &str {
        "flaky-mpnn"
    }
    fn generate(
        &self,
        structure: &Structure,
        config: &MpnnConfig,
        rng: &mut SimRng,
    ) -> Vec<ScoredSequence> {
        let call = self.calls.fetch_add(1, Ordering::SeqCst) + 1;
        if call == self.fail_on {
            panic!("injected generator crash on call {call}");
        }
        self.inner.sample(structure, config, rng)
    }
}

fn flaky_toolkit(
    target: &impress_proteins::datasets::DesignTarget,
    fail_on: u32,
) -> Arc<TargetToolkit> {
    TargetToolkit::with_generator(
        target,
        7,
        Arc::new(FlakyGenerator {
            inner: SurrogateMpnn::new(target.landscape.clone()),
            calls: AtomicU32::new(0),
            fail_on,
        }),
    )
}

#[test]
fn crashed_task_aborts_the_lineage_not_the_coordinator() {
    let target = &named_pdz_domains(3)[0];
    let tk = flaky_toolkit(target, 2); // crash in cycle 2
    let backend = SimulatedBackend::new(PilotConfig::with_seed(3));
    let mut c = Coordinator::new(backend, NoDecisions);
    c.add_pipeline(Box::new(DesignPipeline::root(
        tk,
        ProtocolConfig::imrp(3),
        0,
    )));
    let report = c.run();
    assert_eq!(report.aborted_pipelines, 1);
    assert!(c.outcomes().is_empty());
    assert!(
        c.aborts()[0].1.contains("injected generator crash"),
        "{}",
        c.aborts()[0].1
    );
}

#[test]
fn decision_engine_restarts_crashed_lineages() {
    let targets = named_pdz_domains(5);
    let target = &targets[0];
    // Toolkit whose generator crashes exactly once (first call), so the
    // restarted pipeline succeeds.
    let tk = flaky_toolkit(target, 1);
    let config = ProtocolConfig::imrp(5);
    let decision = ImpressDecision::new(config.clone(), AdaptivePolicy::default(), [tk.clone()]);
    let backend = SimulatedBackend::new(PilotConfig::with_seed(5));
    let mut c = Coordinator::new(backend, decision);
    c.add_pipeline(Box::new(DesignPipeline::root(tk, config, 0)));
    let report = c.run();

    assert_eq!(report.aborted_pipelines, 1, "the crash aborts the root");
    assert!(
        report.sub_pipelines >= 1,
        "the engine must restart the target"
    );
    // The restart must have produced a real outcome for the same target.
    let restarted: Vec<_> = c
        .outcomes()
        .iter()
        .filter(|(_, o)| o.label.contains("restart"))
        .collect();
    assert!(!restarted.is_empty(), "no restart outcome found");
    assert!(!restarted[0].1.iterations.is_empty());
    assert_eq!(restarted[0].1.target, target.name);
}

#[test]
fn unrelated_pipelines_survive_a_crash() {
    let targets = named_pdz_domains(9);
    let backend = SimulatedBackend::new(PilotConfig::with_seed(9));
    let mut c = Coordinator::new(backend, NoDecisions);
    // Pipeline 0 crashes; pipelines 1 and 2 are healthy.
    c.add_pipeline(Box::new(DesignPipeline::root(
        flaky_toolkit(&targets[0], 1),
        ProtocolConfig::imrp(9),
        0,
    )));
    for (i, target) in targets.iter().enumerate().skip(1).take(2) {
        c.add_pipeline(Box::new(DesignPipeline::root(
            TargetToolkit::for_target(target, 7),
            ProtocolConfig::imrp(9),
            i as u64,
        )));
    }
    let report = c.run();
    assert_eq!(report.aborted_pipelines, 1);
    assert_eq!(c.outcomes().len(), 2, "healthy pipelines complete");
    for (_, o) in c.outcomes() {
        assert!(!o.iterations.is_empty());
    }
}
