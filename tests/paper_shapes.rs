//! Paper-shape regression tests: the qualitative results of §III asserted
//! at reduced scale, so `cargo test` guards the reproduction.

use impress_bench::harness::expanded_experiment;
use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::{run_imrp, run_imrp_on};
use impress_core::ProtocolConfig;
use impress_pilot::PilotConfig;
use impress_proteins::datasets::{mined_pdz_complexes, named_pdz_domains};
use impress_proteins::MetricKind;

/// Fig. 3's scale relations at a reduced cohort: every root pipeline,
/// sub-pipeline budget proportional to the paper's 96/70, trajectories
/// exceeding 4 × roots only through sub-pipelines.
#[test]
fn expanded_run_scale_relations() {
    let n = 20;
    let result = expanded_experiment(2025, n);
    assert_eq!(result.run.root_pipelines, n);
    assert!(result.run.sub_pipelines > 0);
    assert!(result.run.sub_pipelines <= n * 96 / 70);
    // Trajectories: roots contribute up to 4 each; subs extend further.
    assert!(
        result.trajectories as usize >= 3 * n,
        "{}",
        result.trajectories
    );
    assert!(
        result.trajectories as usize <= 4 * n + result.run.sub_pipelines,
        "{} trajectories vs {} subs",
        result.trajectories,
        result.run.sub_pipelines
    );
}

/// Fig. 3's improvement trend: iterations 1→3 improve monotonically in the
/// median for every metric (the dip at 4 is asserted at full scale by the
/// fig3 harness; at reduced n it is within noise, so only the robust part
/// is a test invariant).
#[test]
fn expanded_run_improves_through_iteration_three() {
    let result = expanded_experiment(2025, 20);
    for metric in MetricKind::ALL {
        let s = result.series(metric);
        let med = |it: u32| -> f64 {
            let p = s.iterations.iter().position(|&x| x == it).unwrap();
            s.summaries[p].median
        };
        let (m1, m2, m3) = (med(1), med(2), med(3));
        if metric.higher_is_better() {
            assert!(m2 > m1, "{metric}: iter2 {m2} ≤ iter1 {m1}");
            assert!(m3 > m2, "{metric}: iter3 {m3} ≤ iter2 {m2}");
        } else {
            assert!(m2 < m1, "{metric}: iter2 {m2} ≥ iter1 {m1}");
            assert!(m3 < m2, "{metric}: iter3 {m3} ≥ iter2 {m2}");
        }
    }
}

/// The speculative-width knob changes utilization but never the science:
/// the same designs are accepted at widths 1 and 4.
#[test]
fn speculation_width_does_not_change_accepted_designs() {
    let targets: Vec<_> = named_pdz_domains(5).into_iter().take(2).collect();
    let run = |width: u32| {
        let mut config = ProtocolConfig::imrp(5);
        config.speculation = width;
        run_imrp(
            &targets,
            config,
            AdaptivePolicy {
                sub_budget: 0,
                ..AdaptivePolicy::default()
            },
        )
    };
    let narrow = run(1);
    let wide = run(4);
    let by_label = |r: &impress_core::ExperimentResult| {
        let mut o = r.outcomes.clone();
        o.sort_by(|a, b| a.label.cmp(&b.label));
        o
    };
    for (a, b) in by_label(&narrow).iter().zip(&by_label(&wide)) {
        assert_eq!(a.final_receptor, b.final_receptor, "{}", a.target);
        assert_eq!(a.iterations, b.iterations);
    }
    // Wide speculation executes at least as many evaluations.
    assert!(wide.evaluations >= narrow.evaluations);
}

/// Multi-node strong scaling: more nodes, shorter makespan, same science.
#[test]
fn multi_node_scaling_shortens_makespan() {
    let targets = mined_pdz_complexes(3, 10);
    let run = |nodes: u32| {
        run_imrp_on(
            &targets,
            ProtocolConfig::imrp(3),
            AdaptivePolicy {
                sub_budget: 4,
                ..AdaptivePolicy::default()
            },
            PilotConfig {
                nodes,
                ..PilotConfig::with_seed(3)
            },
        )
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four.run.makespan.as_hours_f64() < one.run.makespan.as_hours_f64() * 0.45,
        "4 nodes: {:.1}h vs 1 node: {:.1}h",
        four.run.makespan.as_hours_f64(),
        one.run.makespan.as_hours_f64()
    );
    // Science identical across cluster sizes (RNG is stream-keyed, not
    // schedule-keyed). Compare root lineages by label; sub-pipeline spawn
    // decisions can legitimately differ with completion order.
    let roots = |r: &impress_core::ExperimentResult| {
        let mut o: Vec<_> = r
            .outcomes
            .iter()
            .filter(|o| o.label.ends_with("/root"))
            .cloned()
            .collect();
        o.sort_by(|a, b| a.label.cmp(&b.label));
        o
    };
    for (a, b) in roots(&one).iter().zip(&roots(&four)) {
        assert_eq!(a.final_receptor, b.final_receptor, "{}", a.label);
    }
}
