//! # impress-repro
//!
//! Umbrella crate for the IMPRESS reproduction ("Adaptive Protein Design
//! Protocols and Middleware", IPPS 2025): re-exports the workspace crates
//! under one name so examples and downstream users can depend on a single
//! package.
//!
//! Layering (bottom-up):
//!
//! * [`sim`] — deterministic discrete-event simulation substrate.
//! * [`proteins`] — protein types, design landscapes, ProteinMPNN/AlphaFold
//!   surrogates, datasets.
//! * [`pilot`] — the pilot-job runtime (scheduler, backends, profiler).
//! * [`workflow`] — pipeline abstraction + adaptive pipelines coordinator.
//! * [`core`] — the IMPRESS protocol: IM-RP, CONT-V, experiments.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured numbers.

pub use impress_core as core;
pub use impress_pilot as pilot;
pub use impress_proteins as proteins;
pub use impress_sim as sim;
pub use impress_workflow as workflow;
