//! The expanded campaign (paper §III-A, Fig. 3): dozens of PDB-mined
//! PDZ–peptide complexes re-targeted to the α-synuclein 4-mer (EPEA) and
//! optimized concurrently by the adaptive coordinator.
//!
//! Demonstrates the coordinator at scale: hundreds of pipelines and
//! sub-pipelines multiplexed over one 28-core/4-GPU pilot, with the
//! decision engine re-processing the laggards of the whole cohort.
//!
//! Usage: `cargo run --release --example large_scale [n_complexes]`
//! (default 20; the paper uses 70 — pass it if you have a few seconds).

use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::run_imrp;
use impress_core::ProtocolConfig;
use impress_proteins::datasets::mined_pdz_complexes;
use impress_proteins::MetricKind;
use impress_sim::Summary;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let seed = 2025;
    let targets = mined_pdz_complexes(seed, n);
    println!(
        "cohort: {n} synthetic PDB-mined PDZ complexes vs peptide {}",
        targets[0].start.complex.peptide.sequence
    );

    // The expanded run disables adaptivity in the final cycle, like the
    // paper's — watch iteration 4 stall or dip.
    let mut config = ProtocolConfig::imrp(seed);
    config.adaptive_final_cycle = false;
    let policy = AdaptivePolicy {
        sub_budget: n * 96 / 70,
        ..AdaptivePolicy::default()
    };
    eprintln!("running adaptive campaign…");
    let result = run_imrp(&targets, config, policy);

    println!(
        "\ncampaign: {} root pipelines, {} sub-pipelines, {} trajectories, {} AF2 evaluations",
        result.run.root_pipelines,
        result.run.sub_pipelines,
        result.trajectories,
        result.evaluations
    );
    println!(
        "resources: CPU {:.0}%, GPU {:.0}% (slot) over {:.1} virtual hours",
        result.run.cpu_utilization * 100.0,
        result.run.gpu_slot_utilization * 100.0,
        result.run.makespan.as_hours_f64()
    );

    for metric in MetricKind::ALL {
        let s = result.series(metric);
        println!("\n{metric} across the cohort:");
        for (it, summary) in s.iterations.iter().zip(&s.summaries) {
            println!(
                "  iter {it}: median {:>7.2}  ± {:.2} (σ/2)  n={}",
                summary.median,
                summary.half_std(),
                summary.n
            );
        }
    }

    // Cohort-level distribution of final design quality.
    let finals: Vec<f64> = result
        .outcomes
        .iter()
        .filter_map(|o| o.final_report().map(|r| r.score()))
        .collect();
    let s = Summary::of(&finals);
    println!(
        "\nfinal design score distribution: median {:.3}, min {:.3}, max {:.3} (n={})",
        s.median, s.min, s.max, s.n
    );
    let early: usize = result
        .outcomes
        .iter()
        .filter(|o| o.terminated_early)
        .count();
    println!("lineages terminated early (retry budget exhausted): {early}");
}
