//! Live execution on the real-thread backend.
//!
//! Everything else in this repository replays experiments in virtual time;
//! this example runs an actual concurrent campaign on OS threads with
//! virtual durations dilated to milliseconds (1 virtual hour ≈ 40 real ms),
//! so you can watch a 30-virtual-hour IM-RP run finish in a few seconds of
//! wall-clock — with the same designs as the simulated backend, because the
//! protocol's randomness is keyed to streams, not schedules.
//!
//! Run with: `cargo run --release --example live_threaded`

use impress_core::{DesignPipeline, ProtocolConfig, TargetToolkit};
use impress_pilot::{PilotConfig, RuntimeConfig};
use impress_proteins::datasets::named_pdz_domains;
use impress_sim::{Histogram, SimDuration};
use impress_workflow::{Coordinator, NoDecisions};
use std::time::Instant;

fn main() {
    let seed = 7;
    let targets: Vec<_> = named_pdz_domains(seed).into_iter().take(2).collect();
    // 1 virtual second → 11 µs of real sleep: ~30 virtual hours ≈ 1.2 s.
    let time_scale = 11e-6;
    let pilot = PilotConfig {
        bootstrap: SimDuration::from_secs(30),
        exec_setup_per_task: SimDuration::from_secs(5),
        ..PilotConfig::with_seed(seed)
    };

    println!(
        "running {} adaptive pipelines live on {} (time scale {time_scale})…",
        targets.len(),
        pilot.node
    );
    let t0 = Instant::now();
    let backend = RuntimeConfig::new(pilot).time_scale(time_scale).threaded();
    let mut coordinator = Coordinator::new(backend, NoDecisions);
    for (i, target) in targets.iter().enumerate() {
        let tk = TargetToolkit::for_target(target, seed);
        coordinator.add_pipeline(Box::new(DesignPipeline::root(
            tk,
            ProtocolConfig::imrp(seed),
            i as u64,
        )));
    }
    let report = coordinator.run();
    let elapsed = t0.elapsed();

    println!("\nfinished in {elapsed:.2?} of real time:");
    println!("{report}");
    for (_, outcome) in coordinator.outcomes() {
        println!(
            "  {:<16} {}",
            outcome.target,
            outcome
                .final_report()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "terminated early".into())
        );
    }

    // Wait-time distribution across the run's tasks — real queueing, real
    // threads.
    let log = coordinator.events();
    let stage_events =
        log.count(|e| matches!(e.kind, impress_workflow::EventKind::StageCompleted { .. }));
    println!("\nstages completed: {stage_events}");
    let mut hist = Histogram::new(0.0, 2.0, 8);
    // Real elapsed seconds per pipeline, from the event log.
    for (id, _) in coordinator.outcomes() {
        if let Some((start, end)) = log.pipeline_span(*id) {
            hist.record(end.since(start).as_secs_f64());
        }
    }
    println!("pipeline wall-times (real seconds):\n{}", hist.render(30));
}
