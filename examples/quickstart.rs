//! Quickstart: design a PDZ-domain binder for the α-synuclein C-terminus
//! with the full IMPRESS stack in ~a page of code.
//!
//! What happens:
//! 1. fabricate a design target (receptor + fixed peptide + hidden fitness
//!    landscape standing in for physical reality);
//! 2. start a simulated pilot on an Amarel-shaped node (28 cores, 4 GPUs);
//! 3. run one adaptive design pipeline (ProteinMPNN surrogate → ranking →
//!    AlphaFold surrogate → accept/retry) for four cycles;
//! 4. print the per-iteration confidence metrics and the final design.
//!
//! Run with: `cargo run --release --example quickstart`

use impress_core::{DesignPipeline, ProtocolConfig, TargetToolkit};
use impress_pilot::backend::SimulatedBackend;
use impress_pilot::PilotConfig;
use impress_proteins::align::{global_align, AlignScoring};
use impress_proteins::datasets::named_pdz_domains;
use impress_workflow::{Coordinator, NoDecisions};

fn main() {
    // 1. A design target: the NHERF3 PDZ domain vs the α-syn 10-mer.
    let target = named_pdz_domains(42).remove(0);
    println!(
        "target: {} ({} residues)",
        target.name,
        target.start.complex.receptor.len()
    );
    println!("peptide: {}", target.start.complex.peptide.sequence);
    println!(
        "starting design quality (hidden): {:.3}\n",
        target.start.backbone_quality
    );

    // 2. A pilot over the simulated cluster node.
    let toolkit = TargetToolkit::for_target(&target, 7);
    let backend = SimulatedBackend::new(PilotConfig::with_seed(7));

    // 3. One adaptive pipeline, coordinated (no sub-pipeline spawning here —
    //    see examples/pdz_design.rs for the full adaptive campaign).
    let config = ProtocolConfig::imrp(7);
    let mut coordinator = Coordinator::new(backend, NoDecisions);
    coordinator.add_pipeline(Box::new(DesignPipeline::root(toolkit, config, 0)));
    let report = coordinator.run();

    // 4. Results.
    let (_, outcome) = &coordinator.outcomes()[0];
    println!("baseline  : {}", outcome.baseline_report);
    for rec in &outcome.iterations {
        println!(
            "iteration {}: {}  (accepted candidate rank {}, {} evaluation(s))",
            rec.iteration, rec.report, rec.accepted_rank, rec.evaluations
        );
    }
    println!("\nfinal design: {}", outcome.final_receptor);
    let alignment = global_align(
        &target.start.complex.receptor.sequence,
        &outcome.final_receptor,
        &AlignScoring::default(),
    );
    println!(
        "vs starting sequence: {} substitutions, {:.0}% identity",
        alignment.substitutions(),
        alignment.identity() * 100.0
    );
    println!("{}", alignment.render());
    println!("\ncomputational summary:\n{report}");
}
