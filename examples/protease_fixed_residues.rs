//! The paper's future-work protocol (§V): protease redesign.
//!
//! "ProteinMPNN runs must fix the catalytic residues rather than design the
//! entire protein. Furthermore, as AlphaFold has difficulty accurately
//! placing the peptide in protease complexes, we will instead predict our
//! designs in monomeric form."
//!
//! This example runs that exact configuration on fabricated protease
//! targets: Stage 1 freezes the catalytic triad via
//! `MpnnConfig::fixed_positions`, and Stage 4 uses AlphaFold's monomer
//! prediction mode, so selection rides on pLDDT/pTM only (inter-chain pAE is
//! an uninformative sentinel without an interface).
//!
//! Run with: `cargo run --release --example protease_fixed_residues`

use impress_core::{DesignPipeline, ProtocolConfig, TargetToolkit};
use impress_pilot::backend::SimulatedBackend;
use impress_pilot::PilotConfig;
use impress_proteins::alphafold::PredictionMode;
use impress_proteins::datasets::protease_targets;
use impress_workflow::{Coordinator, NoDecisions};

fn main() {
    let seed = 31;
    let proteases = protease_targets(seed, 3);

    for pt in &proteases {
        let triad: Vec<String> = pt
            .catalytic
            .iter()
            .map(|&p| {
                format!(
                    "{}{}",
                    pt.target.start.complex.receptor.sequence.at(p).letter(),
                    p + 1
                )
            })
            .collect();
        println!(
            "\n=== {} ({} residues, substrate {}, catalytic triad {}) ===",
            pt.target.name,
            pt.target.start.complex.receptor.len(),
            pt.target.start.complex.peptide.sequence,
            triad.join("/")
        );

        // The §V configuration: fixed catalytic residues + monomer folding.
        let mut config = ProtocolConfig::imrp(seed);
        config.mpnn.fixed_positions = pt.catalytic.clone();
        config.alphafold.mode = PredictionMode::Monomer;

        let tk = TargetToolkit::for_target(&pt.target, seed);
        let backend = SimulatedBackend::new(PilotConfig::with_seed(seed));
        let mut coordinator = Coordinator::new(backend, NoDecisions);
        coordinator.add_pipeline(Box::new(DesignPipeline::root(tk, config, 0)));
        coordinator.run();

        let (_, outcome) = &coordinator.outcomes()[0];
        for rec in &outcome.iterations {
            println!(
                "  iteration {}: pLDDT {:.1}  pTM {:.3}  (ipAE {:.1} = monomer sentinel)",
                rec.iteration, rec.report.plddt, rec.report.ptm, rec.report.inter_chain_pae
            );
        }

        // Verify the triad survived four cycles of redesign.
        let start = &pt.target.start.complex.receptor.sequence;
        let designed = &outcome.final_receptor;
        let intact = pt.catalytic.iter().all(|&p| start.at(p) == designed.at(p));
        let mutations = start.hamming(designed);
        println!(
            "  final design: {mutations} mutations, catalytic triad intact: {}",
            if intact { "yes ✓" } else { "NO — BUG" }
        );
        assert!(intact, "catalytic residues must never be redesigned");
    }
    println!("\nAll triads preserved; the generalized protocol is two config lines.");
}
