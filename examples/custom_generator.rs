//! Plugging a custom sequence generator into the pipeline.
//!
//! The paper's Related Work section claims that, unlike EvoPro or MProt-DPO,
//! "the IMPRESS framework allows any sequence generation method to be
//! plugged into the design pipeline". This example demonstrates the plug
//! point by running the same four-cycle adaptive campaign with three
//! Stage-1 generators:
//!
//! * the default ProteinMPNN surrogate (backbone-conditioned, scored),
//! * EvoPro-style random mutagenesis (blind, unscored), and
//! * a custom user-defined generator written right here (a conservative
//!   "hydrophobic-core-preserving" mutator).
//!
//! Expected result: MPNN ≫ custom ≥ random, because informative proposals
//! and informative scores both feed the adaptive selection.
//!
//! Run with: `cargo run --release --example custom_generator`

use impress_core::generator::{MpnnGenerator, RandomMutagenesis, SequenceGenerator};
use impress_core::{DesignPipeline, ProtocolConfig, TargetToolkit};
use impress_pilot::backend::SimulatedBackend;
use impress_pilot::PilotConfig;
use impress_proteins::amino::ALL;
use impress_proteins::datasets::named_pdz_domains;
use impress_proteins::SequenceProfile;
use impress_proteins::{MpnnConfig, ScoredSequence, Structure, SurrogateMpnn};
use impress_sim::SimRng;
use impress_workflow::{Coordinator, NoDecisions};
use std::sync::Arc;

/// A user-defined generator: mutates only non-hydrophobic positions
/// (preserving whatever hydrophobic core the design has) and scores by a
/// crude hydropathy heuristic instead of a learned likelihood.
struct CorePreservingMutator {
    rate: f64,
}

impl SequenceGenerator for CorePreservingMutator {
    fn name(&self) -> &str {
        "core-preserving-mutator"
    }

    fn generate(
        &self,
        structure: &Structure,
        config: &MpnnConfig,
        rng: &mut SimRng,
    ) -> Vec<ScoredSequence> {
        (0..config.num_sequences)
            .map(|i| {
                let mut prng = rng.fork_idx("core-preserving", i as u64);
                let mut seq = structure.complex.receptor.sequence.clone();
                for pos in 0..seq.len() {
                    let frozen =
                        config.fixed_positions.contains(&pos) || seq.at(pos).hydropathy() > 2.0; // the "core"
                    if frozen || !prng.chance(self.rate) {
                        continue;
                    }
                    seq.set(pos, *prng.choose(&ALL));
                }
                // Heuristic score: prefer designs whose surface is polar.
                let polar_fraction = seq
                    .residues()
                    .iter()
                    .filter(|aa| aa.hydropathy() < 0.0)
                    .count() as f64
                    / seq.len() as f64;
                ScoredSequence {
                    sequence: seq,
                    log_likelihood: -2.0 + polar_fraction,
                }
            })
            .collect()
    }
}

fn run_with(generator: Arc<dyn SequenceGenerator>, seed: u64) -> (String, f64, f64) {
    let target = named_pdz_domains(42).remove(2); // SCRIB
    let name = generator.name().to_string();
    let tk = TargetToolkit::with_generator(&target, 7, generator);
    let backend = SimulatedBackend::new(PilotConfig::with_seed(seed));
    let mut coordinator = Coordinator::new(backend, NoDecisions);
    coordinator.add_pipeline(Box::new(DesignPipeline::root(
        tk,
        ProtocolConfig::imrp(seed),
        0,
    )));
    coordinator.run();
    let outcome = coordinator
        .outcomes()
        .first()
        .map(|(_, o)| o.clone())
        .expect("pipeline completed");
    let final_plddt = outcome
        .final_report()
        .map(|r| r.plddt)
        .unwrap_or(outcome.baseline_report.plddt);
    // Oracle: the true quality actually achieved.
    let truth = target.landscape.fitness(&outcome.final_receptor).quality;
    (name, final_plddt, truth)
}

fn main() {
    let target = named_pdz_domains(42).remove(2);
    println!(
        "target: {} ({} residues), same adaptive protocol, three generators\n",
        target.name,
        target.start.complex.receptor.len()
    );
    let mpnn = Arc::new(MpnnGenerator(SurrogateMpnn::new(target.landscape.clone())));
    let generators: Vec<Arc<dyn SequenceGenerator>> = vec![
        mpnn,
        Arc::new(CorePreservingMutator { rate: 0.15 }),
        Arc::new(RandomMutagenesis { rate: 0.15 }),
    ];
    println!(
        "{:<26} {:>12} {:>16}",
        "generator", "final pLDDT", "true quality"
    );
    for g in generators {
        let (name, plddt, truth) = run_with(g, 11);
        println!("{name:<26} {plddt:>12.2} {truth:>16.3}");
    }
    println!(
        "\nThe ranking reflects how much structural information each \
         generator exploits — the pipeline machinery is identical."
    );

    // Diversity check: profile one proposal batch per generator.
    let target = named_pdz_domains(42).remove(2);
    let mpnn = MpnnGenerator(SurrogateMpnn::new(target.landscape.clone()));
    let random = RandomMutagenesis { rate: 0.15 };
    println!("\nproposal-batch diversity (mean per-position entropy, bits):");
    for (name, batch) in [
        (
            "ProteinMPNN",
            mpnn.generate(
                &target.start,
                &MpnnConfig::default(),
                &mut SimRng::from_seed(3),
            ),
        ),
        (
            "random-mutagenesis",
            random.generate(
                &target.start,
                &MpnnConfig::default(),
                &mut SimRng::from_seed(3),
            ),
        ),
    ] {
        let seqs: Vec<_> = batch.iter().map(|p| p.sequence.clone()).collect();
        let profile = SequenceProfile::from_sequences(&seqs);
        println!(
            "  {name:<20} {:.3} bits ({} fully conserved positions of {})",
            profile.mean_entropy(),
            profile.conserved_positions().len(),
            profile.len()
        );
    }
}
