//! The paper's primary experiment as a library user would run it: four PDZ
//! domains (NHERF3, HTRA1, SCRIB, SHANK1) optimized against the α-synuclein
//! 10-mer, adaptive IM-RP vs sequential CONT-V, side by side.
//!
//! Prints the per-iteration metric medians for both arms, the Table-I-style
//! computational comparison, and exports each arm's best design as FASTA and
//! a Cα-trace PDB file into `./designs/`.
//!
//! Run with: `cargo run --release --example pdz_design`

use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::{run_cont_v_experiment, run_imrp};
use impress_core::{ProtocolConfig, Table1Row, TABLE1_HEADER};
use impress_proteins::datasets::named_pdz_domains;
use impress_proteins::fasta::{write_fasta, FastaRecord};
use impress_proteins::pdb::write_pdb;
use impress_proteins::{MetricKind, Structure};

fn main() {
    let seed = 2025;
    let targets = named_pdz_domains(seed);
    println!(
        "designing {} PDZ domains against peptide {}\n",
        targets.len(),
        targets[0].start.complex.peptide.sequence
    );

    eprintln!("running CONT-V (sequential, non-adaptive)…");
    let cont = run_cont_v_experiment(&targets, ProtocolConfig::cont_v(seed));
    eprintln!("running IM-RP (concurrent, adaptive)…");
    let imrp = run_imrp(
        &targets,
        ProtocolConfig::imrp(seed),
        AdaptivePolicy::default(),
    );

    // Science: per-iteration medians.
    for metric in MetricKind::ALL {
        println!("{metric} medians per iteration:");
        for (label, result) in [("CONT-V", &cont), ("IM-RP", &imrp)] {
            let s = result.series(metric);
            let meds: Vec<String> = s
                .iterations
                .iter()
                .zip(s.medians())
                .map(|(it, m)| format!("i{it}={m:.2}"))
                .collect();
            println!("  {label:<7} {}", meds.join("  "));
        }
    }

    // Systems: the Table I comparison.
    println!("\n{TABLE1_HEADER}");
    println!("{}", Table1Row::from_result(&cont, targets.len()));
    println!("{}", Table1Row::from_result(&imrp, targets.len()));

    // Export the best design of each arm.
    std::fs::create_dir_all("designs").expect("create designs dir");
    for result in [&cont, &imrp] {
        let best = result
            .outcomes
            .iter()
            .filter_map(|o| o.final_report().map(|r| (o, r.score())))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(o, _)| o)
            .expect("at least one outcome");
        let target = targets
            .iter()
            .find(|t| t.name == best.target)
            .expect("target exists");
        let complex = target
            .start
            .complex
            .with_receptor_sequence(best.final_receptor.clone());
        let fasta = write_fasta(&[FastaRecord {
            header: format!("{} best design ({})", best.target, result.label),
            chains: vec![
                complex.receptor.sequence.clone(),
                complex.peptide.sequence.clone(),
            ],
        }]);
        let structure = Structure::refined(complex, best.final_backbone_quality, 4);
        let stem = format!("designs/{}_{}", result.label.to_lowercase(), best.target);
        std::fs::write(format!("{stem}.fasta"), fasta).expect("write fasta");
        std::fs::write(format!("{stem}.pdb"), write_pdb(&structure)).expect("write pdb");
        println!(
            "\n{}: best design is {} ({}), exported to {stem}.fasta / {stem}.pdb",
            result.label,
            best.target,
            best.final_report().expect("has report"),
        );
    }
}
